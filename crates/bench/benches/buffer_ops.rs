//! Micro-benchmarks of the four buffer designs' core operations.
//!
//! These quantify the software cost of the DAMQ's linked-list management
//! relative to the simpler designs (in the chip this is the area/control
//! trade-off of paper §3.2.3). Run with `cargo bench -p damq-bench`;
//! timing comes from the std-only [`damq_bench::timing`] harness.

use std::hint::black_box;

use damq_bench::timing::bench;
use damq_core::{BufferConfig, BufferKind, NodeId, OutputPort, Packet};

fn packet(len: usize) -> Packet {
    Packet::builder(NodeId::new(0), NodeId::new(1))
        .length_bytes(len)
        .build()
}

/// Fill-then-drain cycles: 4 single-slot packets in, 4 out.
fn bench_fill_drain() {
    println!("-- fill_drain_4x1slot --");
    for kind in BufferKind::ALL {
        let mut buf = BufferConfig::new(4, 4).build(kind).unwrap();
        bench(&format!("fill_drain_4x1slot/{kind}"), || {
            for o in 0..4 {
                buf.try_enqueue(OutputPort::new(o), black_box(packet(8)))
                    .unwrap();
            }
            for o in 0..4 {
                black_box(buf.dequeue(OutputPort::new(o)).unwrap());
            }
        });
    }
}

/// Variable-length packets exercising multi-slot allocation (DAMQ's linked
/// lists vs FIFO's ring).
fn bench_variable_length() {
    println!("-- fill_drain_variable_length --");
    for kind in [BufferKind::Fifo, BufferKind::Damq] {
        let mut buf = BufferConfig::new(4, 12).build(kind).unwrap();
        bench(&format!("fill_drain_variable_length/{kind}"), || {
            // 4+2+1 slots in, then drained (FIFO drains head output).
            buf.try_enqueue(OutputPort::new(0), black_box(packet(32)))
                .unwrap();
            buf.try_enqueue(OutputPort::new(1), black_box(packet(16)))
                .unwrap();
            buf.try_enqueue(OutputPort::new(2), black_box(packet(8)))
                .unwrap();
            black_box(buf.dequeue(OutputPort::new(0)).unwrap());
            black_box(buf.dequeue(OutputPort::new(1)).unwrap());
            black_box(buf.dequeue(OutputPort::new(2)).unwrap());
        });
    }
}

/// The hot query of arbitration: queue_len across all outputs.
fn bench_queue_scan() {
    println!("-- eligible_output_scan --");
    for kind in BufferKind::ALL {
        let mut buf = BufferConfig::new(4, 8).build(kind).unwrap();
        for o in 0..4 {
            buf.try_enqueue(OutputPort::new(o), packet(8)).unwrap();
        }
        bench(&format!("eligible_output_scan/{kind}"), || {
            let mut total = 0;
            for o in 0..4 {
                total += black_box(&buf).queue_len(OutputPort::new(o));
            }
            total
        });
    }
}

fn main() {
    bench_fill_drain();
    bench_variable_length();
    bench_queue_scan();
}
