//! Micro-benchmarks of the four buffer designs' core operations.
//!
//! These quantify the software cost of the DAMQ's linked-list management
//! relative to the simpler designs (in the chip this is the area/control
//! trade-off of paper §3.2.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use damq_core::{BufferConfig, BufferKind, NodeId, OutputPort, Packet};

fn packet(len: usize) -> Packet {
    Packet::builder(NodeId::new(0), NodeId::new(1))
        .length_bytes(len)
        .build()
}

/// Fill-then-drain cycles: 4 single-slot packets in, 4 out.
fn bench_fill_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("fill_drain_4x1slot");
    for kind in BufferKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let mut buf = BufferConfig::new(4, 4).build(kind).unwrap();
            b.iter(|| {
                for o in 0..4 {
                    buf.try_enqueue(OutputPort::new(o), black_box(packet(8)))
                        .unwrap();
                }
                for o in 0..4 {
                    black_box(buf.dequeue(OutputPort::new(o)).unwrap());
                }
            });
        });
    }
    group.finish();
}

/// Variable-length packets exercising multi-slot allocation (DAMQ's linked
/// lists vs FIFO's ring).
fn bench_variable_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("fill_drain_variable_length");
    for kind in [BufferKind::Fifo, BufferKind::Damq] {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let mut buf = BufferConfig::new(4, 12).build(kind).unwrap();
            b.iter(|| {
                // 4+2+1 slots in, then drained (FIFO drains head output).
                buf.try_enqueue(OutputPort::new(0), black_box(packet(32)))
                    .unwrap();
                buf.try_enqueue(OutputPort::new(1), black_box(packet(16)))
                    .unwrap();
                buf.try_enqueue(OutputPort::new(2), black_box(packet(8)))
                    .unwrap();
                black_box(buf.dequeue(OutputPort::new(0)).unwrap());
                black_box(buf.dequeue(OutputPort::new(1)).unwrap());
                black_box(buf.dequeue(OutputPort::new(2)).unwrap());
            });
        });
    }
    group.finish();
}

/// The hot query of arbitration: queue_len across all outputs.
fn bench_queue_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("eligible_output_scan");
    for kind in BufferKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            let mut buf = BufferConfig::new(4, 8).build(kind).unwrap();
            for o in 0..4 {
                buf.try_enqueue(OutputPort::new(o), packet(8)).unwrap();
            }
            b.iter(|| {
                let mut total = 0;
                for o in 0..4 {
                    total += black_box(&buf).queue_len(OutputPort::new(o));
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fill_drain,
    bench_variable_length,
    bench_queue_scan
);
criterion_main!(benches);
