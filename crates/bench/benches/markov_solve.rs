//! Benchmarks of the Markov engine: state-space exploration and
//! steady-state solving at the sizes Table 2 requires.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use damq_markov::{Chain, CycleOrder, DamqModel, FifoModel, SolveOptions, Switch2x2};

/// Exploration cost of the FIFO chain (the largest state space: ordered
/// destination strings).
fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_fifo_chain");
    for cap in [3usize, 4, 5, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let chain = Chain::explore(&Switch2x2::new(
                    FifoModel::new(cap),
                    0.9,
                    CycleOrder::ArrivalsFirst,
                ));
                black_box(chain.state_count())
            });
        });
    }
    group.finish();
}

/// Full Table-2 cell: explore + solve, FIFO (hard) vs DAMQ (easy) at the
/// worst-case traffic level.
fn bench_solve_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_cell");
    group.sample_size(10);
    group.bench_function("fifo_cap6_traffic99", |b| {
        let chain = Chain::explore(&Switch2x2::new(
            FifoModel::new(6),
            0.99,
            CycleOrder::ArrivalsFirst,
        ));
        b.iter(|| {
            let ss = chain.steady_state(SolveOptions::default()).unwrap();
            black_box(chain.stationary_reward(&ss).discards)
        });
    });
    group.bench_function("damq_cap6_traffic99", |b| {
        let chain = Chain::explore(&Switch2x2::new(
            DamqModel::new(6),
            0.99,
            CycleOrder::ArrivalsFirst,
        ));
        b.iter(|| {
            let ss = chain.steady_state(SolveOptions::default()).unwrap();
            black_box(chain.stationary_reward(&ss).discards)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_explore, bench_solve_cell);
criterion_main!(benches);
