//! Benchmarks of the Markov engine: state-space exploration and
//! steady-state solving at the sizes Table 2 requires. Run with
//! `cargo bench -p damq-bench`; timing comes from the std-only
//! [`damq_bench::timing`] harness.

use std::hint::black_box;

use damq_bench::timing::bench;
use damq_markov::{Chain, CycleOrder, DamqModel, FifoModel, SolveOptions, Switch2x2};

/// Exploration cost of the FIFO chain (the largest state space: ordered
/// destination strings).
fn bench_explore() {
    println!("-- explore_fifo_chain --");
    for cap in [3usize, 4, 5, 6] {
        bench(&format!("explore_fifo_chain/cap{cap}"), || {
            let chain = Chain::explore(&Switch2x2::new(
                FifoModel::new(cap),
                0.9,
                CycleOrder::ArrivalsFirst,
            ));
            black_box(chain.state_count())
        });
    }
}

/// Full Table-2 cell: explore + solve, FIFO (hard) vs DAMQ (easy) at the
/// worst-case traffic level.
fn bench_solve_cell() {
    println!("-- table2_cell --");
    let chain = Chain::explore(&Switch2x2::new(
        FifoModel::new(6),
        0.99,
        CycleOrder::ArrivalsFirst,
    ));
    bench("table2_cell/fifo_cap6_traffic99", || {
        let ss = chain.steady_state(SolveOptions::default()).unwrap();
        black_box(chain.stationary_reward(&ss).discards)
    });
    let chain = Chain::explore(&Switch2x2::new(
        DamqModel::new(6),
        0.99,
        CycleOrder::ArrivalsFirst,
    ));
    bench("table2_cell/damq_cap6_traffic99", || {
        let ss = chain.steady_state(SolveOptions::default()).unwrap();
        black_box(chain.stationary_reward(&ss).discards)
    });
}

fn main() {
    bench_explore();
    bench_solve_cell();
}
