//! Benchmarks of the Omega-network simulator: cost of one network cycle
//! for each buffer design, and of the microarchitecture model's clock.
//! Run with `cargo bench -p damq-bench`; timing comes from the std-only
//! [`damq_bench::timing`] harness.

use std::hint::black_box;

use damq_bench::timing::bench;
use damq_core::BufferKind;
use damq_microarch::{Chip, ChipConfig, RouteEntry};
use damq_net::{NetworkConfig, NetworkSim};

/// One 64x64 network cycle at 0.5 offered load, per buffer design.
fn bench_network_cycle() {
    println!("-- omega64_cycle --");
    for kind in BufferKind::ALL {
        let mut sim = NetworkSim::new(
            NetworkConfig::new(64, 4)
                .buffer_kind(kind)
                .slots_per_buffer(4)
                .offered_load(0.5)
                .seed(1),
        )
        .unwrap();
        sim.run(500); // steady state
        bench(&format!("omega64_cycle/{kind}"), || {
            sim.step();
            black_box(sim.metrics().delivered())
        });
    }
}

/// Whole measurement windows, as the table harnesses run them.
fn bench_measurement_window() {
    println!("-- measurement windows --");
    let mut sim = NetworkSim::new(
        NetworkConfig::new(64, 4)
            .buffer_kind(BufferKind::Damq)
            .offered_load(0.5)
            .seed(2),
    )
    .unwrap();
    sim.run(500);
    bench("omega64_damq_100cycles", || {
        sim.run(100);
        black_box(sim.metrics().delivered())
    });
}

/// One ComCoBB clock cycle with all five ports streaming.
fn bench_chip_tick() {
    println!("-- chip --");
    let mut chip = Chip::new(ChipConfig::comcobb());
    for input in 0..5 {
        let output = (input + 1) % 5;
        chip.program_route(
            input,
            input as u8,
            RouteEntry {
                output,
                new_header: input as u8,
            },
        )
        .unwrap();
    }
    // Keep the wires saturated far beyond the benchmark horizon.
    for input in 0..5usize {
        let mut at = 0;
        for _ in 0..20_000 {
            at = chip
                .input_wire_mut(input)
                .drive_packet(at, input as u8, &[0xAB; 32]);
        }
    }
    bench("comcobb_tick_busy", || {
        chip.tick();
        black_box(chip.cycle())
    });
}

fn main() {
    bench_network_cycle();
    bench_measurement_window();
    bench_chip_tick();
}
