//! Asserts the free-when-disabled metrics-registry claim.
//!
//! `NetworkSim` constructs its `MetricsRegistry` disabled; every
//! `registry.add`/`registry.observe` site is then a single branch on a
//! cold flag, and the per-cycle occupancy scan is skipped entirely. This
//! harness times one network cycle with the registry in its default
//! (disabled) state against the established zero-overhead baseline — a
//! disabled `MemorySink` — and fails if the disabled registry makes the
//! cycle measurably slower. It also reports the enabled-registry cost
//! for the record (that path pays for real histogram updates and the
//! occupancy scan, and is *expected* to cost something).

use damq_bench::timing::bench;
use damq_core::BufferKind;
use damq_net::{NetworkConfig, NetworkSim};
use damq_switch::FlowControl;
use damq_telemetry::MemorySink;

fn config() -> NetworkConfig {
    NetworkConfig::new(16, 4)
        .buffer_kind(BufferKind::Damq)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .offered_load(0.5)
        .seed(0xDA3B)
}

fn main() {
    println!("no-op metrics-registry overhead (16x4 Omega, DAMQ, load 0.5; one cycle per op)");

    let mut plain_sim = NetworkSim::new(config()).expect("valid config");
    let plain = bench("network_cycle/registry disabled (default)", || {
        plain_sim.step();
        plain_sim.cycle()
    });

    let mut disabled_sink = MemorySink::new();
    disabled_sink.set_enabled(false);
    let mut baseline_sim = NetworkSim::with_sink(config(), disabled_sink).expect("valid config");
    let baseline = bench("network_cycle/disabled MemorySink baseline", || {
        baseline_sim.step();
        baseline_sim.cycle()
    });

    let mut metered_sim = NetworkSim::new(config())
        .expect("valid config")
        .with_metrics();
    let metered = bench("network_cycle/registry enabled", || {
        metered_sim.step();
        metered_sim.cycle()
    });

    let ratio = plain.min_ns / baseline.min_ns;
    println!();
    println!("disabled registry vs disabled MemorySink (min ns/op): ratio {ratio:.3}");
    println!(
        "metering cost when enabled: {:.2}x the unmetered cycle",
        metered.min_ns / plain.min_ns
    );
    assert!(
        ratio <= 1.25,
        "a cycle with the registry disabled ({:.1} ns) is more than 25% slower \
         than the disabled-MemorySink baseline ({:.1} ns) — the disabled \
         registry path is no longer free",
        plain.min_ns,
        baseline.min_ns
    );
    println!("ok: the disabled registry is free");
}
