//! Asserts the zero-overhead-when-disabled telemetry claim.
//!
//! `NetworkSim` defaults to `NullSink`, whose `enabled()` returns a
//! constant `false` through a monomorphized generic — every
//! instrumentation site should therefore compile to nothing, leaving the
//! hot path as fast as the pre-telemetry simulator. This harness times
//! one network cycle under three sinks and fails if the `NullSink` path
//! is measurably slower than a disabled `MemorySink` (the cheapest
//! runtime-gated alternative), which would mean the instrumentation
//! stopped compiling away.

use damq_bench::timing::bench;
use damq_core::BufferKind;
use damq_net::{NetworkConfig, NetworkSim};
use damq_switch::FlowControl;
use damq_telemetry::MemorySink;

fn config() -> NetworkConfig {
    NetworkConfig::new(16, 4)
        .buffer_kind(BufferKind::Damq)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .offered_load(0.5)
        .seed(0xDA3B)
}

fn main() {
    println!("no-op sink overhead (16x4 Omega, DAMQ, load 0.5; one cycle per op)");

    let mut null_sim = NetworkSim::new(config()).expect("valid config");
    let null = bench("network_cycle/NullSink (default)", || {
        null_sim.step();
        null_sim.cycle()
    });

    let mut disabled_sink = MemorySink::new();
    disabled_sink.set_enabled(false);
    let mut disabled_sim = NetworkSim::with_sink(config(), disabled_sink).expect("valid config");
    let disabled = bench("network_cycle/MemorySink disabled", || {
        disabled_sim.step();
        disabled_sim.cycle()
    });

    let mut traced_sim = NetworkSim::with_sink(config(), MemorySink::new()).expect("valid config");
    let traced = bench("network_cycle/MemorySink enabled", || {
        traced_sim.sink_mut().clear(); // keep memory flat across batches
        traced_sim.step();
        traced_sim.cycle()
    });

    let ratio = null.min_ns / disabled.min_ns;
    println!();
    println!("NullSink vs disabled MemorySink (min ns/op): ratio {ratio:.3}");
    println!(
        "tracing cost when enabled: {:.2}x the uninstrumented cycle",
        traced.min_ns / null.min_ns
    );
    assert!(
        ratio <= 1.25,
        "NullSink cycle ({:.1} ns) is more than 25% slower than a disabled \
         MemorySink cycle ({:.1} ns) — the no-op instrumentation no longer \
         compiles away",
        null.min_ns,
        disabled.min_ns
    );
    println!("ok: disabled instrumentation is free");
}
