//! End-to-end simulator throughput: network cycles per second on the
//! paper's 64-terminal Omega of 4×4 switches, measured in steady state.
//!
//! This is the perf-trajectory benchmark behind `BENCH_throughput.json`
//! (committed at the workspace root). The headline cell is the hot-spot
//! DAMQ configuration — the workload every swept experiment in this repo
//! leans on — and the remaining cells put it in context: uniform traffic,
//! the FIFO baseline, and the three dispatch strategies for the same
//! simulation (`AnyBuffer` enum dispatch, fully monomorphized
//! `DamqBuffer`, and the boxed `dyn SwitchBuffer` compatibility facade).
//!
//! Usage:
//!
//! ```text
//! cargo bench -p damq-bench --bench sim_throughput              # measure + update JSON
//! cargo bench -p damq-bench --bench sim_throughput -- --smoke   # quick CI smoke run
//! cargo bench -p damq-bench --bench sim_throughput -- --rebaseline
//! ```
//!
//! Without flags the run preserves the committed `baseline` section and
//! rewrites `current` plus the per-cell `speedup` ratios; `--rebaseline`
//! promotes the fresh numbers to the new baseline (see
//! `docs/PERFORMANCE.md` for when that is appropriate).

use std::hint::black_box;

use damq_bench::json::Json;
use damq_bench::timing::{bench, Stats};
use damq_core::{BufferKind, DamqBuffer, SwitchBuffer};
use damq_net::{NetworkConfig, NetworkSim, TrafficPattern};
use damq_switch::FlowControl;

/// Cycles simulated before timing starts: enough for the hot-spot tree to
/// fill and backpressure to reach the sources (steady-state stepping).
const WARM_UP: u64 = 2_000;

/// The headline configuration: hot-spot traffic against DAMQ buffers at a
/// load well past the hot-spot saturation point, so every cycle exercises
/// backpressure probing, routing and arbitration.
fn hot_spot_config() -> NetworkConfig {
    NetworkConfig::new(64, 4)
        .buffer_kind(BufferKind::Damq)
        .slots_per_buffer(4)
        .traffic(TrafficPattern::paper_hot_spot())
        .flow_control(FlowControl::Blocking)
        .offered_load(0.5)
        .seed(0xBEEF)
}

fn uniform_config(kind: BufferKind) -> NetworkConfig {
    NetworkConfig::new(64, 4)
        .buffer_kind(kind)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .offered_load(0.5)
        .seed(0xBEEF)
}

/// Benchmarks steady-state stepping of `sim`, returning cycles per second
/// (from the min-over-batches estimate, the least noisy one).
fn bench_steps<B, F>(label: &str, config: NetworkConfig, warm_up: u64, build: F) -> f64
where
    B: SwitchBuffer,
    F: FnOnce(NetworkConfig) -> NetworkSim<B>,
{
    let mut sim = build(config);
    sim.run(warm_up);
    let stats: Stats = bench(label, || {
        sim.step();
        black_box(sim.cycle())
    });
    1e9 / stats.min_ns
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let rebaseline = args.iter().any(|a| a == "--rebaseline");

    if smoke {
        // CI smoke: exercise every dispatch path for a handful of cycles
        // and verify they agree, without the multi-second calibration.
        let mut enum_sim = NetworkSim::new(hot_spot_config()).expect("valid config");
        let mut typed_sim =
            NetworkSim::<DamqBuffer>::typed(hot_spot_config()).expect("valid config");
        let mut boxed_sim =
            NetworkSim::<Box<dyn SwitchBuffer>>::typed(hot_spot_config()).expect("valid config");
        enum_sim.run(50);
        typed_sim.run(50);
        boxed_sim.run(50);
        assert_eq!(
            enum_sim.metrics().delivered(),
            typed_sim.metrics().delivered()
        );
        assert_eq!(
            enum_sim.metrics().delivered(),
            boxed_sim.metrics().delivered()
        );
        assert!(enum_sim.metrics().delivered() > 0);
        println!("sim_throughput smoke: 3 dispatch paths agree after 50 cycles");
        return;
    }

    println!("sim_throughput: 64-terminal Omega of 4x4 switches, blocking, smart arbitration");
    println!("(cycles/sec derived from min ns/cycle over {WARM_UP}-cycle warmed sims)");
    println!();

    let mut cells: Vec<(&'static str, f64)> = Vec::new();
    let cps = bench_steps("hotspot_damq", hot_spot_config(), WARM_UP, |c| {
        NetworkSim::new(c).expect("valid config")
    });
    cells.push(("hotspot_damq", cps));
    let cps = bench_steps("hotspot_damq_noskip", hot_spot_config(), WARM_UP, |c| {
        NetworkSim::new(c)
            .expect("valid config")
            .with_idle_skip(false)
    });
    cells.push(("hotspot_damq_noskip", cps));
    let cps = bench_steps::<DamqBuffer, _>("hotspot_damq_typed", hot_spot_config(), WARM_UP, |c| {
        NetworkSim::typed(c).expect("valid config")
    });
    cells.push(("hotspot_damq_typed", cps));
    let cps = bench_steps::<Box<dyn SwitchBuffer>, _>(
        "hotspot_damq_boxdyn",
        hot_spot_config(),
        WARM_UP,
        |c| NetworkSim::typed(c).expect("valid config"),
    );
    cells.push(("hotspot_damq_boxdyn", cps));
    let cps = bench_steps("uniform_damq", uniform_config(BufferKind::Damq), 500, |c| {
        NetworkSim::new(c).expect("valid config")
    });
    cells.push(("uniform_damq", cps));
    let cps = bench_steps("uniform_fifo", uniform_config(BufferKind::Fifo), 500, |c| {
        NetworkSim::new(c).expect("valid config")
    });
    cells.push(("uniform_fifo", cps));

    println!();
    for (name, cps) in &cells {
        println!("{name:>20}: {cps:>12.0} cycles/sec");
    }

    write_report(&cells, rebaseline);
}

/// Path of the committed throughput record, resolved from this crate's
/// manifest so the bench works from any working directory.
fn report_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json")
}

fn cells_json(cells: &[(&'static str, f64)]) -> Json {
    Json::obj(cells.iter().map(|&(name, cps)| {
        (
            name,
            Json::obj([
                ("cycles_per_sec", Json::from(cps)),
                ("ns_per_cycle", Json::from(1e9 / cps)),
            ]),
        )
    }))
}

/// Per-cell `current[cell] / reference[cell]` ratios, skipping cells the
/// reference does not carry.
fn speedup_vs(cells: &[(&'static str, f64)], reference: &Json) -> Json {
    Json::obj(cells.iter().filter_map(|&(name, cps)| {
        let base = reference
            .get(name)
            .and_then(|cell| cell.get("cycles_per_sec"))
            .and_then(Json::as_f64)?;
        (base > 0.0).then(|| (name, Json::from(cps / base)))
    }))
}

/// Rewrites this harness's sections of `BENCH_throughput.json`:
/// `current` always reflects this run; `baseline` is preserved from the
/// existing file unless `--rebaseline` (or no file exists yet); the `soa`
/// section pins the structure-of-arrays refactor against the last
/// pre-SoA run. Per-cell `speedup` is current/baseline.
///
/// Sections this harness does not own (`scaling` and `phase_profile`
/// from `parallel_scaling`, anything future) are merged through
/// untouched — running `sim_throughput` then `parallel_scaling` once
/// regenerates every section of the file; neither order leaves a stale
/// cell behind.
fn write_report(cells: &[(&'static str, f64)], rebaseline: bool) {
    let path = report_path();
    let current = cells_json(cells);
    let existing = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| Json::parse(&text).ok());
    let baseline = if rebaseline {
        None
    } else {
        existing
            .as_ref()
            .and_then(|doc| doc.get("baseline").cloned())
    };
    let baseline = baseline.unwrap_or_else(|| current.clone());

    // The SoA reference: the `current` section the pre-SoA tree
    // committed (PR 8). Snapshotted into the `soa` section on the first
    // post-refactor run and preserved afterwards, so the layout
    // refactor's effect stays readable even after rebaselines.
    let pr8_reference = existing
        .as_ref()
        .and_then(|doc| doc.get("soa"))
        .and_then(|soa| soa.get("pr8_reference"))
        .or_else(|| existing.as_ref().and_then(|doc| doc.get("current")))
        .cloned()
        .unwrap_or_else(|| current.clone());
    let soa = Json::obj([
        (
            "_note",
            Json::from(
                "structure-of-arrays slot storage + batched cycle kernels + idle-skip \
                 vs the committed pre-SoA (PR 8, monomorphized per-packet-struct) run \
                 on the same cells; hotspot_damq_noskip is this tree with the \
                 quiescence fast path disabled. The reference was measured on the \
                 PR 8 host: compare ratios, not absolute cycles/sec, across machines \
                 (docs/PERFORMANCE.md) — EXPERIMENTS.md records a same-host \
                 re-measurement of the PR 8 tree next to this run",
            ),
        ),
        ("pr8_reference", pr8_reference.clone()),
        ("speedup_vs_pr8", speedup_vs(cells, &pr8_reference)),
    ]);

    let speedup = speedup_vs(cells, &baseline);
    let own_sections: Vec<(&str, Json)> = vec![
        ("bench", Json::from("sim_throughput")),
        (
            "network",
            Json::from("64-terminal Omega of 4x4 switches, blocking, smart arbitration"),
        ),
        ("headline", Json::from("hotspot_damq")),
        ("warm_up_cycles", Json::from(WARM_UP)),
        ("baseline", baseline),
        ("current", current),
        ("speedup", speedup),
        ("soa", soa),
    ];
    let mut pairs = match existing {
        Some(Json::Obj(pairs)) => pairs,
        _ => Vec::new(),
    };
    for (key, value) in own_sections {
        match pairs.iter_mut().find(|(k, _)| k == key) {
            Some((_, slot)) => *slot = value,
            None => pairs.push((key.to_owned(), value)),
        }
    }
    let doc = Json::Obj(pairs);
    match std::fs::write(&path, doc.render_pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    let headline = doc
        .get("speedup")
        .and_then(|s| s.get("hotspot_damq"))
        .and_then(Json::as_f64)
        .unwrap_or(1.0);
    let vs_pr8 = doc
        .get("soa")
        .and_then(|s| s.get("speedup_vs_pr8"))
        .and_then(|s| s.get("hotspot_damq"))
        .and_then(Json::as_f64)
        .unwrap_or(1.0);
    println!();
    println!("headline speedup vs baseline (hotspot_damq): {headline:.2}x");
    println!("headline speedup vs pre-SoA tree (hotspot_damq): {vs_pr8:.2}x");
}
