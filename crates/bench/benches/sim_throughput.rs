//! End-to-end simulator throughput: network cycles per second on the
//! paper's 64-terminal Omega of 4×4 switches, measured in steady state.
//!
//! This is the perf-trajectory benchmark behind `BENCH_throughput.json`
//! (committed at the workspace root). The headline cell is the hot-spot
//! DAMQ configuration — the workload every swept experiment in this repo
//! leans on — and the remaining cells put it in context: uniform traffic,
//! the FIFO baseline, and the three dispatch strategies for the same
//! simulation (`AnyBuffer` enum dispatch, fully monomorphized
//! `DamqBuffer`, and the boxed `dyn SwitchBuffer` compatibility facade).
//!
//! Usage:
//!
//! ```text
//! cargo bench -p damq-bench --bench sim_throughput              # measure + update JSON
//! cargo bench -p damq-bench --bench sim_throughput -- --smoke   # quick CI smoke run
//! cargo bench -p damq-bench --bench sim_throughput -- --rebaseline
//! ```
//!
//! Without flags the run preserves the committed `baseline` section and
//! rewrites `current` plus the per-cell `speedup` ratios; `--rebaseline`
//! promotes the fresh numbers to the new baseline (see
//! `docs/PERFORMANCE.md` for when that is appropriate).

use std::hint::black_box;

use damq_bench::json::Json;
use damq_bench::timing::{bench, Stats};
use damq_core::{BufferKind, DamqBuffer, SwitchBuffer};
use damq_net::{NetworkConfig, NetworkSim, TrafficPattern};
use damq_switch::FlowControl;

/// Cycles simulated before timing starts: enough for the hot-spot tree to
/// fill and backpressure to reach the sources (steady-state stepping).
const WARM_UP: u64 = 2_000;

/// The headline configuration: hot-spot traffic against DAMQ buffers at a
/// load well past the hot-spot saturation point, so every cycle exercises
/// backpressure probing, routing and arbitration.
fn hot_spot_config() -> NetworkConfig {
    NetworkConfig::new(64, 4)
        .buffer_kind(BufferKind::Damq)
        .slots_per_buffer(4)
        .traffic(TrafficPattern::paper_hot_spot())
        .flow_control(FlowControl::Blocking)
        .offered_load(0.5)
        .seed(0xBEEF)
}

fn uniform_config(kind: BufferKind) -> NetworkConfig {
    NetworkConfig::new(64, 4)
        .buffer_kind(kind)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .offered_load(0.5)
        .seed(0xBEEF)
}

/// Benchmarks steady-state stepping of `sim`, returning cycles per second
/// (from the min-over-batches estimate, the least noisy one).
fn bench_steps<B, F>(label: &str, config: NetworkConfig, warm_up: u64, build: F) -> f64
where
    B: SwitchBuffer,
    F: FnOnce(NetworkConfig) -> NetworkSim<B>,
{
    let mut sim = build(config);
    sim.run(warm_up);
    let stats: Stats = bench(label, || {
        sim.step();
        black_box(sim.cycle())
    });
    1e9 / stats.min_ns
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let rebaseline = args.iter().any(|a| a == "--rebaseline");

    if smoke {
        // CI smoke: exercise every dispatch path for a handful of cycles
        // and verify they agree, without the multi-second calibration.
        let mut enum_sim = NetworkSim::new(hot_spot_config()).expect("valid config");
        let mut typed_sim =
            NetworkSim::<DamqBuffer>::typed(hot_spot_config()).expect("valid config");
        let mut boxed_sim =
            NetworkSim::<Box<dyn SwitchBuffer>>::typed(hot_spot_config()).expect("valid config");
        enum_sim.run(50);
        typed_sim.run(50);
        boxed_sim.run(50);
        assert_eq!(
            enum_sim.metrics().delivered(),
            typed_sim.metrics().delivered()
        );
        assert_eq!(
            enum_sim.metrics().delivered(),
            boxed_sim.metrics().delivered()
        );
        assert!(enum_sim.metrics().delivered() > 0);
        println!("sim_throughput smoke: 3 dispatch paths agree after 50 cycles");
        return;
    }

    println!("sim_throughput: 64-terminal Omega of 4x4 switches, blocking, smart arbitration");
    println!("(cycles/sec derived from min ns/cycle over {WARM_UP}-cycle warmed sims)");
    println!();

    let mut cells: Vec<(&'static str, f64)> = Vec::new();
    let cps = bench_steps("hotspot_damq", hot_spot_config(), WARM_UP, |c| {
        NetworkSim::new(c).expect("valid config")
    });
    cells.push(("hotspot_damq", cps));
    let cps = bench_steps::<DamqBuffer, _>("hotspot_damq_typed", hot_spot_config(), WARM_UP, |c| {
        NetworkSim::typed(c).expect("valid config")
    });
    cells.push(("hotspot_damq_typed", cps));
    let cps = bench_steps::<Box<dyn SwitchBuffer>, _>(
        "hotspot_damq_boxdyn",
        hot_spot_config(),
        WARM_UP,
        |c| NetworkSim::typed(c).expect("valid config"),
    );
    cells.push(("hotspot_damq_boxdyn", cps));
    let cps = bench_steps("uniform_damq", uniform_config(BufferKind::Damq), 500, |c| {
        NetworkSim::new(c).expect("valid config")
    });
    cells.push(("uniform_damq", cps));
    let cps = bench_steps("uniform_fifo", uniform_config(BufferKind::Fifo), 500, |c| {
        NetworkSim::new(c).expect("valid config")
    });
    cells.push(("uniform_fifo", cps));

    println!();
    for (name, cps) in &cells {
        println!("{name:>20}: {cps:>12.0} cycles/sec");
    }

    write_report(&cells, rebaseline);
}

/// Path of the committed throughput record, resolved from this crate's
/// manifest so the bench works from any working directory.
fn report_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json")
}

fn cells_json(cells: &[(&'static str, f64)]) -> Json {
    Json::obj(cells.iter().map(|&(name, cps)| {
        (
            name,
            Json::obj([
                ("cycles_per_sec", Json::from(cps)),
                ("ns_per_cycle", Json::from(1e9 / cps)),
            ]),
        )
    }))
}

/// Rewrites `BENCH_throughput.json`: `current` always reflects this run;
/// `baseline` is preserved from the existing file unless `--rebaseline`
/// (or no file exists yet). Per-cell `speedup` is current/baseline.
fn write_report(cells: &[(&'static str, f64)], rebaseline: bool) {
    let path = report_path();
    let current = cells_json(cells);
    let existing = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| Json::parse(&text).ok());
    let baseline = if rebaseline {
        None
    } else {
        existing
            .as_ref()
            .and_then(|doc| doc.get("baseline").cloned())
    };
    let baseline = baseline.unwrap_or_else(|| current.clone());
    // The threads × network-size curves belong to the parallel_scaling
    // harness; carry its section through untouched.
    let scaling = existing
        .as_ref()
        .and_then(|doc| doc.get("scaling").cloned());

    let speedup = Json::obj(cells.iter().filter_map(|&(name, cps)| {
        let base = baseline
            .get(name)
            .and_then(|cell| cell.get("cycles_per_sec"))
            .and_then(Json::as_f64)?;
        (base > 0.0).then(|| (name, Json::from(cps / base)))
    }));

    let mut pairs = vec![
        ("bench".to_owned(), Json::from("sim_throughput")),
        (
            "network".to_owned(),
            Json::from("64-terminal Omega of 4x4 switches, blocking, smart arbitration"),
        ),
        ("headline".to_owned(), Json::from("hotspot_damq")),
        ("warm_up_cycles".to_owned(), Json::from(WARM_UP)),
        ("baseline".to_owned(), baseline),
        ("current".to_owned(), current),
        ("speedup".to_owned(), speedup),
    ];
    if let Some(scaling) = scaling {
        pairs.push(("scaling".to_owned(), scaling));
    }
    let doc = Json::Obj(pairs);
    match std::fs::write(&path, doc.render_pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    let headline = doc
        .get("speedup")
        .and_then(|s| s.get("hotspot_damq"))
        .and_then(Json::as_f64)
        .unwrap_or(1.0);
    println!();
    println!("headline speedup vs baseline (hotspot_damq): {headline:.2}x");
}
