//! **Ablation**: how much does *smart* arbitration matter?
//!
//! The paper compares dumb and smart arbitration only for discarding
//! switches at one load (Table 3), finding "not significantly different".
//! This harness sweeps both policies across all designs and both
//! protocols, including the saturation point, to map where the choice
//! matters at all.

use damq_bench::render_table;
use damq_core::BufferKind;
use damq_net::{find_saturation, measure, NetworkConfig, SaturationOptions};
use damq_switch::{ArbiterPolicy, FlowControl};

fn main() {
    println!("Ablation: dumb vs smart crossbar arbitration");
    println!("(64x64 Omega, 4 slots per buffer, uniform traffic)");
    println!();

    let base = NetworkConfig::new(64, 4).slots_per_buffer(4);

    println!("-- blocking protocol: latency at 0.45 load / saturation throughput --");
    let header = [
        "Buffer",
        "dumb lat@.45",
        "smart lat@.45",
        "dumb sat",
        "smart sat",
    ];
    let mut rows = Vec::new();
    for kind in BufferKind::ALL {
        let cell = |policy: ArbiterPolicy| {
            let m = measure(
                base.buffer_kind(kind)
                    .arbiter_policy(policy)
                    .flow_control(FlowControl::Blocking)
                    .offered_load(0.45),
                1_000,
                8_000,
            )
            .expect("sim runs");
            let sat = find_saturation(
                base.buffer_kind(kind)
                    .arbiter_policy(policy)
                    .flow_control(FlowControl::Blocking),
                SaturationOptions::default(),
            )
            .expect("search runs");
            (m.latency_clocks, sat.throughput)
        };
        let (dumb_lat, dumb_sat) = cell(ArbiterPolicy::Dumb);
        let (smart_lat, smart_sat) = cell(ArbiterPolicy::Smart);
        rows.push(vec![
            kind.name().to_owned(),
            format!("{dumb_lat:.1}"),
            format!("{smart_lat:.1}"),
            format!("{dumb_sat:.2}"),
            format!("{smart_sat:.2}"),
        ]);
    }
    print!("{}", render_table(&header, &rows));

    println!();
    println!("-- discarding protocol: % discarded at 0.50 load --");
    let header = ["Buffer", "dumb %disc", "smart %disc"];
    let mut rows = Vec::new();
    for kind in BufferKind::ALL {
        let disc = |policy: ArbiterPolicy| {
            measure(
                base.buffer_kind(kind)
                    .arbiter_policy(policy)
                    .flow_control(FlowControl::Discarding)
                    .offered_load(0.50),
                1_000,
                8_000,
            )
            .expect("sim runs")
            .discard_fraction
                * 100.0
        };
        rows.push(vec![
            kind.name().to_owned(),
            format!("{:.2}", disc(ArbiterPolicy::Dumb)),
            format!("{:.2}", disc(ArbiterPolicy::Smart)),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("the paper's Table 3 finding (arbitration policy barely matters) should");
    println!("hold across the board; stale counts mostly protect worst-case fairness.");
}
