//! **Ablation**: how much does *smart* arbitration matter?
//!
//! The paper compares dumb and smart arbitration only for discarding
//! switches at one load (Table 3), finding "not significantly different".
//! This harness sweeps both policies across all designs and both
//! protocols, including the saturation point, to map where the choice
//! matters at all.
//!
//! The (design, policy) grids — blocking latency + saturation, then
//! discarding loss — are swept in parallel through [`damq_bench::sweep`],
//! each cell seeded from its coordinates. The run also writes
//! `results/json/ablation_arbitration.json`.

use damq_bench::json::{measurement_json, saturation_json, Json, Report};
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_net::{find_saturation, measure, NetworkConfig, SaturationOptions};
use damq_switch::{ArbiterPolicy, FlowControl};

const POLICIES: [ArbiterPolicy; 2] = [ArbiterPolicy::Dumb, ArbiterPolicy::Smart];

fn main() {
    println!("Ablation: dumb vs smart crossbar arbitration");
    println!("(64x64 Omega, 4 slots per buffer, uniform traffic)");
    println!();

    let base = NetworkConfig::new(64, 4).slots_per_buffer(4);
    let cells: Vec<(usize, usize)> = (0..BufferKind::ALL.len())
        .flat_map(|k| (0..POLICIES.len()).map(move |p| (k, p)))
        .collect();

    // Blocking protocol: latency at 0.45 load + saturation throughput.
    let mut report = Report::new("ablation_arbitration");
    let blocking = sweep::run(&cells, |&(k, p)| {
        let cfg = base
            .buffer_kind(BufferKind::ALL[k])
            .arbiter_policy(POLICIES[p])
            .flow_control(FlowControl::Blocking)
            .seed(sweep::cell_seed(sweep::BASE_SEED, &[0, k as u64, p as u64]));
        let m = measure(cfg.offered_load(0.45), 1_000, 8_000).expect("sim runs");
        let sat = find_saturation(cfg, SaturationOptions::default()).expect("search runs");
        (m, sat)
    });
    // Discarding protocol: loss at 0.50 load.
    let discarding = sweep::run(&cells, |&(k, p)| {
        measure(
            base.buffer_kind(BufferKind::ALL[k])
                .arbiter_policy(POLICIES[p])
                .flow_control(FlowControl::Discarding)
                .offered_load(0.50)
                .seed(sweep::cell_seed(sweep::BASE_SEED, &[1, k as u64, p as u64])),
            1_000,
            8_000,
        )
        .expect("sim runs")
    });

    report.meta("network", Json::from("64x64 Omega, uniform"));
    report.meta("slots_per_buffer", Json::from(4usize));
    for (&(k, p), (m, sat)) in cells.iter().zip(&blocking) {
        let coords = [
            ("buffer", Json::from(BufferKind::ALL[k].name())),
            ("arbiter", Json::from(POLICIES[p].name())),
            ("flow_control", Json::from("Blocking")),
        ];
        report.push_cell(Json::cell(coords.clone(), measurement_json(m)));
        let mut sat_coords = coords.to_vec();
        sat_coords.push(("saturation_search", Json::from(true)));
        report.push_cell(Json::cell(sat_coords, saturation_json(sat)));
    }
    for (&(k, p), m) in cells.iter().zip(&discarding) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(BufferKind::ALL[k].name())),
                ("arbiter", Json::from(POLICIES[p].name())),
                ("flow_control", Json::from("Discarding")),
            ],
            measurement_json(m),
        ));
    }

    println!("-- blocking protocol: latency at 0.45 load / saturation throughput --");
    let header = [
        "Buffer",
        "dumb lat@.45",
        "smart lat@.45",
        "dumb sat",
        "smart sat",
    ];
    let mut rows = Vec::new();
    let mut b_iter = blocking.iter();
    for kind in BufferKind::ALL {
        let (dumb_m, dumb_sat) = b_iter.next().expect("cell");
        let (smart_m, smart_sat) = b_iter.next().expect("cell");
        rows.push(vec![
            kind.name().to_owned(),
            format!("{:.1}", dumb_m.latency_clocks),
            format!("{:.1}", smart_m.latency_clocks),
            format!("{:.2}", dumb_sat.throughput),
            format!("{:.2}", smart_sat.throughput),
        ]);
    }
    print!("{}", render_table(&header, &rows));

    println!();
    println!("-- discarding protocol: % discarded at 0.50 load --");
    let header = ["Buffer", "dumb %disc", "smart %disc"];
    let mut rows = Vec::new();
    let mut d_iter = discarding.iter();
    for kind in BufferKind::ALL {
        let dumb = d_iter.next().expect("cell");
        let smart = d_iter.next().expect("cell");
        rows.push(vec![
            kind.name().to_owned(),
            format!("{:.2}", dumb.discard_fraction * 100.0),
            format!("{:.2}", smart.discard_fraction * 100.0),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("the paper's Table 3 finding (arbitration policy barely matters) should");
    println!("hold across the board; stale counts mostly protect worst-case fairness.");
    report.write_and_announce();
}
