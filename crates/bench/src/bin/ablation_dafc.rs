//! **Ablation** (beyond the paper): which of DAMQ's two mechanisms buys
//! the performance — dynamic storage allocation, or multi-queue service?
//!
//! The paper observes (§4.1) that SAFC barely beats SAMQ, i.e. adding read
//! bandwidth to *static* buffers is nearly worthless. This harness
//! completes the design matrix with DAFC (dynamic storage + fully
//! connected) on both evaluation vehicles:
//!
//! | | single read port | read port per output |
//! |---|---|---|
//! | static | SAMQ | SAFC |
//! | dynamic | DAMQ | DAFC |
//!
//! The Markov grid and the saturation searches are swept in parallel
//! through [`damq_bench::sweep`]; simulation cells are seeded from their
//! coordinates. The run also writes `results/json/ablation_dafc.json`.

use damq_bench::json::{discard_point_json, saturation_json, Json, Report};
use damq_bench::{fmt_prob, render_table, sweep};
use damq_core::BufferKind;
use damq_markov::{discard_probability, CycleOrder, SolveOptions};
use damq_net::{find_saturation, NetworkConfig, SaturationOptions};
use damq_switch::FlowControl;

const KINDS: [BufferKind; 4] = [
    BufferKind::Samq,
    BufferKind::Safc,
    BufferKind::Damq,
    BufferKind::Dafc,
];
const TRAFFICS: [f64; 4] = [0.50, 0.75, 0.90, 0.99];

fn main() {
    println!("Ablation: allocation policy vs read connectivity");
    println!();

    let markov_cells: Vec<(usize, usize)> = (0..KINDS.len())
        .flat_map(|k| (0..TRAFFICS.len()).map(move |t| (k, t)))
        .collect();
    let mut report = Report::new("ablation_dafc");
    let points = sweep::run(&markov_cells, |&(k, t)| {
        discard_probability(
            KINDS[k],
            4,
            TRAFFICS[t],
            CycleOrder::ArrivalsFirst,
            SolveOptions::default(),
        )
        .expect("analysis runs")
    });

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);
    let sat_cells: Vec<usize> = (0..KINDS.len()).collect();
    let saturations = sweep::run(&sat_cells, |&k| {
        find_saturation(
            base.buffer_kind(KINDS[k])
                .seed(sweep::cell_seed(sweep::BASE_SEED, &[k as u64])),
            SaturationOptions::default(),
        )
        .expect("search runs")
    });

    report.meta("markov_switch", Json::from("2x2 discarding, 4 slots"));
    report.meta("network", Json::from("64x64 Omega, blocking, 4 slots"));
    for (&(k, t), point) in markov_cells.iter().zip(&points) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(KINDS[k].name())),
                ("traffic", Json::from(TRAFFICS[t])),
                ("vehicle", Json::from("markov")),
            ],
            discard_point_json(point),
        ));
    }
    for (&k, sat) in sat_cells.iter().zip(&saturations) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(KINDS[k].name())),
                ("vehicle", Json::from("simulation")),
            ],
            saturation_json(sat),
        ));
    }

    println!("-- Markov discard probability, 2x2 discarding switch, 4 slots --");
    let mut header: Vec<String> = vec!["Buffer".into()];
    header.extend(TRAFFICS.iter().map(|t| format!("{:.0}%", t * 100.0)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    let mut point_iter = points.iter();
    for kind in KINDS {
        let mut row = vec![kind.name().to_owned()];
        for _ in &TRAFFICS {
            let p = point_iter.next().expect("cell");
            row.push(fmt_prob(p.discard_probability));
        }
        rows.push(row);
    }
    print!("{}", render_table(&header_refs, &rows));

    println!();
    println!("-- Omega 64x64 saturation throughput, blocking, 4 slots --");
    let mut rows = Vec::new();
    let mut sat_of = std::collections::HashMap::new();
    for (k, kind) in KINDS.iter().enumerate() {
        sat_of.insert(*kind, saturations[k].throughput);
        rows.push(vec![
            kind.name().to_owned(),
            format!("{:.2}", saturations[k].throughput),
        ]);
    }
    print!("{}", render_table(&["Buffer", "sat. thr"], &rows));

    println!();
    let static_gain = sat_of[&BufferKind::Safc] - sat_of[&BufferKind::Samq];
    let dynamic_gain = sat_of[&BufferKind::Dafc] - sat_of[&BufferKind::Damq];
    let allocation_gain = sat_of[&BufferKind::Damq] - sat_of[&BufferKind::Samq];
    println!("full connectivity adds {static_gain:+.2} on static buffers (SAMQ->SAFC)");
    println!("full connectivity adds {dynamic_gain:+.2} on dynamic buffers (DAMQ->DAFC)");
    println!("dynamic allocation alone adds {allocation_gain:+.2} (SAMQ->DAMQ)");
    println!();
    println!("conclusion: the allocation policy, not the read fabric, is what matters --");
    println!("which is why the paper's single-read-port DAMQ is the sweet spot in silicon.");
    report.write_and_announce();
}
