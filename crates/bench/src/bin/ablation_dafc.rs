//! **Ablation** (beyond the paper): which of DAMQ's two mechanisms buys
//! the performance — dynamic storage allocation, or multi-queue service?
//!
//! The paper observes (§4.1) that SAFC barely beats SAMQ, i.e. adding read
//! bandwidth to *static* buffers is nearly worthless. This harness
//! completes the design matrix with DAFC (dynamic storage + fully
//! connected) on both evaluation vehicles:
//!
//! | | single read port | read port per output |
//! |---|---|---|
//! | static | SAMQ | SAFC |
//! | dynamic | DAMQ | DAFC |

use damq_bench::{fmt_prob, render_table};
use damq_core::BufferKind;
use damq_markov::{discard_probability, CycleOrder, SolveOptions};
use damq_net::{find_saturation, NetworkConfig, SaturationOptions};
use damq_switch::FlowControl;

fn main() {
    println!("Ablation: allocation policy vs read connectivity");
    println!();
    println!("-- Markov discard probability, 2x2 discarding switch, 4 slots --");
    let traffics = [0.50, 0.75, 0.90, 0.99];
    let mut header: Vec<String> = vec!["Buffer".into()];
    header.extend(traffics.iter().map(|t| format!("{:.0}%", t * 100.0)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for kind in [
        BufferKind::Samq,
        BufferKind::Safc,
        BufferKind::Damq,
        BufferKind::Dafc,
    ] {
        let mut row = vec![kind.name().to_owned()];
        for &t in &traffics {
            let p = discard_probability(
                kind,
                4,
                t,
                CycleOrder::ArrivalsFirst,
                SolveOptions::default(),
            )
            .expect("analysis runs");
            row.push(fmt_prob(p.discard_probability));
        }
        rows.push(row);
    }
    print!("{}", render_table(&header_refs, &rows));

    println!();
    println!("-- Omega 64x64 saturation throughput, blocking, 4 slots --");
    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);
    let mut rows = Vec::new();
    let mut sat_of = std::collections::HashMap::new();
    for kind in [
        BufferKind::Samq,
        BufferKind::Safc,
        BufferKind::Damq,
        BufferKind::Dafc,
    ] {
        let sat = find_saturation(base.buffer_kind(kind), SaturationOptions::default())
            .expect("search runs");
        sat_of.insert(kind, sat.throughput);
        rows.push(vec![
            kind.name().to_owned(),
            format!("{:.2}", sat.throughput),
        ]);
    }
    print!("{}", render_table(&["Buffer", "sat. thr"], &rows));

    println!();
    let static_gain = sat_of[&BufferKind::Safc] - sat_of[&BufferKind::Samq];
    let dynamic_gain = sat_of[&BufferKind::Dafc] - sat_of[&BufferKind::Damq];
    let allocation_gain = sat_of[&BufferKind::Damq] - sat_of[&BufferKind::Samq];
    println!("full connectivity adds {static_gain:+.2} on static buffers (SAMQ->SAFC)");
    println!("full connectivity adds {dynamic_gain:+.2} on dynamic buffers (DAMQ->DAFC)");
    println!("dynamic allocation alone adds {allocation_gain:+.2} (SAMQ->DAMQ)");
    println!();
    println!("conclusion: the allocation policy, not the read fabric, is what matters --");
    println!("which is why the paper's single-read-port DAMQ is the sweet spot in silicon.");
}
