//! **Extension**: bursty sources.
//!
//! The paper's traffic is Bernoulli — every cycle independent. Real
//! processors emit *bursts* (cache-line sequences, message trains). Since
//! saturation throughput is a mean-rate property, burstiness shows up not
//! at the knee but in the **latency distribution**: this harness keeps the
//! mean load fixed and clumps it into dense on/off bursts (12-cycle
//! bursts, 30% duty — 3.3× the mean rate while ON), then compares means
//! and p99 tails across the designs.

use damq_bench::render_table;
use damq_core::BufferKind;
use damq_net::{measure, ArrivalProcess, NetworkConfig};
use damq_switch::FlowControl;

const SMOOTH: ArrivalProcess = ArrivalProcess::Bernoulli;
const BURSTY: ArrivalProcess = ArrivalProcess::OnOff {
    mean_burst: 12.0,
    duty: 0.3,
};

fn main() {
    println!("Bursty sources: same mean load, clumped into on/off bursts");
    println!("(64x64 Omega, blocking, 4 slots; bursty = 12-cycle bursts at 30% duty)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);

    let loads = [0.10, 0.20, 0.28];
    let mut header: Vec<String> = vec!["Buffer".into(), "arrivals".into()];
    for load in loads {
        header.push(format!("lat@{load:.2}"));
        header.push(format!("p99@{load:.2}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut p99_at_28 = std::collections::HashMap::new();
    for kind in BufferKind::ALL {
        for (label, arrivals) in [("smooth", SMOOTH), ("bursty", BURSTY)] {
            let mut row = vec![kind.name().to_owned(), label.to_owned()];
            for load in loads {
                let m = measure(
                    base.buffer_kind(kind)
                        .arrival_process(arrivals)
                        .offered_load(load),
                    1_000,
                    10_000,
                )
                .expect("sim");
                row.push(format!("{:.1}", m.latency_clocks));
                row.push(format!("{:.0}", m.latency_p99_clocks));
                if load == 0.28 {
                    p99_at_28.insert((kind, label), m.latency_p99_clocks);
                }
            }
            rows.push(row);
        }
    }
    print!("{}", render_table(&header_refs, &rows));
    println!();
    println!(
        "at 0.28 mean load (93% of what 30%-duty sources can sustain), bursts push"
    );
    println!(
        "FIFO's p99 from {:.0} to {:.0} clocks; DAMQ's from {:.0} to {:.0} -- the shared",
        p99_at_28[&(BufferKind::Fifo, "smooth")],
        p99_at_28[&(BufferKind::Fifo, "bursty")],
        p99_at_28[&(BufferKind::Damq, "smooth")],
        p99_at_28[&(BufferKind::Damq, "bursty")],
    );
    println!("pool absorbs a burst aimed at one output without freezing the rest, so");
    println!("DAMQ's tail grows least. (saturation throughput itself is a mean-rate");
    println!("property and barely moves; the tail is where burstiness bites.)");
}
