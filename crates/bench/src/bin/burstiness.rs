//! **Extension**: bursty sources.
//!
//! The paper's traffic is Bernoulli — every cycle independent. Real
//! processors emit *bursts* (cache-line sequences, message trains). Since
//! saturation throughput is a mean-rate property, burstiness shows up not
//! at the knee but in the **latency distribution**: this harness keeps the
//! mean load fixed and clumps it into dense on/off bursts (12-cycle
//! bursts, 30% duty — 3.3× the mean rate while ON), then compares means
//! and p99 tails across the designs.
//!
//! The (design, arrival process, load) grid is swept in parallel through
//! [`damq_bench::sweep`], each cell seeded from its coordinates. The run
//! also writes `results/json/burstiness.json`.

use damq_bench::json::{measurement_json, Json, Report};
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_net::{measure, ArrivalProcess, NetworkConfig};
use damq_switch::FlowControl;

const SMOOTH: ArrivalProcess = ArrivalProcess::Bernoulli;
const BURSTY: ArrivalProcess = ArrivalProcess::OnOff {
    mean_burst: 12.0,
    duty: 0.3,
};
const LOADS: [f64; 3] = [0.10, 0.20, 0.28];

fn main() {
    println!("Bursty sources: same mean load, clumped into on/off bursts");
    println!("(64x64 Omega, blocking, 4 slots; bursty = 12-cycle bursts at 30% duty)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);

    let arrivals = [("smooth", SMOOTH), ("bursty", BURSTY)];
    let cells: Vec<(usize, usize, usize)> = (0..BufferKind::ALL.len())
        .flat_map(|k| {
            (0..arrivals.len()).flat_map(move |a| (0..LOADS.len()).map(move |l| (k, a, l)))
        })
        .collect();
    let mut report = Report::new("burstiness");
    let measurements = sweep::run(&cells, |&(k, a, l)| {
        measure(
            base.buffer_kind(BufferKind::ALL[k])
                .arrival_process(arrivals[a].1)
                .offered_load(LOADS[l])
                .seed(sweep::cell_seed(
                    sweep::BASE_SEED,
                    &[k as u64, a as u64, l as u64],
                )),
            1_000,
            10_000,
        )
        .expect("sim")
    });

    report.meta("network", Json::from("64x64 Omega, blocking, uniform"));
    report.meta("slots_per_buffer", Json::from(4usize));
    report.meta("bursty_mean_burst", Json::from(12.0));
    report.meta("bursty_duty", Json::from(0.3));
    for (&(k, a, l), m) in cells.iter().zip(&measurements) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(BufferKind::ALL[k].name())),
                ("arrivals", Json::from(arrivals[a].0)),
                ("offered_load", Json::from(LOADS[l])),
            ],
            measurement_json(m),
        ));
    }

    let mut header: Vec<String> = vec!["Buffer".into(), "arrivals".into()];
    for load in LOADS {
        header.push(format!("lat@{load:.2}"));
        header.push(format!("p99@{load:.2}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut p99_at_28 = std::collections::HashMap::new();
    let mut m_iter = measurements.iter();
    for kind in BufferKind::ALL {
        for (label, _) in arrivals {
            let mut row = vec![kind.name().to_owned(), label.to_owned()];
            for load in LOADS {
                let m = m_iter.next().expect("one measurement per cell");
                row.push(format!("{:.1}", m.latency_clocks));
                row.push(format!("{:.0}", m.latency_p99_clocks));
                if load == 0.28 {
                    p99_at_28.insert((kind, label), m.latency_p99_clocks);
                }
            }
            rows.push(row);
        }
    }
    print!("{}", render_table(&header_refs, &rows));
    println!();
    println!("at 0.28 mean load (93% of what 30%-duty sources can sustain), bursts push");
    println!(
        "FIFO's p99 from {:.0} to {:.0} clocks; DAMQ's from {:.0} to {:.0} -- the shared",
        p99_at_28[&(BufferKind::Fifo, "smooth")],
        p99_at_28[&(BufferKind::Fifo, "bursty")],
        p99_at_28[&(BufferKind::Damq, "smooth")],
        p99_at_28[&(BufferKind::Damq, "bursty")],
    );
    println!("pool absorbs a burst aimed at one output without freezing the rest, so");
    println!("DAMQ's tail grows least. (saturation throughput itself is a mean-rate");
    println!("property and barely moves; the tail is where burstiness bites.)");
    report.write_and_announce();
}
