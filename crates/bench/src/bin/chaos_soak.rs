//! Chaos soak: long randomized fault storms against every buffer design
//! with the self-healing data path switched on.
//!
//! Each cell soaks one buffer design under one flow-control protocol for
//! many epochs; every epoch draws a fresh storm (dead slots, link flaps,
//! payload corruption, and misroutes) and ends with a full invariant
//! re-audit (conservation, fault-ledger accounting, quiescence). Cells
//! run through the recorded isolation harness
//! ([`sweep::run_isolated_recorded`]): each attempt records telemetry
//! into a flight-recorder ring, and an invariant violation minimizes
//! itself to a reproducer (seed + cycle window + fault plan), panics
//! with the reproducer JSON as the message, and so lands in the crash
//! dump sidecar under `results/chaos_dumps/` alongside the trailing
//! event tail.
//!
//! Flags: `--smoke` shrinks the grid and epochs for the CI gate;
//! `--resume` reloads `results/json/<name>.cells.jsonl`.

use damq_bench::chaos::{self, SoakPlan};
use damq_bench::json::{robustness_json, Json, Report};
use damq_bench::render_table;
use damq_bench::resume::Checkpoint;
use damq_bench::sweep::{self, IsolationOptions};
use damq_core::{BufferKind, FaultSpec};
use damq_net::{NetworkConfig, RecoveryConfig};
use damq_switch::FlowControl;

const TERMINALS: usize = 16;
const RADIX: usize = 4;
const STAGES: usize = 2;
const PER_STAGE: usize = 4;
const SLOTS: usize = 4;
const RING_CAPACITY: usize = 256;

#[derive(Debug, Clone, Copy)]
struct Cell {
    kind: BufferKind,
    flow: FlowControl,
    coords: [u64; 2],
}

fn cell_key(cell: &Cell) -> String {
    format!("{}|{:?}", cell.kind.name(), cell.flow)
}

struct Grid {
    name: &'static str,
    kinds: Vec<BufferKind>,
    flows: Vec<FlowControl>,
    epochs: u64,
    epoch_cycles: u64,
}

fn grid(smoke: bool) -> Grid {
    if smoke {
        Grid {
            name: "chaos_soak_smoke",
            kinds: vec![BufferKind::Samq, BufferKind::Damq],
            flows: vec![FlowControl::Discarding],
            epochs: 3,
            epoch_cycles: 150,
        }
    } else {
        Grid {
            name: "chaos_soak",
            kinds: BufferKind::EXTENDED.to_vec(),
            flows: FlowControl::ALL.to_vec(),
            epochs: 20,
            epoch_cycles: 500,
        }
    }
}

fn soak_for(cell: &Cell, grid: &Grid) -> SoakPlan {
    SoakPlan {
        // The storm seed depends only on the grid coordinates: the
        // faults are the experiment, so a retry replays the same storms
        // against a fresh traffic stream.
        seed: sweep::cell_seed(sweep::BASE_SEED ^ 0xC4A05, &cell.coords),
        epochs: grid.epochs,
        epoch_cycles: grid.epoch_cycles,
        storm: FaultSpec {
            dead_slot_fraction: 0.02,
            link_flaps: 3,
            flap_duration: grid.epoch_cycles / 5,
            corrupt_packets: 2,
            misroutes: 1,
            ..FaultSpec::fault_free(
                STAGES,
                PER_STAGE,
                RADIX,
                TERMINALS,
                SLOTS,
                grid.epoch_cycles,
            )
        },
    }
}

fn config_for(cell: &Cell, attempt: u32) -> NetworkConfig {
    let seed = sweep::cell_seed(sweep::BASE_SEED + u64::from(attempt), &cell.coords);
    NetworkConfig::new(TERMINALS, RADIX)
        .buffer_kind(cell.kind)
        .slots_per_buffer(SLOTS)
        .flow_control(cell.flow)
        .recovery(RecoveryConfig::enabled())
        .offered_load(0.5)
        .seed(seed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let resume = args.iter().any(|a| a == "--resume");
    if let Some(bad) = args.iter().find(|a| *a != "--smoke" && *a != "--resume") {
        eprintln!("unknown flag {bad}; accepted: --smoke --resume"); // lint: allow — harness status channel
        std::process::exit(2);
    }
    let grid = grid(smoke);

    let mut cells = Vec::new();
    for (k, &kind) in grid.kinds.iter().enumerate() {
        for (f, &flow) in grid.flows.iter().enumerate() {
            cells.push(Cell {
                kind,
                flow,
                coords: [k as u64, f as u64],
            });
        }
    }

    let mut report = Report::new(grid.name);
    report.meta("terminals", Json::from(TERMINALS));
    report.meta("radix", Json::from(RADIX));
    report.meta("slots_per_buffer", Json::from(SLOTS));
    report.meta("recovery", Json::from("enabled"));
    report.meta("epochs", Json::from(grid.epochs));
    report.meta("epoch_cycles", Json::from(grid.epoch_cycles));

    let checkpoint = if resume {
        Checkpoint::load(grid.name)
    } else {
        Checkpoint::fresh(grid.name)
    }
    .expect("checkpoint sidecar must be readable/writable");
    let resumed = cells
        .iter()
        .filter(|c| checkpoint.contains(&cell_key(c)))
        .count();

    let pending: Vec<Cell> = cells
        .iter()
        .filter(|c| !checkpoint.contains(&cell_key(c)))
        .copied()
        .collect();
    let opts = IsolationOptions {
        cycle_budget: grid.epochs * grid.epoch_cycles * 20,
        max_retries: 1,
    };
    let results_dir = std::env::var("DAMQ_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    let dump_dir = std::path::Path::new(&results_dir).join("chaos_dumps");
    let dump_dir = dump_dir.as_path();
    // Built-in audits are the soaked invariants; the extra hook stays
    // inert here (the seeded-mutation test exercises it).
    let check = |_probe: &chaos::EpochProbe| -> Result<(), String> { Ok(()) };
    let recorded = sweep::run_isolated_recorded(
        &pending,
        opts,
        RING_CAPACITY,
        dump_dir,
        |cell, watchdog, attempt, recorder| {
            let soak = soak_for(cell, &grid);
            let config = config_for(cell, attempt);
            let outcome = chaos::run_soak(config, &soak, recorder, &check, || watchdog.tick())
                .expect("grid cell configuration is valid");
            if let Some(violation) = &outcome.violation {
                // Minimize first, then panic with the reproducer as the
                // message: the recorded harness writes it (plus the
                // telemetry ring's tail) into the crash-dump sidecar.
                let rep = chaos::minimize(config, &soak, violation, &check);
                panic!(
                    "chaos invariant violated at epoch {} cycle {}: {} — reproducer {}",
                    violation.epoch,
                    violation.cycle,
                    violation.message,
                    rep.to_json().render()
                );
            }
            let json = Json::cell(
                [
                    ("buffer", Json::from(cell.kind.name())),
                    ("flow", Json::from(format!("{:?}", cell.flow))),
                ],
                Json::obj([
                    ("epochs_run", Json::from(outcome.epochs_run)),
                    ("cycles_run", Json::from(outcome.cycles_run)),
                    ("delivered", Json::from(outcome.delivered)),
                    ("discarded", Json::from(outcome.discarded)),
                    ("fault_drops", Json::from(outcome.ledger.dropped())),
                    ("slots_killed", Json::from(outcome.ledger.slots_killed)),
                ]),
            );
            checkpoint
                .record(&cell_key(cell), &json)
                .expect("checkpoint append must succeed");
            json
        },
    );
    let dumps: usize = recorded.iter().map(|r| r.dumps.len()).sum();
    let outcomes: Vec<sweep::CellOutcome> =
        recorded.into_iter().map(|r| r.report.outcome).collect();

    for cell in &cells {
        let key = cell_key(cell);
        report.push_cell(checkpoint.get(&key).unwrap_or_else(|| {
            Json::cell(
                [
                    ("buffer", Json::from(cell.kind.name())),
                    ("flow", Json::from(format!("{:?}", cell.flow))),
                ],
                Json::obj([("failed", Json::from(true))]),
            )
        }));
    }
    let robustness = match robustness_json(&outcomes) {
        Json::Obj(mut pairs) => {
            pairs.push(("resumed".to_owned(), Json::from(resumed)));
            pairs.push(("flight_dumps".to_owned(), Json::from(dumps)));
            Json::Obj(pairs)
        }
        other => other,
    };
    report.set_robustness(robustness);

    let mut rows = Vec::new();
    for cell in &cells {
        let entry = checkpoint.get(&cell_key(cell));
        let field = |name: &str| -> String {
            entry
                .as_ref()
                .and_then(|e| e.get(name))
                .and_then(Json::as_f64)
                .map_or_else(|| "failed".to_owned(), |v| format!("{v:.0}"))
        };
        rows.push(vec![
            cell.kind.name().to_owned(),
            format!("{:?}", cell.flow),
            field("epochs_run"),
            field("delivered"),
            field("discarded"),
            field("fault_drops"),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "buffer",
                "flow",
                "epochs",
                "delivered",
                "discarded",
                "fault_drops"
            ],
            &rows,
        )
    );

    report.write_and_announce();

    let clean = cells.iter().all(|c| checkpoint.contains(&cell_key(c)));
    if !clean {
        eprintln!(
            "chaos soak found violations; see {} for reproducers",
            dump_dir.display()
        );
        std::process::exit(1);
    }
}
