//! **Extension**: the paper's RP3 recommendation, quantified.
//!
//! Table 6 shows a 5% hot spot tree-saturating every buffer design at
//! ~0.24, and the paper concludes: "These results reinforce the decision
//! of the designers of the RP3 multiprocessor to use two separate
//! networks ... In a system such as this, the hot spot traffic would not
//! interfere with the uniform memory accesses, so significant performance
//! gains would be made by using the DAMQ buffer instead of the FIFO in the
//! general traffic network."
//!
//! This harness measures that claim: per-source sustainable load with one
//! combined network (hot + uniform together) versus a dual-network system
//! where the 5% hot traffic is diverted to a dedicated combining network
//! (modelled as simply *absent* from the general network, as in RP3 —
//! the combining network itself is out of scope here and in the paper).

use damq_bench::render_table;
use damq_core::BufferKind;
use damq_net::{find_saturation, NetworkConfig, SaturationOptions, TrafficPattern};
use damq_switch::FlowControl;

fn main() {
    println!("Single network with a hot spot vs RP3-style dual networks");
    println!("(64x64 Omega, blocking, smart arbitration, 4 slots per buffer)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);

    let header = [
        "Buffer",
        "combined sat",
        "dual: general sat",
        "dual total/src",
        "gain",
    ];
    let mut rows = Vec::new();
    for kind in BufferKind::ALL {
        // One network carrying everything, 5% of it hot.
        let combined = find_saturation(
            base.buffer_kind(kind).traffic(TrafficPattern::paper_hot_spot()),
            SaturationOptions::default(),
        )
        .expect("search runs")
        .throughput;
        // Dual networks: the general network sees only the 95% uniform
        // share, so a per-source total load L puts 0.95*L on it. It
        // saturates when 0.95*L = sat_uniform.
        let general = find_saturation(
            base.buffer_kind(kind).traffic(TrafficPattern::Uniform),
            SaturationOptions::default(),
        )
        .expect("search runs")
        .throughput;
        let dual_total = general / 0.95;
        rows.push(vec![
            kind.name().to_owned(),
            format!("{combined:.2}"),
            format!("{general:.2}"),
            format!("{dual_total:.2}"),
            format!("{:.1}x", dual_total / combined),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("with one network, the hot spot caps every design at ~0.24 and the buffer");
    println!("choice is irrelevant. divert the hot 5% to a combining network and the");
    println!("general network is uniform again -- where DAMQ's saturation advantage");
    println!("over FIFO returns in full, exactly the paper's closing argument.");
}
