//! **Extension**: the paper's RP3 recommendation, quantified.
//!
//! Table 6 shows a 5% hot spot tree-saturating every buffer design at
//! ~0.24, and the paper concludes: "These results reinforce the decision
//! of the designers of the RP3 multiprocessor to use two separate
//! networks ... In a system such as this, the hot spot traffic would not
//! interfere with the uniform memory accesses, so significant performance
//! gains would be made by using the DAMQ buffer instead of the FIFO in the
//! general traffic network."
//!
//! This harness measures that claim: per-source sustainable load with one
//! combined network (hot + uniform together) versus a dual-network system
//! where the 5% hot traffic is diverted to a dedicated combining network
//! (modelled as simply *absent* from the general network, as in RP3 —
//! the combining network itself is out of scope here and in the paper).
//!
//! The (design, traffic) grid is swept in parallel through
//! [`damq_bench::sweep`], each cell seeded from its coordinates. The run
//! also writes `results/json/dual_network.json`.

use damq_bench::json::{saturation_json, Json, Report};
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_net::{find_saturation, NetworkConfig, SaturationOptions, TrafficPattern};
use damq_switch::FlowControl;

fn main() {
    println!("Single network with a hot spot vs RP3-style dual networks");
    println!("(64x64 Omega, blocking, smart arbitration, 4 slots per buffer)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);

    // Per design: the combined network (5% hot spot) and the dual system's
    // general network (uniform only — the hot 5% rides the combining net).
    let traffics = [
        ("combined_hot_spot", TrafficPattern::paper_hot_spot()),
        ("dual_general_uniform", TrafficPattern::Uniform),
    ];
    let cells: Vec<(usize, usize)> = (0..BufferKind::ALL.len())
        .flat_map(|k| (0..traffics.len()).map(move |t| (k, t)))
        .collect();
    let mut report = Report::new("dual_network");
    let saturations = sweep::run(&cells, |&(k, t)| {
        find_saturation(
            base.buffer_kind(BufferKind::ALL[k])
                .traffic(traffics[t].1)
                .seed(sweep::cell_seed(sweep::BASE_SEED, &[k as u64, t as u64])),
            SaturationOptions::default(),
        )
        .expect("search runs")
    });

    report.meta("network", Json::from("64x64 Omega, blocking"));
    report.meta("slots_per_buffer", Json::from(4usize));
    for (&(k, t), sat) in cells.iter().zip(&saturations) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(BufferKind::ALL[k].name())),
                ("traffic", Json::from(traffics[t].0)),
            ],
            saturation_json(sat),
        ));
    }

    let header = [
        "Buffer",
        "combined sat",
        "dual: general sat",
        "dual total/src",
        "gain",
    ];
    let mut rows = Vec::new();
    let mut sat_iter = saturations.iter();
    for kind in BufferKind::ALL {
        let combined = sat_iter.next().expect("cell").throughput;
        // Dual networks: the general network sees only the 95% uniform
        // share, so a per-source total load L puts 0.95*L on it. It
        // saturates when 0.95*L = sat_uniform.
        let general = sat_iter.next().expect("cell").throughput;
        let dual_total = general / 0.95;
        rows.push(vec![
            kind.name().to_owned(),
            format!("{combined:.2}"),
            format!("{general:.2}"),
            format!("{dual_total:.2}"),
            format!("{:.1}x", dual_total / combined),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("with one network, the hot spot caps every design at ~0.24 and the buffer");
    println!("choice is irrelevant. divert the hot 5% to a combining network and the");
    println!("general network is uniform again -- where DAMQ's saturation advantage");
    println!("over FIFO returns in full, exactly the paper's closing argument.");
    report.write_and_announce();
}
