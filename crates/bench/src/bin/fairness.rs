//! **Extension**: what do stale counts actually buy? Fairness.
//!
//! The paper motivates *smart* arbitration as fairness machinery ("to
//! maintain fairness within the buffers") but only reports mean
//! performance, where dumb and smart are indistinguishable (Table 3).
//! Fairness lives in the *distribution*: this harness measures, per
//! source, the mean delivery latency, and reports the spread (max − min
//! of per-source means) and the p99 tail — where round-robin bookkeeping
//! should show up.
//!
//! The (design, policy) grid is swept in parallel through
//! [`damq_bench::sweep`], each cell seeded from its coordinates. The run
//! also writes `results/json/fairness.json`.

use damq_bench::json::{Json, Report};
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_net::{NetworkConfig, NetworkSim};
use damq_switch::{ArbiterPolicy, FlowControl};

const WARM_UP: u64 = 1_000;
const WINDOW: u64 = 15_000;

/// The fairness metrics of one (design, policy) cell.
struct FairnessPoint {
    mean_latency: f64,
    p99_latency: f64,
    source_spread: f64,
}

fn main() {
    println!("Fairness under load: dumb vs smart arbitration");
    println!("(64x64 Omega, blocking, uniform traffic, 4 slots per buffer, load 0.45)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .offered_load(0.45);

    let cells: Vec<(usize, usize)> = (0..BufferKind::ALL.len())
        .flat_map(|k| (0..ArbiterPolicy::ALL.len()).map(move |p| (k, p)))
        .collect();
    let mut report = Report::new("fairness");
    let points = sweep::run(&cells, |&(k, p)| {
        let mut sim = NetworkSim::new(
            base.buffer_kind(BufferKind::ALL[k])
                .arbiter_policy(ArbiterPolicy::ALL[p])
                .seed(sweep::cell_seed(sweep::BASE_SEED, &[k as u64, p as u64])),
        )
        .expect("valid config");
        sim.warm_up(WARM_UP);
        sim.run(WINDOW);
        let m = sim.metrics();
        FairnessPoint {
            mean_latency: m.mean_latency_clocks(),
            p99_latency: m.latency_percentile_clocks(0.99),
            source_spread: m.source_latency_spread_clocks(),
        }
    });

    report.meta("network", Json::from("64x64 Omega, blocking, uniform"));
    report.meta("slots_per_buffer", Json::from(4usize));
    report.meta("offered_load", Json::from(0.45));
    report.meta("warm_up_cycles", Json::from(WARM_UP));
    report.meta("window_cycles", Json::from(WINDOW));
    for (&(k, p), point) in cells.iter().zip(&points) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(BufferKind::ALL[k].name())),
                ("arbiter", Json::from(ArbiterPolicy::ALL[p].name())),
            ],
            Json::obj([
                ("mean_latency_clocks", Json::from(point.mean_latency)),
                ("latency_p99_clocks", Json::from(point.p99_latency)),
                (
                    "source_latency_spread_clocks",
                    Json::from(point.source_spread),
                ),
            ]),
        ));
    }

    let header = ["Buffer", "policy", "mean lat", "p99 lat", "src spread"];
    let mut rows = Vec::new();
    for (&(k, p), point) in cells.iter().zip(&points) {
        rows.push(vec![
            BufferKind::ALL[k].name().to_owned(),
            ArbiterPolicy::ALL[p].name().to_owned(),
            format!("{:.1}", point.mean_latency),
            format!("{:.0}", point.p99_latency),
            format!("{:.1}", point.source_spread),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("'src spread' = difference between the luckiest and unluckiest source's");
    println!("mean latency (clock cycles). Means barely move between policies (the");
    println!("paper's finding); the spread and tail are where arbitration fairness");
    println!("matters, and where the stale counts earn their silicon.");
    report.write_and_announce();
}
