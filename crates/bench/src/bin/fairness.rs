//! **Extension**: what do stale counts actually buy? Fairness.
//!
//! The paper motivates *smart* arbitration as fairness machinery ("to
//! maintain fairness within the buffers") but only reports mean
//! performance, where dumb and smart are indistinguishable (Table 3).
//! Fairness lives in the *distribution*: this harness measures, per
//! source, the mean delivery latency, and reports the spread (max − min
//! of per-source means) and the p99 tail — where round-robin bookkeeping
//! should show up.

use damq_bench::render_table;
use damq_core::BufferKind;
use damq_net::{NetworkConfig, NetworkSim};
use damq_switch::{ArbiterPolicy, FlowControl};

const WARM_UP: u64 = 1_000;
const WINDOW: u64 = 15_000;

fn main() {
    println!("Fairness under load: dumb vs smart arbitration");
    println!("(64x64 Omega, blocking, uniform traffic, 4 slots per buffer, load 0.45)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .offered_load(0.45);

    let header = [
        "Buffer",
        "policy",
        "mean lat",
        "p99 lat",
        "src spread",
    ];
    let mut rows = Vec::new();
    for kind in BufferKind::ALL {
        for policy in ArbiterPolicy::ALL {
            let mut sim = NetworkSim::new(base.buffer_kind(kind).arbiter_policy(policy))
                .expect("valid config");
            sim.warm_up(WARM_UP);
            sim.run(WINDOW);
            let m = sim.metrics();
            rows.push(vec![
                kind.name().to_owned(),
                policy.name().to_owned(),
                format!("{:.1}", m.mean_latency_clocks()),
                format!("{:.0}", m.latency_percentile_clocks(0.99)),
                format!("{:.1}", m.source_latency_spread_clocks()),
            ]);
        }
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("'src spread' = difference between the luckiest and unluckiest source's");
    println!("mean latency (clock cycles). Means barely move between policies (the");
    println!("paper's finding); the spread and tail are where arbitration fairness");
    println!("matters, and where the stale counts earn their silicon.");
}
