//! Fault-degradation sweep: how gracefully does each buffer design shed
//! throughput as slots die?
//!
//! The grid is buffer kind × dead-slot fraction × offered load on the
//! standard 16-terminal radix-4 Omega network under discarding flow
//! control. Each cell installs a seeded [`FaultPlan`] that kills the given
//! fraction of every buffer's slots early in the run, then measures
//! steady-state throughput. The paper's central claim extends naturally:
//! DAMQ's shared pool degrades *smoothly* (a dead slot is one slot
//! anywhere), while static partitions lose a whole queue's worth of
//! headroom when their slots die.
//!
//! Cells run through the self-healing harness ([`sweep::run_isolated`]):
//! panic-isolated, cycle-budget watchdogged, retried with a fresh seed on
//! panic, and checkpointed per cell so `--resume` re-runs only what is
//! missing. Outcomes land in the report's `robustness` section.
//!
//! Flags: `--smoke` shrinks the grid and windows for the CI gate;
//! `--resume` reloads `results/json/<name>.cells.jsonl`.

use damq_bench::json::{measurement_json, robustness_json, Json, Report};
use damq_bench::render_table;
use damq_bench::resume::Checkpoint;
use damq_bench::sweep::{self, CellOutcome, IsolationOptions};
use damq_core::{BufferKind, FaultPlan, FaultSpec};
use damq_net::{measure_with_faults, NetworkConfig};
use damq_switch::FlowControl;

const TERMINALS: usize = 16;
const RADIX: usize = 4;
const STAGES: usize = 2;
const PER_STAGE: usize = 4;
const SLOTS: usize = 4;

#[derive(Debug, Clone, Copy)]
struct Cell {
    kind: BufferKind,
    dead_fraction: f64,
    load: f64,
    coords: [u64; 3],
}

fn cell_key(cell: &Cell) -> String {
    format!(
        "{}|dead{:.2}|load{:.2}",
        cell.kind.name(),
        cell.dead_fraction,
        cell.load
    )
}

struct Grid {
    name: &'static str,
    kinds: Vec<BufferKind>,
    fractions: Vec<f64>,
    loads: Vec<f64>,
    warm_up: u64,
    window: u64,
}

fn grid(smoke: bool) -> Grid {
    if smoke {
        Grid {
            name: "fault_degradation_smoke",
            kinds: vec![BufferKind::Samq, BufferKind::Damq],
            fractions: vec![0.0, 0.25],
            loads: vec![0.6],
            warm_up: 50,
            window: 200,
        }
    } else {
        Grid {
            name: "fault_degradation",
            kinds: BufferKind::EXTENDED.to_vec(),
            fractions: vec![0.0, 0.10, 0.25],
            loads: vec![0.3, 0.6, 0.9],
            warm_up: 300,
            window: 1000,
        }
    }
}

fn plan_for(cell: &Cell, horizon: u64) -> FaultPlan {
    if cell.dead_fraction == 0.0 {
        return FaultPlan::new();
    }
    let spec = FaultSpec {
        dead_slot_fraction: cell.dead_fraction,
        ..FaultSpec::fault_free(STAGES, PER_STAGE, RADIX, TERMINALS, SLOTS, horizon)
    };
    // The plan seed depends only on the grid coordinates, not the attempt:
    // the *faults* are the experiment, so a retry replays the same damage
    // against a fresh traffic stream.
    FaultPlan::generate(
        sweep::cell_seed(sweep::BASE_SEED ^ 0xFA17, &cell.coords),
        &spec,
    )
}

fn run_cell(cell: &Cell, grid: &Grid, watchdog: &sweep::Watchdog, attempt: u32) -> Json {
    // Fold the attempt index into the traffic seed so a retry after a
    // panic explores a different stream (the reseed of retry-with-reseed).
    let seed = sweep::cell_seed(sweep::BASE_SEED + u64::from(attempt), &cell.coords);
    let config = NetworkConfig::new(TERMINALS, RADIX)
        .buffer_kind(cell.kind)
        .slots_per_buffer(SLOTS)
        .flow_control(FlowControl::Discarding)
        .offered_load(cell.load)
        .seed(seed);
    let plan = plan_for(cell, grid.warm_up / 2);
    let (m, ledger) = measure_with_faults(config, plan, grid.warm_up, grid.window, || {
        watchdog.tick();
    })
    .expect("grid cell configuration is valid");
    Json::cell(
        [
            ("buffer", Json::from(cell.kind.name())),
            ("dead_fraction", Json::from(cell.dead_fraction)),
            ("load", Json::from(cell.load)),
        ],
        Json::obj([
            ("slots_killed", Json::from(ledger.slots_killed)),
            ("fault_drops", Json::from(ledger.dropped())),
            ("measurement", measurement_json(&m)),
        ]),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let resume = args.iter().any(|a| a == "--resume");
    if let Some(bad) = args.iter().find(|a| *a != "--smoke" && *a != "--resume") {
        eprintln!("unknown flag {bad}; accepted: --smoke --resume"); // lint: allow — harness status channel
        std::process::exit(2);
    }
    let grid = grid(smoke);

    let mut cells = Vec::new();
    for (k, &kind) in grid.kinds.iter().enumerate() {
        for (f, &dead_fraction) in grid.fractions.iter().enumerate() {
            for (l, &load) in grid.loads.iter().enumerate() {
                cells.push(Cell {
                    kind,
                    dead_fraction,
                    load,
                    coords: [k as u64, f as u64, l as u64],
                });
            }
        }
    }

    let mut report = Report::new(grid.name);
    report.meta("terminals", Json::from(TERMINALS));
    report.meta("radix", Json::from(RADIX));
    report.meta("slots_per_buffer", Json::from(SLOTS));
    report.meta("flow_control", Json::from("discarding"));
    report.meta("warm_up", Json::from(grid.warm_up));
    report.meta("window", Json::from(grid.window));

    let checkpoint = if resume {
        Checkpoint::load(grid.name)
    } else {
        Checkpoint::fresh(grid.name)
    }
    .expect("checkpoint sidecar must be readable/writable");
    let resumed = cells
        .iter()
        .filter(|c| checkpoint.contains(&cell_key(c)))
        .count();

    let pending: Vec<Cell> = cells
        .iter()
        .filter(|c| !checkpoint.contains(&cell_key(c)))
        .copied()
        .collect();
    let opts = IsolationOptions {
        // Generous: ~20x the cell's simulated cycles. A cell that ticks
        // past this is wedged, not slow.
        cycle_budget: (grid.warm_up + grid.window) * 20,
        max_retries: 2,
    };
    let outcomes: Vec<CellOutcome> =
        sweep::run_isolated(&pending, opts, |cell, watchdog, attempt| {
            let json = run_cell(cell, &grid, watchdog, attempt);
            // Checkpoint the cell the moment it completes: a crash later in
            // the sweep loses nothing that already finished.
            checkpoint
                .record(&cell_key(cell), &json)
                .expect("checkpoint append must succeed");
            json
        })
        .into_iter()
        .map(|r| r.outcome)
        .collect();

    // Assemble in grid order from the checkpoint; a cell whose every
    // attempt failed gets a coordinate-only placeholder so the report
    // still accounts for it.
    for cell in &cells {
        let key = cell_key(cell);
        report.push_cell(checkpoint.get(&key).unwrap_or_else(|| {
            Json::cell(
                [
                    ("buffer", Json::from(cell.kind.name())),
                    ("dead_fraction", Json::from(cell.dead_fraction)),
                    ("load", Json::from(cell.load)),
                ],
                Json::obj([("failed", Json::from(true))]),
            )
        }));
    }
    let robustness = match robustness_json(&outcomes) {
        Json::Obj(mut pairs) => {
            pairs.push(("resumed".to_owned(), Json::from(resumed)));
            Json::Obj(pairs)
        }
        other => other,
    };
    report.set_robustness(robustness);

    // Text table on stdout, mirroring the other harnesses.
    let mut rows = Vec::new();
    for cell in &cells {
        let entry = checkpoint.get(&cell_key(cell));
        let field = |name: &str| -> String {
            entry
                .as_ref()
                .and_then(|e| e.get("measurement"))
                .and_then(|m| m.get(name))
                .and_then(Json::as_f64)
                .map_or_else(|| "failed".to_owned(), |v| format!("{v:.3}"))
        };
        let killed = entry
            .as_ref()
            .and_then(|e| e.get("slots_killed"))
            .and_then(Json::as_f64)
            .map_or_else(|| "-".to_owned(), |v| format!("{v:.0}"));
        rows.push(vec![
            cell.kind.name().to_owned(),
            format!("{:.2}", cell.dead_fraction),
            format!("{:.2}", cell.load),
            killed,
            field("delivered"),
            field("discard_fraction"),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["buffer", "dead", "load", "killed", "delivered", "discard"],
            &rows,
        )
    );

    report.write_and_announce();
}
