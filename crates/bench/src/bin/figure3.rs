//! Regenerates **Figure 3** of the paper: latency versus throughput for
//! FIFO and DAMQ buffers with four slots under uniform traffic.
//!
//! Prints the two curves as aligned series plus an ASCII plot: flat and
//! nearly identical at low loads, with FIFO turning vertical around 0.5 and
//! DAMQ around 0.7.
//!
//! The (design, load) grid is swept in parallel through
//! [`damq_bench::sweep`], each cell seeded from its coordinates. The run
//! also writes `results/json/figure3.json`, whose `telemetry` section
//! profiles the sweep (per-cell wall time, phases, parallel speed-up).

use damq_bench::json::{measurement_json, Json, Report};
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_net::{measure, NetworkConfig};
use damq_switch::FlowControl;
use damq_telemetry::Profiler;

const WARM_UP: u64 = 1_000;
const WINDOW: u64 = 8_000;

fn main() {
    println!("Figure 3: FIFO and DAMQ buffers with four slots, uniform traffic");
    println!("(64x64 Omega, blocking, smart arbitration; latency in clock cycles)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);

    let kinds = [BufferKind::Fifo, BufferKind::Damq];
    let loads: Vec<f64> = (1..=14).map(|i| i as f64 * 0.05).collect();

    let cells: Vec<(usize, usize)> = (0..kinds.len())
        .flat_map(|k| (0..loads.len()).map(move |l| (k, l)))
        .collect();
    let mut report = Report::new("figure3");
    let mut profiler = Profiler::new();
    let sweep_phase = profiler.phase("sweep");
    let (measurements, profile) = sweep::run_profiled(&cells, |&(k, l)| {
        measure(
            base.buffer_kind(kinds[k])
                .offered_load(loads[l])
                .seed(sweep::cell_seed(sweep::BASE_SEED, &[k as u64, l as u64])),
            WARM_UP,
            WINDOW,
        )
        .expect("simulation must run")
    });
    let profile = profile.with_cycles(vec![WARM_UP + WINDOW; cells.len()]);
    drop(sweep_phase);
    let render_phase = profiler.phase("render");

    report.meta("network", Json::from("64x64 Omega, blocking, uniform"));
    report.meta("slots_per_buffer", Json::from(4usize));
    report.meta("warm_up_cycles", Json::from(WARM_UP));
    report.meta("window_cycles", Json::from(WINDOW));
    for (&(k, l), m) in cells.iter().zip(&measurements) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kinds[k].name())),
                ("offered_load", Json::from(loads[l])),
            ],
            measurement_json(m),
        ));
    }

    let mut curves: Vec<(BufferKind, Vec<(f64, f64)>)> = Vec::new();
    let mut m_iter = measurements.iter();
    for &kind in &kinds {
        let curve = loads
            .iter()
            .map(|_| {
                let m = m_iter.next().expect("one measurement per cell");
                (m.delivered, m.network_latency_clocks)
            })
            .collect();
        curves.push((kind, curve));
    }

    let mut rows = Vec::new();
    for (i, &load) in loads.iter().enumerate() {
        rows.push(vec![
            format!("{load:.2}"),
            format!("{:.3}", curves[0].1[i].0),
            format!("{:.1}", curves[0].1[i].1),
            format!("{:.3}", curves[1].1[i].0),
            format!("{:.1}", curves[1].1[i].1),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["offered", "FIFO thr", "FIFO lat", "DAMQ thr", "DAMQ lat"],
            &rows,
        )
    );

    println!();
    println!("{}", ascii_plot(&curves, 60, 20));
    drop(render_phase);
    report.telemetry_from_profile(&profile, &profiler);
    report.write_and_announce();
}

/// Renders latency-vs-throughput curves as a crude ASCII scatter plot.
fn ascii_plot(curves: &[(BufferKind, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    let max_lat = curves
        .iter()
        .flat_map(|(_, c)| c.iter().map(|&(_, l)| l))
        .fold(0.0_f64, f64::max)
        .max(1.0);
    let max_thr = 0.8;
    let mut grid = vec![vec![' '; width + 1]; height + 1];
    for (ki, (_, curve)) in curves.iter().enumerate() {
        let mark = if ki == 0 { 'F' } else { 'D' };
        for &(thr, lat) in curve {
            let x = ((thr / max_thr) * width as f64).round() as usize;
            let y = ((lat / max_lat) * height as f64).round() as usize;
            if x <= width && y <= height {
                grid[height - y][x] = mark;
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "latency (max {max_lat:.0} clk) vs delivered throughput (0..{max_thr}); F=FIFO D=DAMQ\n"
    ));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width + 1));
    out.push('\n');
    out
}
