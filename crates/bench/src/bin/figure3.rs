//! Regenerates **Figure 3** of the paper: latency versus throughput for
//! FIFO and DAMQ buffers with four slots under uniform traffic.
//!
//! Prints the two curves as aligned series plus an ASCII plot: flat and
//! nearly identical at low loads, with FIFO turning vertical around 0.5 and
//! DAMQ around 0.7.

use damq_bench::render_table;
use damq_core::BufferKind;
use damq_net::{measure, NetworkConfig};
use damq_switch::FlowControl;

const WARM_UP: u64 = 1_000;
const WINDOW: u64 = 8_000;

fn main() {
    println!("Figure 3: FIFO and DAMQ buffers with four slots, uniform traffic");
    println!("(64x64 Omega, blocking, smart arbitration; latency in clock cycles)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);

    let loads: Vec<f64> = (1..=14).map(|i| i as f64 * 0.05).collect();
    let mut rows = Vec::new();
    let mut curves: Vec<(BufferKind, Vec<(f64, f64)>)> = Vec::new();
    for kind in [BufferKind::Fifo, BufferKind::Damq] {
        let mut curve = Vec::new();
        for &load in &loads {
            let m = measure(base.buffer_kind(kind).offered_load(load), WARM_UP, WINDOW)
                .expect("simulation must run");
            curve.push((m.delivered, m.network_latency_clocks));
        }
        curves.push((kind, curve));
    }
    for (i, &load) in loads.iter().enumerate() {
        rows.push(vec![
            format!("{load:.2}"),
            format!("{:.3}", curves[0].1[i].0),
            format!("{:.1}", curves[0].1[i].1),
            format!("{:.3}", curves[1].1[i].0),
            format!("{:.1}", curves[1].1[i].1),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["offered", "FIFO thr", "FIFO lat", "DAMQ thr", "DAMQ lat"],
            &rows,
        )
    );

    println!();
    println!("{}", ascii_plot(&curves, 60, 20));
}

/// Renders latency-vs-throughput curves as a crude ASCII scatter plot.
fn ascii_plot(curves: &[(BufferKind, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    let max_lat = curves
        .iter()
        .flat_map(|(_, c)| c.iter().map(|&(_, l)| l))
        .fold(0.0_f64, f64::max)
        .max(1.0);
    let max_thr = 0.8;
    let mut grid = vec![vec![' '; width + 1]; height + 1];
    for (ki, (_, curve)) in curves.iter().enumerate() {
        let mark = if ki == 0 { 'F' } else { 'D' };
        for &(thr, lat) in curve {
            let x = ((thr / max_thr) * width as f64).round() as usize;
            let y = ((lat / max_lat) * height as f64).round() as usize;
            if x <= width && y <= height {
                grid[height - y][x] = mark;
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "latency (max {max_lat:.0} clk) vs delivered throughput (0..{max_thr}); F=FIFO D=DAMQ\n"
    ));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width + 1));
    out.push('\n');
    out
}
