//! **Extension**: exact Markov analysis of the 4×4 switch.
//!
//! The paper writes: "For the four-by-four switches, the state space was
//! too large for Markov modeling, so the evaluation was done using
//! event-driven simulation" (§4). For the multi-queue designs the state
//! space is per-(input, output) counts, and modern machines solve it
//! directly — an analysis the authors could not run in 1988, reproducing
//! their simulated ordering analytically.
//!
//! FIFO is excluded (its state is order-dependent); the simulation remains
//! the reference for it.
//!
//! The (design, capacity, traffic) grid is swept in parallel through
//! [`damq_bench::sweep`]; the run also writes
//! `results/json/markov_4x4.json`.

use damq_bench::json::{discard_point_json, Json, Report};
use damq_bench::{fmt_prob, render_table, sweep};
use damq_core::BufferKind;
use damq_markov::{discard_probability_kxk, CycleOrder, SolveOptions};

const TRAFFICS: [f64; 5] = [0.25, 0.50, 0.75, 0.90, 0.99];

fn main() {
    println!("Markov analysis of a 4x4 discarding switch (not in the paper)");
    println!("(multi-queue designs; greedy longest-queue arbitration; arrivals-first)");
    println!();

    // Capacities are bounded by state-space size: DAMQ/DAFC at 3+ shared
    // slots or SAMQ/SAFC at 2+ slots per queue exceed a million states.
    let sizes: &[(BufferKind, &[usize])] = &[
        (BufferKind::Damq, &[1, 2]),
        (BufferKind::Dafc, &[1, 2]),
        (BufferKind::Samq, &[4]),
        (BufferKind::Safc, &[4]),
    ];

    let cells: Vec<(BufferKind, usize, f64)> = sizes
        .iter()
        .flat_map(|&(kind, capacities)| {
            capacities
                .iter()
                .flat_map(move |&cap| TRAFFICS.iter().map(move |&t| (kind, cap, t)))
        })
        .collect();
    let mut report = Report::new("markov_4x4");
    let points = sweep::run(&cells, |&(kind, cap, t)| {
        discard_probability_kxk(
            kind,
            4,
            cap,
            t,
            CycleOrder::ArrivalsFirst,
            SolveOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{kind}/{cap}/{t}: {e}"))
    });

    report.meta("switch", Json::from("4x4 discarding"));
    report.meta("order", Json::from("ArrivalsFirst"));
    for ((kind, cap, t), point) in cells.iter().zip(&points) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kind.name())),
                ("capacity_slots", Json::from(*cap)),
                ("traffic", Json::from(*t)),
            ],
            discard_point_json(point),
        ));
    }

    let mut header: Vec<String> = vec!["Switch".into(), "Space".into(), "states".into()];
    header.extend(TRAFFICS.iter().map(|t| format!("{:.0}%", t * 100.0)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut point_iter = points.iter();
    for &(kind, capacities) in sizes {
        for &cap in capacities {
            let mut row = vec![kind.name().to_owned(), cap.to_string(), String::new()];
            for _ in &TRAFFICS {
                let p = point_iter.next().expect("one point per cell");
                row[2] = p.states.to_string();
                row.push(fmt_prob(p.discard_probability));
            }
            rows.push(row);
        }
    }
    print!("{}", render_table(&header_refs, &rows));
    println!();
    println!("note: SAMQ/SAFC capacity is a total (4 slots = 1 per queue). DAMQ with");
    println!("just 2 *shared* slots discards less than SAMQ with 4 static ones up to");
    println!("~90% traffic (half the storage, better service); only at near-total");
    println!("saturation does raw capacity win -- the dynamic-allocation story, now");
    println!("in closed form at the radix the paper's network actually uses.");
    report.write_and_announce();
}
