//! **Extension**: queueing-delay analysis from the Table-2 Markov chains.
//!
//! The paper's Markov analysis reports only discard probabilities; the
//! same stationary distributions also yield mean buffer occupancy and —
//! via Little's law — the mean buffering delay of an accepted packet.
//! This quantifies head-of-line blocking as *delay*, complementing
//! Table 2's loss numbers.
//!
//! The (design, traffic) grid is swept in parallel through
//! [`damq_bench::sweep`]; the run also writes
//! `results/json/markov_queueing.json`.

use damq_bench::json::{discard_point_json, Json, Report};
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_markov::{discard_probability, CycleOrder, SolveOptions};

const CAPACITY: usize = 4;

fn main() {
    println!("Queueing delay from the Table-2 chains (2x2 discarding switch, 4 slots)");
    println!("(mean wait of an accepted packet, in long-clock cycles; Little's law)");
    println!();

    let traffics = [0.25, 0.50, 0.75, 0.90, 0.99];
    let kinds = [
        BufferKind::Fifo,
        BufferKind::Samq,
        BufferKind::Safc,
        BufferKind::Damq,
    ];

    let cells: Vec<(BufferKind, f64)> = kinds
        .iter()
        .flat_map(|&kind| traffics.iter().map(move |&t| (kind, t)))
        .collect();
    let mut report = Report::new("markov_queueing");
    let points = sweep::run(&cells, |&(kind, t)| {
        discard_probability(
            kind,
            CAPACITY,
            t,
            CycleOrder::ArrivalsFirst,
            SolveOptions::default(),
        )
        .expect("analysis runs")
    });

    report.meta("switch", Json::from("2x2 discarding"));
    report.meta("capacity_slots", Json::from(CAPACITY));
    for ((kind, t), point) in cells.iter().zip(&points) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kind.name())),
                ("traffic", Json::from(*t)),
            ],
            discard_point_json(point),
        ));
    }

    let mut header: Vec<String> = vec!["Buffer".into()];
    header.extend(traffics.iter().map(|t| format!("{:.0}%", t * 100.0)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut point_iter = points.iter();
    let mut rows = Vec::new();
    for kind in kinds {
        let mut row = vec![kind.name().to_owned()];
        for _ in traffics {
            let p = point_iter.next().expect("one point per cell");
            row.push(format!("{:.3}", p.mean_wait_cycles));
        }
        rows.push(row);
    }
    print!("{}", render_table(&header_refs, &rows));
    println!();
    println!("reading: at heavy traffic a FIFO's accepted packets wait several times");
    println!("longer than a DAMQ's -- head-of-line blocking costs latency even when");
    println!("nothing is dropped. (waits below 1 cycle reflect same-cycle cut-through.)");
    report.write_and_announce();
}
