//! **Extension**: queueing-delay analysis from the Table-2 Markov chains.
//!
//! The paper's Markov analysis reports only discard probabilities; the
//! same stationary distributions also yield mean buffer occupancy and —
//! via Little's law — the mean buffering delay of an accepted packet.
//! This quantifies head-of-line blocking as *delay*, complementing
//! Table 2's loss numbers.

use damq_bench::render_table;
use damq_core::BufferKind;
use damq_markov::{discard_probability, CycleOrder, SolveOptions};

fn main() {
    println!("Queueing delay from the Table-2 chains (2x2 discarding switch, 4 slots)");
    println!("(mean wait of an accepted packet, in long-clock cycles; Little's law)");
    println!();

    let traffics = [0.25, 0.50, 0.75, 0.90, 0.99];
    let mut header: Vec<String> = vec!["Buffer".into()];
    header.extend(traffics.iter().map(|t| format!("{:.0}%", t * 100.0)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for kind in [
        BufferKind::Fifo,
        BufferKind::Samq,
        BufferKind::Safc,
        BufferKind::Damq,
    ] {
        let mut row = vec![kind.name().to_owned()];
        for &t in &traffics {
            let p = discard_probability(
                kind,
                4,
                t,
                CycleOrder::ArrivalsFirst,
                SolveOptions::default(),
            )
            .expect("analysis runs");
            row.push(format!("{:.3}", p.mean_wait_cycles));
        }
        rows.push(row);
    }
    print!("{}", render_table(&header_refs, &rows));
    println!();
    println!("reading: at heavy traffic a FIFO's accepted packets wait several times");
    println!("longer than a DAMQ's -- head-of-line blocking costs latency even when");
    println!("nothing is dropped. (waits below 1 cycle reflect same-cycle cut-through.)");
}
