//! Renders the observability dashboard: a metrics-registry snapshot on
//! the golden 2×2 network plus a shard phase profile.
//!
//! Usage:
//!
//! ```text
//! obs_report                 # print dashboard, write results/json/obs_report.json
//! obs_report --out <path>    # write the snapshot JSON somewhere else
//! ```
//!
//! Two sections:
//!
//! 1. **Metrics registry** — the golden 2×2 telemetry configuration
//!    (the same one `scripts/check.sh` pins byte-for-byte) runs 200
//!    cycles with the registry enabled; every counter and histogram is
//!    printed, and the deterministic snapshot (counters + p50/p99/p999,
//!    integers only) is written as JSON. The committed copy under
//!    `results/json/` is the `obs-smoke` gate's golden.
//! 2. **Phase profile** — a 64-terminal hot-spot run on 4 lanes with
//!    the wall-clock phase timer on, decomposing the stepping loop into
//!    per-lane phase-A busy time, barrier wait, and serial phase-B
//!    merge. Wall-clock varies run to run, so this section is printed
//!    only and deliberately kept out of the snapshot file.

use std::path::PathBuf;
use std::process::ExitCode;

use damq_bench::json::Json;
use damq_core::BufferKind;
use damq_net::{NetworkConfig, NetworkSim, PhaseProfile, TrafficPattern};
use damq_switch::FlowControl;

/// Cycles for the deterministic registry section.
const CYCLES: u64 = 200;
/// Lanes and cycles for the (non-deterministic) phase-profile section.
const PROFILE_THREADS: usize = 4;
const PROFILE_CYCLES: u64 = 200;

/// The golden 2×2 configuration — must stay in lockstep with the
/// `telemetry golden` gate in `scripts/check.sh`.
fn golden_config() -> NetworkConfig {
    NetworkConfig::new(2, 2)
        .buffer_kind(BufferKind::Damq)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .offered_load(0.75)
        .seed(7)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    let out = match args.as_slice() {
        [] => default_out_path(),
        ["--out", p] => PathBuf::from(p),
        _ => {
            eprintln!("usage: obs_report [--out <snapshot.json>]");
            return ExitCode::FAILURE;
        }
    };

    // Section 1: the deterministic registry snapshot.
    let config = golden_config();
    let mut sim = NetworkSim::new(config)
        .expect("the golden 2x2 configuration is valid")
        .with_metrics();
    sim.run(CYCLES);

    println!("observability report: golden 2x2 DAMQ, load 0.75, seed 7, {CYCLES} cycles");
    println!();
    render_registry(&sim);

    let snapshot = Json::parse(&sim.metrics_snapshot()).expect("registry snapshot is valid JSON");
    let doc = Json::obj([
        ("bench", Json::from("obs_report")),
        (
            "network",
            Json::obj([
                ("terminals", Json::from(2u64)),
                ("radix", Json::from(2u64)),
                ("design", Json::from("DAMQ")),
                ("flow", Json::from("blocking")),
                ("load", Json::Num(0.75)),
                ("seed", Json::from(7u64)),
            ]),
        ),
        ("cycles", Json::from(CYCLES)),
        ("metrics", snapshot),
    ]);
    if let Some(dir) = out.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: could not create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&out, doc.render_pretty()) {
        eprintln!("error: could not write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!();
    println!("wrote deterministic snapshot -> {}", out.display());

    // Section 2: the wall-clock phase profile (printed only).
    let profile = run_profiled_network();
    println!();
    render_profile(&profile);
    ExitCode::SUCCESS
}

/// `results/json/obs_report.json`, honouring `DAMQ_RESULTS_DIR`.
fn default_out_path() -> PathBuf {
    let dir = std::env::var("DAMQ_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    PathBuf::from(dir).join("json").join("obs_report.json")
}

/// Prints the registry's counters and histograms as a text table.
fn render_registry<B, S>(sim: &NetworkSim<B, S>)
where
    B: damq_core::SwitchBuffer,
    S: damq_telemetry::TelemetrySink<damq_telemetry::Event>,
{
    let reg = sim.metrics_registry();
    println!("  counters");
    for name in reg.counter_names() {
        let value = reg.counter_value(name).unwrap_or(0);
        println!("    {name:<28} {value:>10}");
    }
    println!("  histograms (cycle / slot domain)");
    println!(
        "    {:<28} {:>8} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "name", "count", "p50", "p99", "p999", "max", "mean"
    );
    for name in reg.histogram_names() {
        let h = reg.histogram_named(name).expect("listed name resolves");
        println!(
            "    {name:<28} {:>8} {:>7} {:>7} {:>7} {:>7} {:>9.2}",
            h.count(),
            h.p50(),
            h.p99(),
            h.p999(),
            h.max(),
            h.mean()
        );
    }
}

/// Runs the paper-shaped hot-spot workload on several lanes with the
/// phase timer on and returns the drained profile.
fn run_profiled_network() -> PhaseProfile {
    let config = NetworkConfig::new(64, 4)
        .buffer_kind(BufferKind::Damq)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .traffic(TrafficPattern::paper_hot_spot())
        .offered_load(0.5)
        .seed(0xBEEF);
    let mut sim = NetworkSim::new(config)
        .expect("the 64x4 hot-spot configuration is valid")
        .with_threads(PROFILE_THREADS)
        .with_phase_timing();
    sim.run(PROFILE_CYCLES);
    sim.phase_profile()
}

/// Prints the phase-profile section (wall-clock: varies run to run).
fn render_profile(profile: &PhaseProfile) {
    println!(
        "phase profile: 64x4 hot-spot, {PROFILE_THREADS} lanes, {PROFILE_CYCLES} cycles \
         (wall-clock; not part of the snapshot)"
    );
    let total = profile.total_ns().max(1);
    for (lane, &busy) in profile.lane_busy_ns.iter().enumerate() {
        println!(
            "    lane {lane} phase-A busy {:>10} ns  ({:>5.1}% of accounted time)",
            busy,
            busy as f64 / total as f64 * 100.0
        );
    }
    println!(
        "    barrier wait        {:>10} ns  ({:>5.1}%)",
        profile.barrier_wait_ns,
        profile.barrier_share() * 100.0
    );
    println!(
        "    phase-B merge       {:>10} ns  ({:>5.1}%)",
        profile.merge_ns,
        profile.merge_share() * 100.0
    );
    println!("    phases timed        {:>10}", profile.phases);
}
