//! Threads × network-size scaling curves for the sharded simulation core.
//!
//! `NetworkSim::with_threads(n)` splits every pipeline stage into `n`
//! islands and runs phase A (arbitration + backpressure probes) on a
//! persistent barrier-synchronized pool, merging departures serially in
//! phase B (see `docs/ARCHITECTURE.md` and `docs/SCALING.md`). This
//! harness measures steady-state cycles/sec for each (terminals,
//! threads) cell of the paper's hot-spot DAMQ workload and records the
//! curves in the `scaling` section of `BENCH_throughput.json` at the
//! workspace root, alongside the serial perf trajectory that
//! `benches/sim_throughput.rs` maintains.
//!
//! A second pass re-runs every cell with the shard-phase timer on
//! (`NetworkSim::with_phase_timing`, see `docs/OBSERVABILITY.md`) and
//! records the idle-share breakdown — per-lane phase-A busy time,
//! barrier wait, serial phase-B merge — as the `phase_profile` section,
//! so the scaling table carries its own explanation of where the
//! non-ideal speedup goes.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p damq-bench --bin parallel_scaling            # measure + update JSON
//! cargo run --release -p damq-bench --bin parallel_scaling -- --smoke # CI smoke: 2-thread == serial
//! ```
//!
//! The recorded numbers are honest for the machine they ran on:
//! `host_cpus` is stamped next to the curves, and on a single-core host
//! the threaded cells measure phase-pool overhead, not speedup — the
//! `_note` in the JSON says exactly that, so a reader never mistakes a
//! 1-CPU curve for the multi-core scaling story.

use std::hint::black_box;

use damq_bench::json::Json;
use damq_bench::timing::{bench, Stats};
use damq_core::BufferKind;
use damq_net::{NetworkConfig, NetworkSim, PhaseProfile, TrafficPattern};
use damq_switch::FlowControl;

/// Cycles simulated before timing starts: enough for the hot-spot tree
/// to fill and backpressure to reach the sources.
const WARM_UP: u64 = 500;

/// Network sizes swept (terminals of a radix-4 Omega: 3, 4 and 5 stages).
const SIZES: [usize; 3] = [64, 256, 1024];

/// Thread counts swept; 1 is the serial baseline every cell is
/// normalized against.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Timed cycles per cell of the phase-profile pass (after `WARM_UP`).
const PROFILE_CYCLES: u64 = 200;

/// The same headline workload as `sim_throughput`: hot-spot traffic
/// against DAMQ buffers under blocking flow control, past saturation, so
/// every cycle exercises probing, routing and arbitration.
fn config(terminals: usize) -> NetworkConfig {
    NetworkConfig::new(terminals, 4)
        .buffer_kind(BufferKind::Damq)
        .slots_per_buffer(4)
        .traffic(TrafficPattern::paper_hot_spot())
        .flow_control(FlowControl::Blocking)
        .offered_load(0.5)
        .seed(0xBEEF)
}

fn bench_cell(terminals: usize, threads: usize) -> f64 {
    let mut sim = NetworkSim::new(config(terminals))
        .expect("valid config")
        .with_threads(threads);
    sim.run(WARM_UP);
    let label = format!("{terminals}t x {threads}thr");
    let stats: Stats = bench(&label, || {
        sim.step();
        black_box(sim.cycle())
    });
    1e9 / stats.min_ns
}

/// One phase-profile cell: warm the sim, then time `PROFILE_CYCLES`
/// cycles with the shard-phase timer on and drain the profile.
fn profile_cell(terminals: usize, threads: usize) -> PhaseProfile {
    let mut sim = NetworkSim::new(config(terminals))
        .expect("valid config")
        .with_threads(threads);
    sim.run(WARM_UP);
    sim = sim.with_phase_timing();
    sim.run(PROFILE_CYCLES);
    sim.phase_profile()
}

/// Renders one drained profile as its JSON cell.
fn profile_json(profile: &PhaseProfile) -> Json {
    let lanes: Vec<Json> = profile
        .lane_busy_ns
        .iter()
        .map(|&ns| Json::from(ns))
        .collect();
    Json::obj([
        ("lane_busy_ns", Json::Arr(lanes)),
        ("barrier_wait_ns", Json::from(profile.barrier_wait_ns)),
        ("merge_ns", Json::from(profile.merge_ns)),
        ("phases", Json::from(profile.phases)),
        ("barrier_share", Json::from(profile.barrier_share())),
        ("merge_share", Json::from(profile.merge_share())),
    ])
}

fn smoke() {
    // CI smoke: the sharded engine must reproduce the serial metrics on
    // the headline workload — a cheap cross-check of the full
    // byte-equivalence suite in crates/net/tests/parallel_equivalence.rs.
    let mut serial = NetworkSim::new(config(64)).expect("valid config");
    let mut sharded = NetworkSim::new(config(64))
        .expect("valid config")
        .with_threads(2);
    serial.run(100);
    sharded.run(100);
    assert_eq!(
        serial.metrics().generated(),
        sharded.metrics().generated(),
        "2-thread generation diverged from serial"
    );
    assert_eq!(
        serial.metrics().delivered(),
        sharded.metrics().delivered(),
        "2-thread delivery diverged from serial"
    );
    assert_eq!(
        serial.metrics().discarded(),
        sharded.metrics().discarded(),
        "2-thread discards diverged from serial"
    );
    assert!(serial.metrics().delivered() > 0, "degenerate smoke run");
    println!("parallel_scaling smoke: 2-thread run matches serial after 100 cycles");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    println!("parallel_scaling: hot-spot DAMQ, blocking, radix-4 Omega ({host_cpus} host CPUs)");
    println!("(cycles/sec from min ns/cycle over {WARM_UP}-cycle warmed sims)");
    println!();

    let mut curves: Vec<(String, Json)> = Vec::new();
    let mut speedups: Vec<(String, Json)> = Vec::new();
    for terminals in SIZES {
        let mut cells: Vec<(String, Json)> = Vec::new();
        let mut ratios: Vec<(String, Json)> = Vec::new();
        let mut serial_cps = 0.0f64;
        for threads in THREADS {
            let cps = bench_cell(terminals, threads);
            if threads == 1 {
                serial_cps = cps;
            }
            cells.push((
                format!("threads_{threads}"),
                Json::obj([
                    ("cycles_per_sec", Json::from(cps)),
                    ("ns_per_cycle", Json::from(1e9 / cps)),
                ]),
            ));
            if threads > 1 && serial_cps > 0.0 {
                ratios.push((format!("threads_{threads}"), Json::from(cps / serial_cps)));
            }
        }
        curves.push((format!("terminals_{terminals}"), Json::Obj(cells)));
        speedups.push((format!("terminals_{terminals}"), Json::Obj(ratios)));
        println!();
    }

    let scaling = Json::obj([
        ("bench", Json::from("parallel_scaling")),
        (
            "workload",
            Json::from("hot-spot DAMQ, blocking, radix-4 Omega, offered load 0.5"),
        ),
        ("warm_up_cycles", Json::from(WARM_UP)),
        ("host_cpus", Json::from(host_cpus)),
        (
            "_note",
            Json::from(if host_cpus > 1 {
                "cycles/sec per (terminals, threads) cell; speedup_vs_serial normalizes \
                 each curve to its threads_1 cell on this host"
            } else {
                "measured on a single-CPU host: threaded cells cannot run concurrently \
                 here, so these curves record the phased engine's overhead, not parallel \
                 speedup; determinism (serial == N-thread, byte for byte) is enforced by \
                 crates/net/tests/parallel_equivalence.rs regardless of core count — \
                 re-run this harness on a multi-core host for the real scaling story"
            }),
        ),
        ("curves", Json::Obj(curves)),
        ("speedup_vs_serial", Json::Obj(speedups)),
    ]);

    println!("phase profile ({PROFILE_CYCLES} timed cycles per cell, after warm-up)");
    let mut profile_cells: Vec<(String, Json)> = Vec::new();
    for terminals in SIZES {
        let mut per_threads: Vec<(String, Json)> = Vec::new();
        for threads in THREADS {
            let profile = profile_cell(terminals, threads);
            println!(
                "  {terminals}t x {threads}thr: busy {} ns, barrier {:.1}%, merge {:.1}%",
                profile.busy_ns(),
                profile.barrier_share() * 100.0,
                profile.merge_share() * 100.0
            );
            per_threads.push((format!("threads_{threads}"), profile_json(&profile)));
        }
        profile_cells.push((format!("terminals_{terminals}"), Json::Obj(per_threads)));
    }
    let phase_profile = Json::obj([
        ("bench", Json::from("parallel_scaling")),
        ("profile_cycles", Json::from(PROFILE_CYCLES)),
        ("host_cpus", Json::from(host_cpus)),
        (
            "_note",
            Json::from(
                "wall-clock decomposition of the phased engine per (terminals, threads) \
                 cell: per-lane phase-A busy ns, submitting thread's barrier-wait ns, \
                 serial phase-B merge ns; shares are fractions of busy+barrier+merge",
            ),
        ),
        ("cells", Json::Obj(profile_cells)),
    ]);

    write_sections(vec![("scaling", scaling), ("phase_profile", phase_profile)]);
}

/// Path of the committed throughput record, resolved from this crate's
/// manifest so the harness works from any working directory.
fn report_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json")
}

/// Replaces (or appends) this harness's sections of
/// `BENCH_throughput.json`, leaving every other section exactly as
/// `sim_throughput` wrote it.
fn write_sections(sections: Vec<(&str, Json)>) {
    let path = report_path();
    let doc = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| Json::parse(&text).ok());
    let mut pairs = match doc {
        Some(Json::Obj(pairs)) => pairs,
        _ => vec![("bench".to_owned(), Json::from("sim_throughput"))],
    };
    for (key, value) in sections {
        match pairs.iter_mut().find(|(k, _)| k == key) {
            Some((_, slot)) => *slot = value,
            None => pairs.push((key.to_owned(), value)),
        }
    }
    match std::fs::write(&path, Json::Obj(pairs).render_pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
