//! Recovery headline: delivered fraction and p99 latency under heavy
//! link failure, self-healing data path on versus off.
//!
//! The grid is buffer kind × dead-link fraction × recovery {off, on} on
//! the 64-terminal radix-4 Omega network (three stages of sixteen) under
//! discarding flow control. Each cell kills the given fraction of the
//! fabric's input links early in the run — every failed link stays down
//! for the rest of the simulation — then measures steady state. With
//! recovery *off* the network is the PR 5 drop-only baseline: packets
//! crossing a dead link are charged to the fault ledger and lost. With
//! recovery *on*, link-level retransmission parks and retries them, and
//! fault-adaptive rerouting deflects departures around dead links
//! through the DAMQ per-output queues.
//!
//! Results land in `results/json/recovery_headline.json` and the
//! `recovery` section of `BENCH_throughput.json`.
//!
//! Flags: `--smoke` shrinks the grid and windows for quick checks;
//! `--resume` reloads `results/json/<name>.cells.jsonl`.

use damq_bench::json::{measurement_json, robustness_json, Json, Report};
use damq_bench::render_table;
use damq_bench::resume::Checkpoint;
use damq_bench::sweep::{self, CellOutcome, IsolationOptions};
use damq_core::{BufferKind, FaultPlan, FaultSpec};
use damq_net::{measure_with_faults, NetworkConfig, RecoveryConfig};
use damq_switch::FlowControl;

const TERMINALS: usize = 64;
const RADIX: usize = 4;
const STAGES: usize = 3;
const PER_STAGE: usize = 16;
const SLOTS: usize = 4;
const LINKS: usize = STAGES * PER_STAGE * RADIX;

#[derive(Debug, Clone, Copy)]
struct Cell {
    kind: BufferKind,
    dead_links: f64,
    recovery: bool,
    coords: [u64; 2],
}

fn cell_key(cell: &Cell) -> String {
    format!(
        "{}|links{:.2}|{}",
        cell.kind.name(),
        cell.dead_links,
        if cell.recovery { "heal" } else { "drop" }
    )
}

struct Grid {
    name: &'static str,
    kinds: Vec<BufferKind>,
    fractions: Vec<f64>,
    warm_up: u64,
    window: u64,
}

fn grid(smoke: bool) -> Grid {
    if smoke {
        Grid {
            name: "recovery_headline_smoke",
            kinds: vec![BufferKind::Damq],
            fractions: vec![0.10],
            warm_up: 100,
            window: 400,
        }
    } else {
        Grid {
            name: "recovery_headline",
            kinds: BufferKind::EXTENDED.to_vec(),
            fractions: vec![0.10, 0.20, 0.30],
            warm_up: 200,
            window: 2000,
        }
    }
}

/// Kills `cell.dead_links` of the fabric's links permanently: each
/// failure starts inside the first half of the warm-up and lasts past
/// the end of the run, so the measurement window sees a stably-degraded
/// fabric.
fn plan_for(cell: &Cell, warm_up: u64, window: u64) -> FaultPlan {
    let spec = FaultSpec {
        link_flaps: (cell.dead_links * LINKS as f64).round() as usize,
        flap_duration: warm_up + window + 1,
        ..FaultSpec::fault_free(
            STAGES,
            PER_STAGE,
            RADIX,
            TERMINALS,
            SLOTS,
            (warm_up / 2).max(1),
        )
    };
    // The same coordinates (minus the recovery axis) produce the same
    // damage, so the on/off pair of every (kind, fraction) point faces
    // an identical set of dead links.
    FaultPlan::generate(
        sweep::cell_seed(sweep::BASE_SEED ^ 0x4EA1, &cell.coords),
        &spec,
    )
}

fn run_cell(cell: &Cell, grid: &Grid, watchdog: &sweep::Watchdog, attempt: u32) -> Json {
    let seed = sweep::cell_seed(sweep::BASE_SEED + u64::from(attempt), &cell.coords);
    let recovery = if cell.recovery {
        RecoveryConfig::enabled()
    } else {
        RecoveryConfig::disabled()
    };
    let config = NetworkConfig::new(TERMINALS, RADIX)
        .buffer_kind(cell.kind)
        .slots_per_buffer(SLOTS)
        .flow_control(FlowControl::Discarding)
        .recovery(recovery)
        .offered_load(0.6)
        .seed(seed);
    let plan = plan_for(cell, grid.warm_up, grid.window);
    let (m, ledger) = measure_with_faults(config, plan, grid.warm_up, grid.window, || {
        watchdog.tick();
    })
    .expect("grid cell configuration is valid");
    let delivered_fraction = if m.offered > 0.0 {
        m.delivered / m.offered
    } else {
        0.0
    };
    Json::cell(
        [
            ("buffer", Json::from(cell.kind.name())),
            ("dead_links", Json::from(cell.dead_links)),
            (
                "recovery",
                Json::from(if cell.recovery { "on" } else { "off" }),
            ),
        ],
        Json::obj([
            ("delivered_fraction", Json::from(delivered_fraction)),
            ("fault_drops", Json::from(ledger.dropped())),
            ("measurement", measurement_json(&m)),
        ]),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let resume = args.iter().any(|a| a == "--resume");
    if let Some(bad) = args.iter().find(|a| *a != "--smoke" && *a != "--resume") {
        eprintln!("unknown flag {bad}; accepted: --smoke --resume"); // lint: allow — harness status channel
        std::process::exit(2);
    }
    let grid = grid(smoke);

    let mut cells = Vec::new();
    for (k, &kind) in grid.kinds.iter().enumerate() {
        for (f, &dead_links) in grid.fractions.iter().enumerate() {
            for recovery in [false, true] {
                cells.push(Cell {
                    kind,
                    dead_links,
                    recovery,
                    coords: [k as u64, f as u64],
                });
            }
        }
    }

    let mut report = Report::new(grid.name);
    report.meta("terminals", Json::from(TERMINALS));
    report.meta("radix", Json::from(RADIX));
    report.meta("slots_per_buffer", Json::from(SLOTS));
    report.meta("flow_control", Json::from("discarding"));
    report.meta("offered_load", Json::from(0.6));
    report.meta("warm_up", Json::from(grid.warm_up));
    report.meta("window", Json::from(grid.window));
    report.meta("total_links", Json::from(LINKS));

    let checkpoint = if resume {
        Checkpoint::load(grid.name)
    } else {
        Checkpoint::fresh(grid.name)
    }
    .expect("checkpoint sidecar must be readable/writable");
    let resumed = cells
        .iter()
        .filter(|c| checkpoint.contains(&cell_key(c)))
        .count();

    let pending: Vec<Cell> = cells
        .iter()
        .filter(|c| !checkpoint.contains(&cell_key(c)))
        .copied()
        .collect();
    let opts = IsolationOptions {
        cycle_budget: (grid.warm_up + grid.window) * 20,
        max_retries: 2,
    };
    let outcomes: Vec<CellOutcome> =
        sweep::run_isolated(&pending, opts, |cell, watchdog, attempt| {
            let json = run_cell(cell, &grid, watchdog, attempt);
            checkpoint
                .record(&cell_key(cell), &json)
                .expect("checkpoint append must succeed");
            json
        })
        .into_iter()
        .map(|r| r.outcome)
        .collect();

    for cell in &cells {
        let key = cell_key(cell);
        report.push_cell(checkpoint.get(&key).unwrap_or_else(|| {
            Json::cell(
                [
                    ("buffer", Json::from(cell.kind.name())),
                    ("dead_links", Json::from(cell.dead_links)),
                    (
                        "recovery",
                        Json::from(if cell.recovery { "on" } else { "off" }),
                    ),
                ],
                Json::obj([("failed", Json::from(true))]),
            )
        }));
    }
    let robustness = match robustness_json(&outcomes) {
        Json::Obj(mut pairs) => {
            pairs.push(("resumed".to_owned(), Json::from(resumed)));
            Json::Obj(pairs)
        }
        other => other,
    };
    report.set_robustness(robustness);

    let mut rows = Vec::new();
    let mut section_cells = Vec::new();
    for cell in &cells {
        let entry = checkpoint.get(&cell_key(cell));
        let top = |name: &str| -> Option<f64> {
            entry
                .as_ref()
                .and_then(|e| e.get(name))
                .and_then(Json::as_f64)
        };
        let measured = |name: &str| -> Option<f64> {
            entry
                .as_ref()
                .and_then(|e| e.get("measurement"))
                .and_then(|m| m.get(name))
                .and_then(Json::as_f64)
        };
        let fmt = |v: Option<f64>| v.map_or_else(|| "failed".to_owned(), |v| format!("{v:.3}"));
        rows.push(vec![
            cell.kind.name().to_owned(),
            format!("{:.2}", cell.dead_links),
            if cell.recovery { "on" } else { "off" }.to_owned(),
            fmt(top("delivered_fraction")),
            fmt(measured("latency_p99_clocks")),
            fmt(top("fault_drops")),
        ]);
        section_cells.push((
            cell_key(cell),
            Json::obj([
                (
                    "delivered_fraction",
                    top("delivered_fraction").map_or(Json::Null, Json::from),
                ),
                (
                    "latency_p99_clocks",
                    measured("latency_p99_clocks").map_or(Json::Null, Json::from),
                ),
            ]),
        ));
    }
    print!(
        "{}",
        render_table(
            &[
                "buffer",
                "dead_links",
                "recovery",
                "delivered_frac",
                "p99_clocks",
                "fault_drops"
            ],
            &rows,
        )
    );

    report.write_and_announce();

    // Mirror the headline numbers into the committed throughput record,
    // replacing only this harness's section. Smoke runs stay out of it:
    // the record holds full-grid numbers only.
    if !smoke {
        let section = Json::obj([
            ("experiment", Json::from(grid.name)),
            ("offered_load", Json::from(0.6)),
            ("cells", Json::Obj(section_cells)),
        ]);
        write_section("recovery", section);
    }
}

/// Path of the committed throughput record, resolved from this crate's
/// manifest so the harness works from any working directory.
fn report_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json")
}

/// Replaces (or appends) this harness's section of
/// `BENCH_throughput.json`, leaving every other section exactly as the
/// other harnesses wrote it.
fn write_section(key: &str, value: Json) {
    let path = report_path();
    let doc = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| Json::parse(&text).ok());
    let mut pairs = match doc {
        Some(Json::Obj(pairs)) => pairs,
        _ => vec![("bench".to_owned(), Json::from("sim_throughput"))],
    };
    match pairs.iter_mut().find(|(k, _)| k == key) {
        Some((_, slot)) => *slot = value,
        None => pairs.push((key.to_owned(), value)),
    }
    match std::fs::write(&path, Json::Obj(pairs).render_pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
