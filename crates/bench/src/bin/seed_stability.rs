//! **Methodology check**: how stable are the headline numbers across
//! random seeds?
//!
//! The paper reports single simulation runs. This harness re-runs the
//! Table-4 headline configuration (saturation throughput, FIFO vs DAMQ)
//! over several independent seeds and reports mean ± sample standard
//! deviation (the JSON report adds the 95% confidence interval), so
//! EXPERIMENTS.md can state the noise floor honestly.
//!
//! The (seed, design) grid is swept in parallel through
//! [`damq_bench::sweep`]; per-seed samples are reduced with
//! [`sweep::Aggregate`]. The run also writes
//! `results/json/seed_stability.json`.

use damq_bench::json::{aggregates_json, Json, Report};
use damq_bench::sweep::Aggregate;
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_net::{find_saturation, measure, NetworkConfig, SaturationOptions};
use damq_switch::FlowControl;

const SEEDS: [u64; 5] = [11, 727, 5_309, 90_210, 424_242];

fn main() {
    println!(
        "Seed stability of the headline results ({} seeds)",
        SEEDS.len()
    );
    println!("(64x64 Omega, blocking, uniform traffic, 4 slots per buffer)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);

    let kinds = [BufferKind::Fifo, BufferKind::Damq];
    let cells: Vec<(usize, usize)> = SEEDS
        .iter()
        .enumerate()
        .flat_map(|(s, _)| (0..kinds.len()).map(move |k| (s, k)))
        .collect();
    // Each cell: (saturation throughput, latency at 0.40 load) for one
    // (seed, design) pair. The pinned seeds themselves are the experiment —
    // no coordinate-derived seeding here.
    let mut report = Report::new("seed_stability");
    let samples = sweep::run(&cells, |&(s, k)| {
        let cfg = base.buffer_kind(kinds[k]).seed(SEEDS[s]);
        let sat = find_saturation(cfg, SaturationOptions::default()).expect("search runs");
        let m = measure(cfg.offered_load(0.40), 800, 6_000).expect("sim runs");
        (sat.throughput, m.latency_clocks)
    });

    let mut sats: Vec<Vec<f64>> = vec![Vec::new(); 2];
    let mut lats: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for (&(_, k), &(sat, lat)) in cells.iter().zip(&samples) {
        sats[k].push(sat);
        lats[k].push(lat);
    }
    let sat_agg: Vec<Aggregate> = sats.iter().map(|s| Aggregate::from_samples(s)).collect();
    let lat_agg: Vec<Aggregate> = lats.iter().map(|s| Aggregate::from_samples(s)).collect();

    report.meta("network", Json::from("64x64 Omega, blocking, uniform"));
    report.meta("slots_per_buffer", Json::from(4usize));
    report.meta(
        "seeds",
        Json::from(SEEDS.iter().map(|&s| Json::from(s)).collect::<Vec<_>>()),
    );
    for (&(s, k), &(sat, lat)) in cells.iter().zip(&samples) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kinds[k].name())),
                ("seed", Json::from(SEEDS[s])),
            ],
            Json::obj([
                ("saturation_throughput", Json::from(sat)),
                ("latency_at_040_clocks", Json::from(lat)),
            ]),
        ));
    }
    for (k, kind) in kinds.iter().enumerate() {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kind.name())),
                ("aggregate", Json::from(true)),
            ],
            aggregates_json(&[
                ("saturation_throughput", sat_agg[k]),
                ("latency_at_040_clocks", lat_agg[k]),
            ]),
        ));
    }

    let header = ["Metric", "FIFO", "DAMQ", "DAMQ/FIFO"];
    let rows = vec![
        vec![
            "saturation thr".into(),
            format!("{:.3} ± {:.3}", sat_agg[0].mean, sat_agg[0].stddev),
            format!("{:.3} ± {:.3}", sat_agg[1].mean, sat_agg[1].stddev),
            format!("{:.2}x", sat_agg[1].mean / sat_agg[0].mean),
        ],
        vec![
            "latency @0.40".into(),
            format!("{:.1} ± {:.1}", lat_agg[0].mean, lat_agg[0].stddev),
            format!("{:.1} ± {:.1}", lat_agg[1].mean, lat_agg[1].stddev),
            format!("{:.2}x", lat_agg[0].mean / lat_agg[1].mean),
        ],
    ];
    print!("{}", render_table(&header, &rows));
    println!();
    println!(
        "95% CI half-widths: saturation ±{:.3} (FIFO) / ±{:.3} (DAMQ);",
        sat_agg[0].ci95, sat_agg[1].ci95
    );
    println!(
        "latency ±{:.1} / ±{:.1} clocks. the paper's headline (DAMQ saturates",
        lat_agg[0].ci95, lat_agg[1].ci95
    );
    println!("~40% above FIFO) is far outside the seed noise; per-seed saturation");
    println!("varies by about the bisection resolution (0.01).");
    report.write_and_announce();
}
