//! **Methodology check**: how stable are the headline numbers across
//! random seeds?
//!
//! The paper reports single simulation runs. This harness re-runs the
//! Table-4 headline configuration (saturation throughput, FIFO vs DAMQ)
//! over several independent seeds and reports mean ± sample standard
//! deviation, so EXPERIMENTS.md can state the noise floor honestly.

use damq_bench::render_table;
use damq_core::BufferKind;
use damq_net::{find_saturation, measure, NetworkConfig, SaturationOptions};
use damq_switch::FlowControl;

const SEEDS: [u64; 5] = [11, 727, 5_309, 90_210, 424_242];

fn mean_std(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

fn main() {
    println!("Seed stability of the headline results ({} seeds)", SEEDS.len());
    println!("(64x64 Omega, blocking, uniform traffic, 4 slots per buffer)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);

    let header = ["Metric", "FIFO", "DAMQ", "DAMQ/FIFO"];
    let mut rows = Vec::new();

    // Saturation throughput.
    let mut sats: Vec<Vec<f64>> = vec![Vec::new(); 2];
    // Latency at 0.40 load (below both saturations).
    let mut lats: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for &seed in &SEEDS {
        for (slot, kind) in [BufferKind::Fifo, BufferKind::Damq].into_iter().enumerate() {
            let sat = find_saturation(
                base.buffer_kind(kind).seed(seed),
                SaturationOptions::default(),
            )
            .expect("search runs");
            sats[slot].push(sat.throughput);
            let m = measure(base.buffer_kind(kind).seed(seed).offered_load(0.40), 800, 6_000)
                .expect("sim runs");
            lats[slot].push(m.latency_clocks);
        }
    }
    let (fifo_sat, fifo_sat_sd) = mean_std(&sats[0]);
    let (damq_sat, damq_sat_sd) = mean_std(&sats[1]);
    rows.push(vec![
        "saturation thr".into(),
        format!("{fifo_sat:.3} ± {fifo_sat_sd:.3}"),
        format!("{damq_sat:.3} ± {damq_sat_sd:.3}"),
        format!("{:.2}x", damq_sat / fifo_sat),
    ]);
    let (fifo_lat, fifo_lat_sd) = mean_std(&lats[0]);
    let (damq_lat, damq_lat_sd) = mean_std(&lats[1]);
    rows.push(vec![
        "latency @0.40".into(),
        format!("{fifo_lat:.1} ± {fifo_lat_sd:.1}"),
        format!("{damq_lat:.1} ± {damq_lat_sd:.1}"),
        format!("{:.2}x", fifo_lat / damq_lat),
    ]);
    print!("{}", render_table(&header, &rows));
    println!();
    println!("the paper's headline (DAMQ saturates ~40% above FIFO) is far outside");
    println!("the seed noise; per-seed saturation varies by about the bisection");
    println!("resolution (0.01).");
}
