//! Regenerates **Table 1** of the paper: "Virtual Cut Through in Four
//! Clock Cycles".
//!
//! A single packet is driven into an idle ComCoBB chip and the
//! cycle/phase event trace is printed. The headline check: the start bit
//! arrives at cycle 0 and the output port drives the downstream start bit
//! at cycle 4, phase 0 — a four-cycle turn-around, independent of packet
//! length.
//!
//! The trace is a single deterministic cell, but it still goes through
//! [`damq_bench::sweep`] so the run writes `results/json/table1.json`
//! like every other harness.

use damq_bench::json::{Json, Report};
use damq_bench::sweep;
use damq_microarch::{Chip, ChipConfig, ChipEvent, Phase, RouteEntry};

struct TraceResult {
    rendered: String,
    start_in_cycle: u64,
    start_out_cycle: u64,
    start_out_phase: Phase,
    forwarded_header: u8,
    forwarded_data: Vec<u8>,
}

fn drive_one_packet() -> TraceResult {
    let mut chip = Chip::new(ChipConfig::comcobb());
    chip.program_route(
        0,
        0x20,
        RouteEntry {
            output: 2,
            new_header: 0x21,
        },
    )
    .expect("valid route");

    // A 4-byte packet: start bit at cycle 0, header 0x20, length, data.
    chip.input_wire_mut(0)
        .drive_packet(0, 0x20, &[0xA, 0xB, 0xC, 0xD]);
    chip.run_to_quiescence(64);

    let start_in = chip
        .trace()
        .first(|e| matches!(e.event, ChipEvent::StartBitDetected))
        .expect("packet arrived");
    let start_out = chip
        .trace()
        .first(|e| matches!(e.event, ChipEvent::StartBitSent))
        .expect("packet forwarded");
    let forwarded = chip.output_log(2).packets();
    TraceResult {
        rendered: chip.trace().render(),
        start_in_cycle: start_in.cycle,
        start_out_cycle: start_out.cycle,
        start_out_phase: start_out.phase,
        forwarded_header: forwarded[0].1,
        forwarded_data: forwarded[0].2.clone(),
    }
}

fn main() {
    let mut report = Report::new("table1");
    let traces = sweep::run(&[()], |&()| drive_one_packet());
    let t = &traces[0];

    println!("Table 1: Virtual Cut Through in Four Clock Cycles");
    println!("(single packet, idle chip: input port 0 -> output port 2)");
    println!();
    println!("{}", t.rendered);

    assert_eq!(t.start_in_cycle, 0);
    assert_eq!((t.start_out_cycle, t.start_out_phase), (4, Phase::Zero));
    println!(
        "turn-around: start bit in at cycle {}, start bit out at cycle {} phase {} => {} cycles",
        t.start_in_cycle,
        t.start_out_cycle,
        t.start_out_phase,
        t.start_out_cycle - t.start_in_cycle
    );
    println!(
        "forwarded packet: header {:#04x}, data {:?}",
        t.forwarded_header, t.forwarded_data
    );

    report.meta("chip", Json::from("ComCoBB"));
    report.meta("route", Json::from("input 0 -> output 2"));
    report.push_cell(Json::cell(
        [("packet_bytes", Json::from(4usize))],
        Json::obj([
            ("start_in_cycle", Json::from(t.start_in_cycle)),
            ("start_out_cycle", Json::from(t.start_out_cycle)),
            (
                "start_out_phase",
                Json::from(format!("{}", t.start_out_phase)),
            ),
            (
                "turnaround_cycles",
                Json::from(t.start_out_cycle - t.start_in_cycle),
            ),
            (
                "forwarded_header",
                Json::from(format!("{:#04x}", t.forwarded_header)),
            ),
        ]),
    ));
    report.write_and_announce();
}
