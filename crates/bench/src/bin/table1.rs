//! Regenerates **Table 1** of the paper: "Virtual Cut Through in Four
//! Clock Cycles".
//!
//! A single packet is driven into an idle ComCoBB chip and the
//! cycle/phase event trace is printed. The headline check: the start bit
//! arrives at cycle 0 and the output port drives the downstream start bit
//! at cycle 4, phase 0 — a four-cycle turn-around, independent of packet
//! length.

use damq_microarch::{Chip, ChipConfig, ChipEvent, Phase, RouteEntry};

fn main() {
    let mut chip = Chip::new(ChipConfig::comcobb());
    chip.program_route(
        0,
        0x20,
        RouteEntry {
            output: 2,
            new_header: 0x21,
        },
    )
    .expect("valid route");

    // A 4-byte packet: start bit at cycle 0, header 0x20, length, data.
    chip.input_wire_mut(0).drive_packet(0, 0x20, &[0xA, 0xB, 0xC, 0xD]);
    chip.run_to_quiescence(64);

    println!("Table 1: Virtual Cut Through in Four Clock Cycles");
    println!("(single packet, idle chip: input port 0 -> output port 2)");
    println!();
    println!("{}", chip.trace().render());

    let start_in = chip
        .trace()
        .first(|e| matches!(e.event, ChipEvent::StartBitDetected))
        .expect("packet arrived");
    let start_out = chip
        .trace()
        .first(|e| matches!(e.event, ChipEvent::StartBitSent))
        .expect("packet forwarded");
    assert_eq!(start_in.cycle, 0);
    assert_eq!((start_out.cycle, start_out.phase), (4, Phase::Zero));
    println!(
        "turn-around: start bit in at cycle {}, start bit out at cycle {} phase {} => {} cycles",
        start_in.cycle,
        start_out.cycle,
        start_out.phase,
        start_out.cycle - start_in.cycle
    );
    let forwarded = chip.output_log(2).packets();
    println!(
        "forwarded packet: header {:#04x}, data {:?}",
        forwarded[0].1, forwarded[0].2
    );
}
