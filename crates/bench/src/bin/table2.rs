//! Regenerates **Table 2** of the paper: "Probability for Discarding —
//! Markov Analysis".
//!
//! A single 2×2 discarding switch is analysed in steady state for each
//! buffer design, buffer size and traffic level. Run with `--order
//! departures-first` to see the alternative intra-cycle ordering discussed
//! in DESIGN.md.
//!
//! The (design, size, traffic) grid is swept in parallel through
//! [`damq_bench::sweep`]; alongside the text table the run writes
//! `results/json/table2.json` with one cell per analysed point.

use damq_bench::json::{discard_point_json, Json, Report};
use damq_bench::{fmt_prob, render_table, sweep, TABLE2_TRAFFIC};
use damq_core::BufferKind;
use damq_markov::{discard_probability, CycleOrder, SolveOptions};

fn main() {
    let order = match std::env::args().nth(2).as_deref() {
        Some("departures-first") => CycleOrder::DeparturesFirst,
        _ => CycleOrder::ArrivalsFirst,
    };
    println!("Table 2: Probability for Discarding - Markov Analysis");
    println!("(2x2 discarding switch, fixed-length packets, long clock; order: {order:?})");
    println!();

    let sizes: &[(BufferKind, &[usize])] = &[
        (BufferKind::Fifo, &[2, 3, 4, 5, 6]),
        (BufferKind::Damq, &[2, 3, 4, 5, 6]),
        (BufferKind::Samq, &[2, 4, 6]),
        (BufferKind::Safc, &[2, 4, 6]),
    ];

    // One cell per (design, capacity, traffic) grid point, in table order.
    let cells: Vec<(BufferKind, usize, f64)> = sizes
        .iter()
        .flat_map(|&(kind, capacities)| {
            capacities.iter().flat_map(move |&cap| {
                TABLE2_TRAFFIC
                    .iter()
                    .map(move |&traffic| (kind, cap, traffic))
            })
        })
        .collect();
    let mut report = Report::new("table2");
    let points = sweep::run(&cells, |&(kind, cap, traffic)| {
        discard_probability(kind, cap, traffic, order, SolveOptions::default())
            .unwrap_or_else(|e| panic!("analysis failed for {kind}/{cap}/{traffic}: {e}"))
    });

    report.meta("switch", Json::from("2x2 discarding"));
    report.meta("order", Json::from(format!("{order:?}")));
    for ((kind, cap, traffic), point) in cells.iter().zip(&points) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kind.name())),
                ("capacity_slots", Json::from(*cap)),
                ("traffic", Json::from(*traffic)),
            ],
            discard_point_json(point),
        ));
    }

    let mut header: Vec<String> = vec!["Switch".into(), "Space".into()];
    header.extend(TABLE2_TRAFFIC.iter().map(|t| format!("{:.0}%", t * 100.0)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut point_iter = points.iter();
    for &(kind, capacities) in sizes {
        for &cap in capacities {
            let mut row = vec![kind.name().to_owned(), cap.to_string()];
            for _ in TABLE2_TRAFFIC {
                let point = point_iter.next().expect("one point per grid cell");
                row.push(fmt_prob(point.discard_probability));
            }
            rows.push(row);
        }
    }
    print!("{}", render_table(&header_refs, &rows));
    report.write_and_announce();
}
