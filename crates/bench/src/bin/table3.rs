//! Regenerates **Table 3** of the paper: discarding switches, percentage of
//! packets discarded for a given input throughput, uniform traffic, four
//! slots per buffer.
//!
//! The paper's "over capacity" column uses an unspecified offered load well
//! past saturation; we use 0.75, which reproduces the reported output
//! throughputs' regime (see EXPERIMENTS.md).
//!
//! The (design, load, policy) grid is swept in parallel through
//! [`damq_bench::sweep`], each cell seeded from its coordinates; the run
//! also writes `results/json/table3.json`.

use damq_bench::json::{measurement_json, Json, Report};
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_net::{measure, NetworkConfig, TrafficPattern};
use damq_switch::{ArbiterPolicy, FlowControl};

const WARM_UP: u64 = 1_000;
const WINDOW: u64 = 10_000;
const OVER_CAPACITY_LOAD: f64 = 0.75;

fn pct(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x < 0.005 {
        "0+".into()
    } else {
        format!("{:.2}", x * 100.0)
    }
}

fn main() {
    println!("Table 3: Discarding switches, % packets discarded for given input throughput");
    println!("(64x64 Omega, 4x4 switches, uniform traffic, 4 slots per buffer;");
    println!(" over-capacity column at offered load {OVER_CAPACITY_LOAD})");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Discarding)
        .traffic(TrafficPattern::Uniform);

    let kinds = [
        BufferKind::Fifo,
        BufferKind::Samq,
        BufferKind::Safc,
        BufferKind::Damq,
    ];
    // Column order of the paper's table: smart arbiter at two loads, the
    // over-capacity point, then the dumb arbiter at half load.
    let variants: [(f64, ArbiterPolicy); 4] = [
        (0.25, ArbiterPolicy::Smart),
        (0.50, ArbiterPolicy::Smart),
        (OVER_CAPACITY_LOAD, ArbiterPolicy::Smart),
        (0.50, ArbiterPolicy::Dumb),
    ];

    let cells: Vec<(usize, usize)> = (0..kinds.len())
        .flat_map(|k| (0..variants.len()).map(move |v| (k, v)))
        .collect();
    let mut report = Report::new("table3");
    let measurements = sweep::run(&cells, |&(k, v)| {
        let (load, policy) = variants[v];
        measure(
            base.buffer_kind(kinds[k])
                .arbiter_policy(policy)
                .offered_load(load)
                .seed(sweep::cell_seed(sweep::BASE_SEED, &[k as u64, v as u64])),
            WARM_UP,
            WINDOW,
        )
        .expect("simulation must run")
    });

    report.meta("network", Json::from("64x64 Omega, 4x4 switches"));
    report.meta("slots_per_buffer", Json::from(4usize));
    report.meta("flow_control", Json::from("Discarding"));
    report.meta("warm_up_cycles", Json::from(WARM_UP));
    report.meta("window_cycles", Json::from(WINDOW));
    for (&(k, v), m) in cells.iter().zip(&measurements) {
        let (load, policy) = variants[v];
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kinds[k].name())),
                ("offered_load", Json::from(load)),
                ("arbiter", Json::from(format!("{policy:?}"))),
            ],
            measurement_json(m),
        ));
    }

    let header = [
        "Buffer",
        "smart 0.25",
        "smart 0.50",
        "over-cap %disc",
        "over-cap thr",
        "dumb 0.50",
    ];
    let mut rows = Vec::new();
    let mut m_iter = measurements.iter();
    for kind in kinds {
        let s25 = m_iter.next().expect("cell");
        let s50 = m_iter.next().expect("cell");
        let over = m_iter.next().expect("cell");
        let d50 = m_iter.next().expect("cell");
        rows.push(vec![
            kind.name().to_owned(),
            pct(s25.discard_fraction),
            pct(s50.discard_fraction),
            pct(over.discard_fraction),
            format!("{:.2}", over.delivered),
            pct(d50.discard_fraction),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    report.write_and_announce();
}
