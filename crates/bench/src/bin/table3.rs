//! Regenerates **Table 3** of the paper: discarding switches, percentage of
//! packets discarded for a given input throughput, uniform traffic, four
//! slots per buffer.
//!
//! The paper's "over capacity" column uses an unspecified offered load well
//! past saturation; we use 0.75, which reproduces the reported output
//! throughputs' regime (see EXPERIMENTS.md).

use damq_bench::render_table;
use damq_core::BufferKind;
use damq_net::{measure, NetworkConfig, TrafficPattern};
use damq_switch::{ArbiterPolicy, FlowControl};

const WARM_UP: u64 = 1_000;
const WINDOW: u64 = 10_000;
const OVER_CAPACITY_LOAD: f64 = 0.75;

fn pct(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x < 0.005 {
        "0+".into()
    } else {
        format!("{:.2}", x * 100.0)
    }
}

fn main() {
    println!("Table 3: Discarding switches, % packets discarded for given input throughput");
    println!("(64x64 Omega, 4x4 switches, uniform traffic, 4 slots per buffer;");
    println!(" over-capacity column at offered load {OVER_CAPACITY_LOAD})");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Discarding)
        .traffic(TrafficPattern::Uniform);

    let header = [
        "Buffer",
        "smart 0.25",
        "smart 0.50",
        "over-cap %disc",
        "over-cap thr",
        "dumb 0.50",
    ];
    let mut rows = Vec::new();
    for kind in [
        BufferKind::Fifo,
        BufferKind::Samq,
        BufferKind::Safc,
        BufferKind::Damq,
    ] {
        let at = |load: f64, policy: ArbiterPolicy| {
            measure(
                base.buffer_kind(kind).arbiter_policy(policy).offered_load(load),
                WARM_UP,
                WINDOW,
            )
            .expect("simulation must run")
        };
        let s25 = at(0.25, ArbiterPolicy::Smart);
        let s50 = at(0.50, ArbiterPolicy::Smart);
        let over = at(OVER_CAPACITY_LOAD, ArbiterPolicy::Smart);
        let d50 = at(0.50, ArbiterPolicy::Dumb);
        rows.push(vec![
            kind.name().to_owned(),
            pct(s25.discard_fraction),
            pct(s50.discard_fraction),
            pct(over.discard_fraction),
            format!("{:.2}", over.delivered),
            pct(d50.discard_fraction),
        ]);
    }
    print!("{}", render_table(&header, &rows));
}
