//! Regenerates **Table 4** of the paper: average latencies for given
//! throughput and saturation throughput, all four buffer designs, four
//! slots per buffer, uniform traffic, blocking protocol.
//!
//! Two grids are swept in parallel through [`damq_bench::sweep`] — a
//! (design, load) measurement grid and a per-design saturation search —
//! each cell seeded from its coordinates. The run also writes
//! `results/json/table4.json`.

use damq_bench::json::{measurement_json, saturation_json, Json, Report};
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_net::{find_saturation, measure, NetworkConfig, SaturationOptions};
use damq_switch::FlowControl;

const WARM_UP: u64 = 1_000;
const WINDOW: u64 = 10_000;
const LOADS: [f64; 4] = [0.25, 0.30, 0.40, 0.50];

fn main() {
    println!("Table 4: Average latencies (clock cycles) for given throughput");
    println!("(64x64 Omega, blocking, uniform traffic, smart arbitration, 4 slots per buffer)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);

    let kinds = [
        BufferKind::Fifo,
        BufferKind::Damq,
        BufferKind::Safc,
        BufferKind::Samq,
    ];

    let cells: Vec<(usize, usize)> = (0..kinds.len())
        .flat_map(|k| (0..LOADS.len()).map(move |l| (k, l)))
        .collect();
    let mut report = Report::new("table4");
    let measurements = sweep::run(&cells, |&(k, l)| {
        measure(
            base.buffer_kind(kinds[k])
                .offered_load(LOADS[l])
                .seed(sweep::cell_seed(sweep::BASE_SEED, &[k as u64, l as u64])),
            WARM_UP,
            WINDOW,
        )
        .expect("simulation must run")
    });
    let sat_cells: Vec<usize> = (0..kinds.len()).collect();
    let saturations = sweep::run(&sat_cells, |&k| {
        find_saturation(
            base.buffer_kind(kinds[k])
                .seed(sweep::cell_seed(sweep::BASE_SEED, &[k as u64, u64::MAX])),
            SaturationOptions::default(),
        )
        .expect("saturation search must run")
    });

    report.meta("network", Json::from("64x64 Omega, blocking, uniform"));
    report.meta("slots_per_buffer", Json::from(4usize));
    report.meta("warm_up_cycles", Json::from(WARM_UP));
    report.meta("window_cycles", Json::from(WINDOW));
    for (&(k, l), m) in cells.iter().zip(&measurements) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kinds[k].name())),
                ("offered_load", Json::from(LOADS[l])),
            ],
            measurement_json(m),
        ));
    }
    for (&k, sat) in sat_cells.iter().zip(&saturations) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kinds[k].name())),
                ("saturation_search", Json::from(true)),
            ],
            saturation_json(sat),
        ));
    }

    let mut header: Vec<String> = vec!["Buffer".into()];
    header.extend(LOADS.iter().map(|l| format!("{l:.2}")));
    header.push("saturated".into());
    header.push("sat. thr".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut m_iter = measurements.iter();
    for (k, kind) in kinds.iter().enumerate() {
        let mut row = vec![kind.name().to_owned()];
        for _ in &LOADS {
            let m = m_iter.next().expect("one measurement per cell");
            row.push(format!("{:.2}", m.latency_clocks));
        }
        let sat = &saturations[k];
        row.push(format!("{:.2}", sat.saturated_latency_clocks));
        row.push(format!("{:.2}", sat.throughput));
        rows.push(row);
    }
    print!("{}", render_table(&header_refs, &rows));
    report.write_and_announce();
}
