//! Regenerates **Table 4** of the paper: average latencies for given
//! throughput and saturation throughput, all four buffer designs, four
//! slots per buffer, uniform traffic, blocking protocol.

use damq_bench::render_table;
use damq_core::BufferKind;
use damq_net::{find_saturation, measure, NetworkConfig, SaturationOptions};
use damq_switch::FlowControl;

const WARM_UP: u64 = 1_000;
const WINDOW: u64 = 10_000;

fn main() {
    println!("Table 4: Average latencies (clock cycles) for given throughput");
    println!("(64x64 Omega, blocking, uniform traffic, smart arbitration, 4 slots per buffer)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);

    let loads = [0.25, 0.30, 0.40, 0.50];
    let mut header: Vec<String> = vec!["Buffer".into()];
    header.extend(loads.iter().map(|l| format!("{l:.2}")));
    header.push("saturated".into());
    header.push("sat. thr".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for kind in [
        BufferKind::Fifo,
        BufferKind::Damq,
        BufferKind::Safc,
        BufferKind::Samq,
    ] {
        let mut row = vec![kind.name().to_owned()];
        for &load in &loads {
            let m = measure(base.buffer_kind(kind).offered_load(load), WARM_UP, WINDOW)
                .expect("simulation must run");
            row.push(format!("{:.2}", m.latency_clocks));
        }
        let sat = find_saturation(base.buffer_kind(kind), SaturationOptions::default())
            .expect("saturation search must run");
        row.push(format!("{:.2}", sat.saturated_latency_clocks));
        row.push(format!("{:.2}", sat.throughput));
        rows.push(row);
    }
    print!("{}", render_table(&header_refs, &rows));
}
