//! Regenerates **Table 5** of the paper: average latencies for given
//! throughput with varying numbers of buffer slots (FIFO vs DAMQ; 3, 4 and
//! 8 slots), uniform traffic, blocking protocol.
//!
//! The paper's point: extra FIFO slots buy far less than DAMQ's smarter
//! organisation — DAMQ with 3 slots beats FIFO with 8.
//!
//! The (design, slots, load) grid and the per-(design, slots) saturation
//! searches are swept in parallel through [`damq_bench::sweep`], each
//! cell seeded from its coordinates. The run also writes
//! `results/json/table5.json`.

use damq_bench::json::{measurement_json, saturation_json, Json, Report};
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_net::{find_saturation, measure, NetworkConfig, SaturationOptions};
use damq_switch::FlowControl;

const WARM_UP: u64 = 1_000;
const WINDOW: u64 = 10_000;
const SLOTS: [usize; 3] = [3, 4, 8];
const LOADS: [f64; 2] = [0.25, 0.50];

fn main() {
    println!("Table 5: Average latencies (clock cycles), varying number of slots");
    println!("(64x64 Omega, blocking, uniform traffic, smart arbitration)");
    println!();

    let base = NetworkConfig::new(64, 4).flow_control(FlowControl::Blocking);
    let kinds = [BufferKind::Fifo, BufferKind::Damq];

    let cells: Vec<(usize, usize, usize)> = (0..kinds.len())
        .flat_map(|k| (0..SLOTS.len()).flat_map(move |s| (0..LOADS.len()).map(move |l| (k, s, l))))
        .collect();
    let mut report = Report::new("table5");
    let measurements = sweep::run(&cells, |&(k, s, l)| {
        measure(
            base.buffer_kind(kinds[k])
                .slots_per_buffer(SLOTS[s])
                .offered_load(LOADS[l])
                .seed(sweep::cell_seed(
                    sweep::BASE_SEED,
                    &[k as u64, s as u64, l as u64],
                )),
            WARM_UP,
            WINDOW,
        )
        .expect("simulation must run")
    });
    let sat_cells: Vec<(usize, usize)> = (0..kinds.len())
        .flat_map(|k| (0..SLOTS.len()).map(move |s| (k, s)))
        .collect();
    let saturations = sweep::run(&sat_cells, |&(k, s)| {
        find_saturation(
            base.buffer_kind(kinds[k])
                .slots_per_buffer(SLOTS[s])
                .seed(sweep::cell_seed(
                    sweep::BASE_SEED,
                    &[k as u64, s as u64, u64::MAX],
                )),
            SaturationOptions::default(),
        )
        .expect("saturation search must run")
    });

    report.meta("network", Json::from("64x64 Omega, blocking, uniform"));
    report.meta("warm_up_cycles", Json::from(WARM_UP));
    report.meta("window_cycles", Json::from(WINDOW));
    for (&(k, s, l), m) in cells.iter().zip(&measurements) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kinds[k].name())),
                ("slots_per_buffer", Json::from(SLOTS[s])),
                ("offered_load", Json::from(LOADS[l])),
            ],
            measurement_json(m),
        ));
    }
    for (&(k, s), sat) in sat_cells.iter().zip(&saturations) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kinds[k].name())),
                ("slots_per_buffer", Json::from(SLOTS[s])),
                ("saturation_search", Json::from(true)),
            ],
            saturation_json(sat),
        ));
    }

    let header = ["Buffer", "Slots", "25%", "50%", "saturated", "sat. thr"];
    let mut rows = Vec::new();
    let mut m_iter = measurements.iter();
    let mut sat_iter = saturations.iter();
    for kind in kinds {
        for slots in SLOTS {
            let m25 = m_iter.next().expect("cell");
            let m50 = m_iter.next().expect("cell");
            let sat = sat_iter.next().expect("cell");
            rows.push(vec![
                kind.name().to_owned(),
                slots.to_string(),
                format!("{:.1}", m25.latency_clocks),
                format!("{:.1}", m50.latency_clocks),
                format!("{:.1}", sat.saturated_latency_clocks),
                format!("{:.2}", sat.throughput),
            ]);
        }
    }
    print!("{}", render_table(&header, &rows));
    report.write_and_announce();
}
