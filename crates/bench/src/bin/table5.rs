//! Regenerates **Table 5** of the paper: average latencies for given
//! throughput with varying numbers of buffer slots (FIFO vs DAMQ; 3, 4 and
//! 8 slots), uniform traffic, blocking protocol.
//!
//! The paper's point: extra FIFO slots buy far less than DAMQ's smarter
//! organisation — DAMQ with 3 slots beats FIFO with 8.

use damq_bench::render_table;
use damq_core::BufferKind;
use damq_net::{find_saturation, measure, NetworkConfig, SaturationOptions};
use damq_switch::FlowControl;

const WARM_UP: u64 = 1_000;
const WINDOW: u64 = 10_000;

fn main() {
    println!("Table 5: Average latencies (clock cycles), varying number of slots");
    println!("(64x64 Omega, blocking, uniform traffic, smart arbitration)");
    println!();

    let base = NetworkConfig::new(64, 4).flow_control(FlowControl::Blocking);

    let header = ["Buffer", "Slots", "25%", "50%", "saturated", "sat. thr"];
    let mut rows = Vec::new();
    for kind in [BufferKind::Fifo, BufferKind::Damq] {
        for slots in [3usize, 4, 8] {
            let cfg = base.buffer_kind(kind).slots_per_buffer(slots);
            let m25 = measure(cfg.offered_load(0.25), WARM_UP, WINDOW).expect("sim");
            let m50 = measure(cfg.offered_load(0.50), WARM_UP, WINDOW).expect("sim");
            let sat = find_saturation(cfg, SaturationOptions::default()).expect("sat");
            rows.push(vec![
                kind.name().to_owned(),
                slots.to_string(),
                format!("{:.1}", m25.latency_clocks),
                format!("{:.1}", m50.latency_clocks),
                format!("{:.1}", sat.saturated_latency_clocks),
                format!("{:.2}", sat.throughput),
            ]);
        }
    }
    print!("{}", render_table(&header, &rows));
}
