//! Regenerates **Table 6** of the paper: average latency for given
//! throughputs with 5% hot-spot traffic, four slots per buffer, blocking
//! protocol.
//!
//! The paper's finding: under hot-spot traffic the buffer design does not
//! matter — every network tree-saturates at the same throughput (just under
//! 0.25 for a 64-terminal network with a 5% hot spot).

use damq_bench::render_table;
use damq_core::BufferKind;
use damq_net::{find_saturation, measure, NetworkConfig, SaturationOptions, TrafficPattern};
use damq_switch::FlowControl;

const WARM_UP: u64 = 1_000;
const WINDOW: u64 = 10_000;

fn main() {
    println!("Table 6: Average latency (clock cycles) with 5% hot-spot traffic");
    println!("(64x64 Omega, blocking, smart arbitration, 4 slots per buffer)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .traffic(TrafficPattern::paper_hot_spot());

    let header = ["Buffer", "12.5%", "20.0%", "saturated", "sat. thr"];
    let mut rows = Vec::new();
    for kind in [
        BufferKind::Fifo,
        BufferKind::Samq,
        BufferKind::Safc,
        BufferKind::Damq,
    ] {
        let m125 = measure(base.buffer_kind(kind).offered_load(0.125), WARM_UP, WINDOW)
            .expect("sim");
        let m200 = measure(base.buffer_kind(kind).offered_load(0.20), WARM_UP, WINDOW)
            .expect("sim");
        let sat = find_saturation(base.buffer_kind(kind), SaturationOptions::default())
            .expect("sat");
        rows.push(vec![
            kind.name().to_owned(),
            format!("{:.2}", m125.latency_clocks),
            format!("{:.2}", m200.latency_clocks),
            format!("{:.2}", sat.saturated_latency_clocks),
            format!("{:.2}", sat.throughput),
        ]);
    }
    print!("{}", render_table(&header, &rows));
}
