//! Regenerates **Table 6** of the paper: average latency for given
//! throughputs with 5% hot-spot traffic, four slots per buffer, blocking
//! protocol.
//!
//! The paper's finding: under hot-spot traffic the buffer design does not
//! matter — every network tree-saturates at the same throughput (just under
//! 0.25 for a 64-terminal network with a 5% hot spot).
//!
//! The (design, load) grid and per-design saturation searches are swept
//! in parallel through [`damq_bench::sweep`], each cell seeded from its
//! coordinates. The run also writes `results/json/table6.json`.

use damq_bench::json::{measurement_json, saturation_json, Json, Report};
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_net::{find_saturation, measure, NetworkConfig, SaturationOptions, TrafficPattern};
use damq_switch::FlowControl;

const WARM_UP: u64 = 1_000;
const WINDOW: u64 = 10_000;
const LOADS: [f64; 2] = [0.125, 0.20];

fn main() {
    println!("Table 6: Average latency (clock cycles) with 5% hot-spot traffic");
    println!("(64x64 Omega, blocking, smart arbitration, 4 slots per buffer)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking)
        .traffic(TrafficPattern::paper_hot_spot());

    let kinds = [
        BufferKind::Fifo,
        BufferKind::Samq,
        BufferKind::Safc,
        BufferKind::Damq,
    ];

    let cells: Vec<(usize, usize)> = (0..kinds.len())
        .flat_map(|k| (0..LOADS.len()).map(move |l| (k, l)))
        .collect();
    let mut report = Report::new("table6");
    let measurements = sweep::run(&cells, |&(k, l)| {
        measure(
            base.buffer_kind(kinds[k])
                .offered_load(LOADS[l])
                .seed(sweep::cell_seed(sweep::BASE_SEED, &[k as u64, l as u64])),
            WARM_UP,
            WINDOW,
        )
        .expect("simulation must run")
    });
    let sat_cells: Vec<usize> = (0..kinds.len()).collect();
    let saturations = sweep::run(&sat_cells, |&k| {
        find_saturation(
            base.buffer_kind(kinds[k])
                .seed(sweep::cell_seed(sweep::BASE_SEED, &[k as u64, u64::MAX])),
            SaturationOptions::default(),
        )
        .expect("saturation search must run")
    });

    report.meta("network", Json::from("64x64 Omega, blocking, 5% hot spot"));
    report.meta("slots_per_buffer", Json::from(4usize));
    report.meta("warm_up_cycles", Json::from(WARM_UP));
    report.meta("window_cycles", Json::from(WINDOW));
    for (&(k, l), m) in cells.iter().zip(&measurements) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kinds[k].name())),
                ("offered_load", Json::from(LOADS[l])),
            ],
            measurement_json(m),
        ));
    }
    for (&k, sat) in sat_cells.iter().zip(&saturations) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kinds[k].name())),
                ("saturation_search", Json::from(true)),
            ],
            saturation_json(sat),
        ));
    }

    let header = ["Buffer", "12.5%", "20.0%", "saturated", "sat. thr"];
    let mut rows = Vec::new();
    let mut m_iter = measurements.iter();
    for (k, kind) in kinds.iter().enumerate() {
        let m125 = m_iter.next().expect("cell");
        let m200 = m_iter.next().expect("cell");
        let sat = &saturations[k];
        rows.push(vec![
            kind.name().to_owned(),
            format!("{:.2}", m125.latency_clocks),
            format!("{:.2}", m200.latency_clocks),
            format!("{:.2}", sat.saturated_latency_clocks),
            format!("{:.2}", sat.throughput),
        ]);
    }
    print!("{}", render_table(&header, &rows));
    report.write_and_announce();
}
