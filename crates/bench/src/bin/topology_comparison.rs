//! **Extension**: is the DAMQ advantage a property of the Omega wiring?
//!
//! The paper evaluates one topology. Running the identical experiment on a
//! k-ary butterfly (same stages, same switches, different inter-stage
//! permutations) shows the buffer result is about switches, not wiring —
//! both delta-class MINs route uniform traffic equivalently.

use damq_bench::render_table;
use damq_core::BufferKind;
use damq_net::{find_saturation, measure, NetworkConfig, SaturationOptions, TopologyKind};
use damq_switch::FlowControl;

fn main() {
    println!("Topology independence: Omega vs butterfly, 64x64, 4 slots per buffer");
    println!("(blocking, uniform traffic, smart arbitration)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);

    let header = ["Buffer", "wiring", "lat@0.25", "lat@0.40", "sat. thr"];
    let mut rows = Vec::new();
    for kind in BufferKind::ALL {
        for wiring in TopologyKind::ALL {
            let cfg = base.buffer_kind(kind).topology_kind(wiring);
            let m25 = measure(cfg.offered_load(0.25), 500, 4_000).expect("sim");
            let m40 = measure(cfg.offered_load(0.40), 500, 4_000).expect("sim");
            let sat = find_saturation(cfg, SaturationOptions::default()).expect("sat");
            rows.push(vec![
                kind.name().to_owned(),
                wiring.name().to_owned(),
                format!("{:.1}", m25.latency_clocks),
                format!("{:.1}", m40.latency_clocks),
                format!("{:.2}", sat.throughput),
            ]);
        }
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("expected: per-buffer rows agree across wirings to within the search");
    println!("resolution -- the DAMQ gain comes from the switch, not the shuffle.");
}
