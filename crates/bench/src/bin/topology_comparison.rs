//! **Extension**: is the DAMQ advantage a property of the Omega wiring?
//!
//! The paper evaluates one topology. Running the identical experiment on a
//! k-ary butterfly (same stages, same switches, different inter-stage
//! permutations) shows the buffer result is about switches, not wiring —
//! both delta-class MINs route uniform traffic equivalently.
//!
//! The (design, wiring, load) grid and per-(design, wiring) saturation
//! searches are swept in parallel through [`damq_bench::sweep`], each
//! cell seeded from its coordinates. The run also writes
//! `results/json/topology_comparison.json`.

use damq_bench::json::{measurement_json, saturation_json, Json, Report};
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_net::{find_saturation, measure, NetworkConfig, SaturationOptions, TopologyKind};
use damq_switch::FlowControl;

const LOADS: [f64; 2] = [0.25, 0.40];

fn main() {
    println!("Topology independence: Omega vs butterfly, 64x64, 4 slots per buffer");
    println!("(blocking, uniform traffic, smart arbitration)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(4)
        .flow_control(FlowControl::Blocking);

    let cells: Vec<(usize, usize, usize)> = (0..BufferKind::ALL.len())
        .flat_map(|k| {
            (0..TopologyKind::ALL.len()).flat_map(move |w| (0..LOADS.len()).map(move |l| (k, w, l)))
        })
        .collect();
    let mut report = Report::new("topology_comparison");
    let measurements = sweep::run(&cells, |&(k, w, l)| {
        measure(
            base.buffer_kind(BufferKind::ALL[k])
                .topology_kind(TopologyKind::ALL[w])
                .offered_load(LOADS[l])
                .seed(sweep::cell_seed(
                    sweep::BASE_SEED,
                    &[k as u64, w as u64, l as u64],
                )),
            500,
            4_000,
        )
        .expect("sim")
    });
    let sat_cells: Vec<(usize, usize)> = (0..BufferKind::ALL.len())
        .flat_map(|k| (0..TopologyKind::ALL.len()).map(move |w| (k, w)))
        .collect();
    let saturations = sweep::run(&sat_cells, |&(k, w)| {
        find_saturation(
            base.buffer_kind(BufferKind::ALL[k])
                .topology_kind(TopologyKind::ALL[w])
                .seed(sweep::cell_seed(
                    sweep::BASE_SEED,
                    &[k as u64, w as u64, u64::MAX],
                )),
            SaturationOptions::default(),
        )
        .expect("sat")
    });

    report.meta("network", Json::from("64x64, blocking, uniform"));
    report.meta("slots_per_buffer", Json::from(4usize));
    for (&(k, w, l), m) in cells.iter().zip(&measurements) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(BufferKind::ALL[k].name())),
                ("wiring", Json::from(TopologyKind::ALL[w].name())),
                ("offered_load", Json::from(LOADS[l])),
            ],
            measurement_json(m),
        ));
    }
    for (&(k, w), sat) in sat_cells.iter().zip(&saturations) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(BufferKind::ALL[k].name())),
                ("wiring", Json::from(TopologyKind::ALL[w].name())),
                ("saturation_search", Json::from(true)),
            ],
            saturation_json(sat),
        ));
    }

    let header = ["Buffer", "wiring", "lat@0.25", "lat@0.40", "sat. thr"];
    let mut rows = Vec::new();
    let mut m_iter = measurements.iter();
    let mut sat_iter = saturations.iter();
    for kind in BufferKind::ALL {
        for wiring in TopologyKind::ALL {
            let m25 = m_iter.next().expect("cell");
            let m40 = m_iter.next().expect("cell");
            let sat = sat_iter.next().expect("cell");
            rows.push(vec![
                kind.name().to_owned(),
                wiring.name().to_owned(),
                format!("{:.1}", m25.latency_clocks),
                format!("{:.1}", m40.latency_clocks),
                format!("{:.2}", sat.throughput),
            ]);
        }
    }
    print!("{}", render_table(&header, &rows));
    println!();
    println!("expected: per-buffer rows agree across wirings to within the search");
    println!("resolution -- the DAMQ gain comes from the switch, not the shuffle.");
    report.write_and_announce();
}
