//! Renders a text dashboard from a telemetry JSONL trace.
//!
//! Usage:
//!
//! ```text
//! trace_report <trace.jsonl>       # render (generates the trace first if missing)
//! trace_report --generate <path>   # force regeneration, then render
//! ```
//!
//! When the trace file does not exist the harness produces the canonical
//! one: the paper's 64×64 Omega network under a 5% hot spot at offered
//! load 0.30, 500 cycles, once for each of the five buffer designs
//! (FIFO, SAMQ, SAFC, DAMQ, DAFC). Runs are concatenated in one JSONL
//! file, each introduced by its `run_meta` line.
//!
//! The dashboard shows, per design: packet conservation counters,
//! per-stage occupancy and link-utilisation sparklines, the HOL-blocking
//! and discard timelines, the source-backlog curve, the buffer-occupancy
//! histogram, and the per-hop latency breakdown (whose stage means sum to
//! the mean network latency — the tentpole's one-trace-tells-all check).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use damq_bench::sweep;
use damq_core::BufferKind;
use damq_net::{NetworkConfig, NetworkSim, TrafficPattern};
use damq_switch::FlowControl;
use damq_telemetry::{sparkline, Event, JsonlSink, TraceSummary};

const CYCLES: u64 = 500;
const LOAD: f64 = 0.30;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    let (path, force) = match args.as_slice() {
        [p] if *p != "--generate" => (PathBuf::from(p), false),
        ["--generate"] => (default_trace_path(), true),
        ["--generate", p] => (PathBuf::from(p), true),
        [] => (default_trace_path(), false),
        _ => {
            eprintln!("usage: trace_report [--generate] [trace.jsonl]");
            return ExitCode::FAILURE;
        }
    };

    if force || !path.exists() {
        eprintln!(
            "generating 64x64 hot-spot trace ({} designs x {CYCLES} cycles) -> {}",
            BufferKind::EXTENDED.len(),
            path.display()
        );
        if let Err(e) = generate(&path) {
            eprintln!("error: could not generate trace: {e}");
            return ExitCode::FAILURE;
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: could not read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    // Tolerate a torn tail (a writer killed mid-append leaves one
    // malformed final line): render the intact prefix and warn. Mid-file
    // corruption is still a hard error.
    let events = match Event::parse_trace_tolerant(&text) {
        Ok((events, None)) => events,
        Ok((events, Some(torn))) => {
            eprintln!(
                "warning: {}: dropped torn trailing line ({torn})",
                path.display()
            );
            events
        }
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if events.is_empty() {
        eprintln!("error: {} holds no events", path.display());
        return ExitCode::FAILURE;
    }

    println!("trace report: {} ({} events)", path.display(), events.len());
    for run in split_runs(&events) {
        let mut summary = TraceSummary::new();
        for event in run {
            summary.feed(event);
        }
        summary.finish();
        render(&summary);
    }
    ExitCode::SUCCESS
}

/// `results/traces/hot_spot_64x64.jsonl`, honouring `DAMQ_RESULTS_DIR`.
fn default_trace_path() -> PathBuf {
    let dir = std::env::var("DAMQ_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    PathBuf::from(dir)
        .join("traces")
        .join("hot_spot_64x64.jsonl")
}

/// Runs the canonical hot-spot experiment once per buffer design,
/// streaming all five traces into one JSONL file.
fn generate(path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut writer = BufWriter::new(File::create(path)?);
    for (i, &kind) in BufferKind::EXTENDED.iter().enumerate() {
        let config = NetworkConfig::new(64, 4)
            .buffer_kind(kind)
            .slots_per_buffer(4)
            .flow_control(FlowControl::Blocking)
            .traffic(TrafficPattern::paper_hot_spot())
            .offered_load(LOAD)
            .seed(sweep::cell_seed(sweep::BASE_SEED, &[i as u64]));
        let mut sim = NetworkSim::with_sink(config, JsonlSink::new(&mut writer))
            .expect("the paper's 64x64 Omega configuration is valid");
        sim.emit_run_meta("64x64 Omega, 5% hot spot, load 0.30, blocking");
        sim.run(CYCLES);
        sim.into_sink().into_inner()?;
    }
    writer.flush()
}

/// Splits a concatenated trace at its `run_meta` lines. Events before the
/// first `run_meta` (if any) form their own anonymous run.
fn split_runs(events: &[Event]) -> Vec<&[Event]> {
    let mut starts: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind.type_tag() == "run_meta")
        .map(|(i, _)| i)
        .collect();
    if starts.first() != Some(&0) {
        starts.insert(0, 0);
    }
    starts
        .iter()
        .zip(starts.iter().skip(1).chain(std::iter::once(&events.len())))
        .map(|(&from, &to)| &events[from..to])
        .collect()
}

/// Prints one design's dashboard section.
fn render(summary: &TraceSummary) {
    println!();
    match &summary.meta {
        Some(meta) => println!(
            "== {} ({} terminals, radix {}, {} stages, {} slots/buffer) — {} ==",
            meta.design, meta.terminals, meta.radix, meta.stages, meta.slots, meta.note
        ),
        None => println!("== (run without run_meta) =="),
    }
    println!(
        "  packets   generated {} / injected {} / delivered {} / discarded {} entry + {} network",
        summary.generated,
        summary.injected,
        summary.delivered,
        summary.entry_discards,
        summary.network_discards
    );

    println!(
        "  occupancy per stage (mean slots per switch; {} cycles)",
        summary.last_cycle
    );
    for (stage, series) in summary.stage_occupancy.iter().enumerate() {
        println!(
            "    stage {stage} |{}| peak {:.0}",
            sparkline(&series.means()),
            series.peak()
        );
    }
    println!("  link utilisation per stage (packets forwarded / cycle)");
    for (stage, series) in summary.stage_forwarded.iter().enumerate() {
        println!(
            "    stage {stage} |{}| peak {:.0}",
            sparkline(&series.means()),
            series.peak()
        );
    }

    println!(
        "  HOL blocked |{}| {} packet-cycles total",
        sparkline(&summary.hol_series.means()),
        summary.hol_blocked_cycles
    );
    println!(
        "  discards    |{}| {} packets total",
        sparkline(&summary.discard_series.means()),
        summary.entry_discards + summary.network_discards
    );
    println!(
        "  src backlog |{}| peak {:.0} packets",
        sparkline(&summary.backlog_series.means()),
        summary.backlog_series.peak()
    );

    let hist = &summary.buffer_occupancy;
    if hist.observations() > 0 {
        let full = hist.counts().len().saturating_sub(1);
        println!(
            "  buffer occupancy: mean {:.2} slots, full {:.1}% of buffer-cycles",
            hist.mean(),
            hist.fraction_at_or_above(full.max(1)) * 100.0
        );
    }

    let waits = summary.mean_hop_waits();
    if let Some(latency) = summary.mean_network_latency() {
        let breakdown: Vec<String> = waits
            .iter()
            .enumerate()
            .map(|(s, w)| format!("stage {s}: {w:.2}"))
            .collect();
        println!(
            "  latency (delivered packets): {} -> {:.2} cycles inject-to-deliver",
            breakdown.join(", "),
            latency
        );
    } else {
        println!("  latency: no packets delivered");
    }
}
