//! **Extension**: watching tree saturation happen.
//!
//! Pfister & Norton named the phenomenon; the paper's Table 6 measures its
//! end state. This harness shows the *dynamics*: per-switch buffer
//! occupancy of the 64×64 Omega network, stage by stage, as a 5% hot spot
//! saturates the tree rooted at sink 0 — and the same network under
//! uniform traffic for contrast.
//!
//! Each row of the heat map is one switch stage (input side at the top);
//! each cell is one switch, shaded by buffer occupancy (` .:-=+*#%@`).
//!
//! The two traffic patterns run as parallel sweep cells (the checkpoints
//! within a run are sequential sim state, so they stay inside the cell);
//! the run also writes `results/json/tree_saturation.json` with per-stage
//! mean occupancy at every checkpoint. Seed 77 is pinned — the point is a
//! reproducible picture, not a statistic.

use damq_bench::json::{Json, Report};
use damq_bench::sweep;
use damq_core::BufferKind;
use damq_net::{NetworkConfig, NetworkSim, TrafficPattern};
use damq_switch::FlowControl;
use damq_telemetry::Profiler;

const SHADES: &[u8] = b" .:-=+*#%@";
const CHECKPOINTS: [u64; 4] = [10, 50, 200, 1000];
const SEED: u64 = 77;

fn shade(fraction: f64) -> char {
    let idx = (fraction * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[idx.min(SHADES.len() - 1)] as char
}

fn heat_map(sim: &NetworkSim) -> String {
    let mut out = String::new();
    for stage in 0..sim.topology().stages() {
        out.push_str(&format!("stage {stage} |"));
        for occ in sim.stage_occupancy(stage) {
            out.push(shade(occ));
        }
        out.push_str(&format!("| mean {:.2}\n", {
            let o = sim.stage_occupancy(stage);
            o.iter().sum::<f64>() / o.len() as f64
        }));
    }
    out
}

/// One checkpoint of one run: the rendered map plus the numbers behind it.
struct Snapshot {
    cycle: u64,
    map: String,
    delivered: f64,
    backlog: usize,
    stage_means: Vec<f64>,
}

fn run_pattern(pattern: TrafficPattern) -> Vec<Snapshot> {
    let mut sim = NetworkSim::new(
        NetworkConfig::new(64, 4)
            .buffer_kind(BufferKind::Damq)
            .slots_per_buffer(4)
            .flow_control(FlowControl::Blocking)
            .traffic(pattern)
            .offered_load(0.30)
            .seed(SEED),
    )
    .expect("valid config");
    CHECKPOINTS
        .iter()
        .map(|&checkpoint| {
            sim.run(checkpoint - sim.cycle());
            let stage_means = (0..sim.topology().stages())
                .map(|stage| {
                    let o = sim.stage_occupancy(stage);
                    o.iter().sum::<f64>() / o.len() as f64
                })
                .collect();
            Snapshot {
                cycle: checkpoint,
                map: heat_map(&sim),
                delivered: sim.metrics().delivered_throughput(),
                backlog: sim.source_backlog(),
                stage_means,
            }
        })
        .collect()
}

fn main() {
    println!("Tree saturation dynamics (64x64 Omega, DAMQ, 4 slots, load 0.30)");
    println!("(shade scale: ' ' empty ... '@' full; 16 switches per stage)");
    println!();

    let patterns = [
        (
            "uniform",
            TrafficPattern::Uniform,
            "uniform traffic: buffers stay sparse",
        ),
        (
            "hot_spot",
            TrafficPattern::paper_hot_spot(),
            "5% hot spot to sink 0: the tree rooted at sink 0 fills backwards",
        ),
    ];
    let cells: Vec<usize> = (0..patterns.len()).collect();
    let mut report = Report::new("tree_saturation");
    let mut profiler = Profiler::new();
    let sweep_phase = profiler.phase("sweep");
    let (runs, profile) = sweep::run_profiled(&cells, |&i| run_pattern(patterns[i].1));
    let profile = profile.with_cycles(vec![CHECKPOINTS[CHECKPOINTS.len() - 1]; cells.len()]);
    drop(sweep_phase);
    let render_phase = profiler.phase("render");

    report.meta(
        "network",
        Json::from("64x64 Omega, DAMQ, 4 slots, blocking"),
    );
    report.meta("offered_load", Json::from(0.30));
    report.meta("seed", Json::from(SEED));
    for (&i, snapshots) in cells.iter().zip(&runs) {
        let (name, _, label) = patterns[i];
        println!("== {label} ==");
        for snap in snapshots {
            println!("after {} cycles:", snap.cycle);
            print!("{}", snap.map);
            println!(
                "  delivered throughput so far: {:.3}, source backlog: {}",
                snap.delivered, snap.backlog
            );
            println!();
            report.push_cell(Json::cell(
                [
                    ("traffic", Json::from(name)),
                    ("cycle", Json::from(snap.cycle)),
                ],
                Json::obj([
                    ("delivered", Json::from(snap.delivered)),
                    ("source_backlog", Json::from(snap.backlog)),
                    (
                        "stage_mean_occupancy",
                        Json::from(
                            snap.stage_means
                                .iter()
                                .map(|&m| Json::from(m))
                                .collect::<Vec<_>>(),
                        ),
                    ),
                ]),
            ));
        }
    }
    println!("the hot spot's tree: 1 last-stage switch -> 4 middle -> 16 first-stage;");
    println!("once it is full, backpressure reaches every source and the whole");
    println!("network is capped at ~0.24 offered load no matter which buffer is used.");
    drop(render_phase);
    report.telemetry_from_profile(&profile, &profiler);
    report.write_and_announce();
}
