//! **Extension**: watching tree saturation happen.
//!
//! Pfister & Norton named the phenomenon; the paper's Table 6 measures its
//! end state. This harness shows the *dynamics*: per-switch buffer
//! occupancy of the 64×64 Omega network, stage by stage, as a 5% hot spot
//! saturates the tree rooted at sink 0 — and the same network under
//! uniform traffic for contrast.
//!
//! Each row of the heat map is one switch stage (input side at the top);
//! each cell is one switch, shaded by buffer occupancy (` .:-=+*#%@`).

use damq_core::BufferKind;
use damq_net::{NetworkConfig, NetworkSim, TrafficPattern};
use damq_switch::FlowControl;

const SHADES: &[u8] = b" .:-=+*#%@";

fn shade(fraction: f64) -> char {
    let idx = (fraction * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[idx.min(SHADES.len() - 1)] as char
}

fn heat_map(sim: &NetworkSim) -> String {
    let mut out = String::new();
    for stage in 0..sim.topology().stages() {
        out.push_str(&format!("stage {stage} |"));
        for occ in sim.stage_occupancy(stage) {
            out.push(shade(occ));
        }
        out.push_str(&format!("| mean {:.2}\n", {
            let o = sim.stage_occupancy(stage);
            o.iter().sum::<f64>() / o.len() as f64
        }));
    }
    out
}

fn run(label: &str, pattern: TrafficPattern) {
    println!("== {label} ==");
    let mut sim = NetworkSim::new(
        NetworkConfig::new(64, 4)
            .buffer_kind(BufferKind::Damq)
            .slots_per_buffer(4)
            .flow_control(FlowControl::Blocking)
            .traffic(pattern)
            .offered_load(0.30)
            .seed(77),
    )
    .expect("valid config");
    for checkpoint in [10u64, 50, 200, 1000] {
        sim.run(checkpoint - sim.cycle());
        println!("after {checkpoint} cycles:");
        print!("{}", heat_map(&sim));
        println!(
            "  delivered throughput so far: {:.3}, source backlog: {}",
            sim.metrics().delivered_throughput(),
            sim.source_backlog()
        );
        println!();
    }
}

fn main() {
    println!("Tree saturation dynamics (64x64 Omega, DAMQ, 4 slots, load 0.30)");
    println!("(shade scale: ' ' empty ... '@' full; 16 switches per stage)");
    println!();
    run("uniform traffic: buffers stay sparse", TrafficPattern::Uniform);
    run(
        "5% hot spot to sink 0: the tree rooted at sink 0 fills backwards",
        TrafficPattern::paper_hot_spot(),
    );
    println!("the hot spot's tree: 1 last-stage switch -> 4 middle -> 16 first-stage;");
    println!("once it is full, backpressure reaches every source and the whole");
    println!("network is capped at ~0.24 offered load no matter which buffer is used.");
}
