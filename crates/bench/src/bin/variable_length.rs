//! **Extension** (paper §5's conjecture): variable-length packets.
//!
//! The paper's simulations use fixed-length packets, but the DAMQ buffer
//! was *designed* for variable lengths (1–32 bytes over 8-byte slots); the
//! conclusion section conjectures "the DAMQ buffer will outperform its
//! competition by an even wider margin for the more realistic case of
//! variable length packets". This harness tests that conjecture on all
//! four designs: the same Omega network with fixed one-slot packets vs
//! uniformly distributed 1–32-byte packets (1–4 slots).
//!
//! Buffers get 16 slots each so the statically-partitioned designs can
//! hold at least one maximum-size packet per queue (with less than 4
//! slots per queue, SAMQ/SAFC cannot store large packets *at all* — the
//! extreme form of the fragmentation the paper warns about).
//!
//! The (workload, design) grid is swept in parallel through
//! [`damq_bench::sweep`], each cell seeded from its coordinates. The run
//! also writes `results/json/variable_length.json`.

use damq_bench::json::{saturation_json, Json, Report};
use damq_bench::{render_table, sweep};
use damq_core::BufferKind;
use damq_net::{find_saturation, NetworkConfig, PacketLengths, SaturationOptions};
use damq_switch::FlowControl;

fn main() {
    println!("Variable-length packets: testing the paper's Section 5 conjecture");
    println!("(64x64 Omega, blocking, smart arbitration, 16 slots per buffer)");
    println!();

    let base = NetworkConfig::new(64, 4)
        .slots_per_buffer(16)
        .flow_control(FlowControl::Blocking);
    let workloads: [(&str, PacketLengths); 2] = [
        ("fixed 8B (1 slot)", PacketLengths::Fixed(8)),
        (
            "uniform 1-32B (1-4 slots)",
            PacketLengths::Uniform { min: 1, max: 32 },
        ),
    ];

    let cells: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..BufferKind::ALL.len()).map(move |k| (w, k)))
        .collect();
    let mut report = Report::new("variable_length");
    let saturations = sweep::run(&cells, |&(w, k)| {
        find_saturation(
            base.buffer_kind(BufferKind::ALL[k])
                .packet_lengths(workloads[w].1)
                .seed(sweep::cell_seed(sweep::BASE_SEED, &[w as u64, k as u64])),
            SaturationOptions::default(),
        )
        .expect("search runs")
    });

    report.meta("network", Json::from("64x64 Omega, blocking, uniform"));
    report.meta("slots_per_buffer", Json::from(16usize));
    for (&(w, k), sat) in cells.iter().zip(&saturations) {
        report.push_cell(Json::cell(
            [
                ("workload", Json::from(workloads[w].0)),
                ("buffer", Json::from(BufferKind::ALL[k].name())),
            ],
            saturation_json(sat),
        ));
    }

    let mut header: Vec<String> = vec!["Workload".into()];
    for kind in BufferKind::ALL {
        header.push(format!("{} sat", kind.name()));
    }
    header.push("DAMQ/FIFO".into());
    header.push("DAMQ/SAMQ".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    let mut sat_iter = saturations.iter();
    for (label, _) in workloads {
        let sats: Vec<f64> = BufferKind::ALL
            .iter()
            .map(|_| sat_iter.next().expect("one search per cell").throughput)
            .collect();
        let fifo = sats[0];
        let samq = sats[1];
        let damq = sats[3];
        let mut row = vec![label.to_owned()];
        row.extend(sats.iter().map(|s| format!("{s:.2}")));
        row.push(format!("{:.2}x", damq / fifo));
        row.push(format!("{:.2}x", damq / samq));
        rows.push(row);
        ratios.push((damq / fifo, damq / samq));
    }
    print!("{}", render_table(&header_refs, &rows));

    println!();
    println!("reading the conjecture:");
    println!(
        "  vs the statically-allocated SAMQ, DAMQ's margin moves {:.2}x -> {:.2}x:",
        ratios[0].1, ratios[1].1
    );
    println!("  static partitions fragment badly once packets span 1-4 slots.");
    println!(
        "  vs FIFO the margin moves {:.2}x -> {:.2}x: a FIFO also pools its",
        ratios[0].0, ratios[1].0
    );
    println!("  storage, so its penalty (head-of-line blocking) is length-independent.");
    println!("  the paper's conjecture holds against the designs that partition");
    println!("  storage -- exactly the designs its Section 2 critiques.");
    report.write_and_announce();
}
