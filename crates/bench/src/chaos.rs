//! Chaos soak engine: long randomized fault storms with per-epoch
//! invariant audits and automatic reproducer minimization.
//!
//! A soak runs one simulation for many **epochs**. Each epoch draws its
//! own fault storm (dead slots + link flaps + payload corruption +
//! misroutes) from a deterministic per-epoch seed; because installing a
//! plan mid-run replaces the previous fault state, the storms are
//! composed up front into one master [`FaultPlan`] via
//! [`FaultPlan::shifted`] + [`FaultPlan::merged`]. At every epoch
//! boundary the simulator's full audit suite re-runs, plus any extra
//! caller-supplied invariant (the seeded-mutation test injects its
//! violation through that hook).
//!
//! When an epoch check fails, [`minimize`] shrinks the master plan by
//! greedy event elimination — re-running the soak without each event and
//! keeping every deletion that still violates — and truncates the cycle
//! window to the first failing epoch. The result is a [`Reproducer`]
//! (seed + cycle window + minimized fault plan) that [`replay`] verifies
//! by re-triggering the violation; the `chaos_soak` bin then emits it
//! through the flight-recorder crash-dump sidecar.
//!
//! Everything here is wall-clock-free and seed-stable: the same config,
//! soak plan, and checker reproduce the same violation, minimization
//! trajectory, and reproducer byte for byte.

use damq_core::{FaultEvent, FaultPlan, FaultSpec};
use damq_net::{NetworkConfig, NetworkError, NetworkSim};
use damq_telemetry::{Event, SharedRecorder, TelemetrySink};

use crate::json::Json;
use crate::sweep;

/// Shape of one soak: epoch count and length, plus the storm drawn per
/// epoch (`storm.horizon` is clamped to the epoch length).
#[derive(Debug, Clone, Copy)]
pub struct SoakPlan {
    /// Base seed for the per-epoch storm draws.
    pub seed: u64,
    /// Number of epochs to run.
    pub epochs: u64,
    /// Simulated cycles per epoch.
    pub epoch_cycles: u64,
    /// Fault rates drawn once per epoch.
    pub storm: FaultSpec,
}

impl SoakPlan {
    /// Total simulated cycles the soak covers.
    pub fn horizon(&self) -> u64 {
        self.epochs * self.epoch_cycles
    }

    /// Composes the per-epoch storms into one master plan.
    ///
    /// Epoch `e`'s storm is generated over `[0, epoch_cycles)` from a
    /// seed mixed from the soak seed and the epoch index, then shifted
    /// to the epoch's start cycle and merged in — one schedule for the
    /// whole run, installed once.
    pub fn compose(&self) -> FaultPlan {
        let mut storm = self.storm;
        storm.horizon = self.epoch_cycles.max(1);
        let mut master = FaultPlan::new();
        for epoch in 0..self.epochs {
            let seed = sweep::cell_seed(self.seed, &[epoch]);
            let shifted = FaultPlan::generate(seed, &storm).shifted(epoch * self.epoch_cycles);
            master = master.merged(shifted);
        }
        master
    }
}

/// Plain-data snapshot handed to the epoch checker: enough simulator
/// state to express invariants without exposing the simulator itself
/// (which keeps the checker closure trivially replayable during
/// minimization).
#[derive(Debug, Clone, Copy)]
pub struct EpochProbe {
    /// 0-based epoch index just completed.
    pub epoch: u64,
    /// Simulated cycle at the probe (the epoch's end).
    pub cycle: u64,
    /// Packets delivered so far.
    pub delivered: u64,
    /// Packets discarded so far (entry + network).
    pub discarded: u64,
    /// Packets currently parked in retransmit buffers.
    pub recovery_held: u64,
    /// Faults actually inflicted so far.
    pub ledger: damq_core::FaultLedger,
}

/// An invariant check run at every epoch boundary. Return `Err` with a
/// one-line description to flag a violation.
pub type EpochCheck<'a> = dyn Fn(&EpochProbe) -> Result<(), String> + 'a;

/// One detected invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Epoch whose boundary check failed.
    pub epoch: u64,
    /// Simulated cycle at detection.
    pub cycle: u64,
    /// What failed (audit message or checker error).
    pub message: String,
}

/// Outcome of one soak run.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// Epochs fully completed (the violating epoch counts as run).
    pub epochs_run: u64,
    /// Simulated cycles stepped.
    pub cycles_run: u64,
    /// Packets delivered over the whole soak.
    pub delivered: u64,
    /// Packets discarded over the whole soak.
    pub discarded: u64,
    /// Faults the master plan actually inflicted.
    pub ledger: damq_core::FaultLedger,
    /// First violation found, if any (the soak stops there).
    pub violation: Option<Violation>,
}

/// A minimized, self-contained recipe for re-triggering a violation:
/// the traffic/storm seeds live in the config and soak plan, so the
/// reproducer carries only the window and the surviving fault events.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// The soak's storm seed (provenance; the plan below is explicit).
    pub seed: u64,
    /// Cycle window `[start, end)`: `start` is the earliest surviving
    /// fault cycle (0 for an empty plan), `end` the first failing
    /// epoch's boundary.
    pub window: (u64, u64),
    /// Epoch length, so replay probes the same boundaries.
    pub epoch_cycles: u64,
    /// The minimized fault plan.
    pub plan: FaultPlan,
    /// The violation message the reproducer re-triggers.
    pub message: String,
}

impl Reproducer {
    /// Renders the reproducer as a deterministic JSON object (the
    /// payload the chaos bin embeds in its report and crash dump).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::from(self.seed)),
            ("window_start", Json::from(self.window.0)),
            ("window_end", Json::from(self.window.1)),
            ("epoch_cycles", Json::from(self.epoch_cycles)),
            ("message", Json::from(self.message.as_str())),
            (
                "fault_plan",
                Json::Arr(self.plan.events().iter().map(fault_event_json).collect()),
            ),
        ])
    }

    /// Parses a reproducer back out of its [`Reproducer::to_json`] form
    /// (`None` on any missing or ill-typed field) — the path a crash
    /// dump travels to become a replayable plan again.
    pub fn from_json(json: &Json) -> Option<Reproducer> {
        let uint = |key: &str| json.get(key)?.as_f64().map(|v| v as u64);
        let message = match json.get("message")? {
            Json::Str(s) => s.clone(),
            _ => return None,
        };
        let events = match json.get("fault_plan")? {
            Json::Arr(events) => events,
            _ => return None,
        };
        let mut plan = FaultPlan::new();
        for event in events {
            plan = fault_event_from_json(event, plan)?;
        }
        Some(Reproducer {
            seed: uint("seed")?,
            window: (uint("window_start")?, uint("window_end")?),
            epoch_cycles: uint("epoch_cycles")?,
            plan,
            message,
        })
    }
}

/// Parses one [`fault_event_json`] object back onto `plan`.
fn fault_event_from_json(event: &Json, plan: FaultPlan) -> Option<FaultPlan> {
    let uint = |key: &str| event.get(key)?.as_f64().map(|v| v as u64);
    let idx = |key: &str| uint(key).map(|v| v as usize);
    let kind = match event.get("kind")? {
        Json::Str(s) => s.as_str(),
        _ => return None,
    };
    let site = || -> Option<damq_core::FaultSite> {
        Some(damq_core::FaultSite {
            stage: idx("stage")?,
            switch: idx("switch")?,
            input: idx("input")?,
        })
    };
    match kind {
        "dead_slot" => Some(plan.with_dead_slot(uint("cycle")?, site()?, idx("queue_hint")?)),
        "link_down" => Some(plan.with_link_down(uint("cycle")?, site()?, uint("until")?)),
        "corrupt_payload" => Some(plan.with_corruption(uint("cycle")?, idx("source")?)),
        "misroute" => Some(plan.with_misroute(uint("cycle")?, idx("stage")?, idx("switch")?)),
        _ => None,
    }
}

/// Renders one fault event as a JSON object.
fn fault_event_json(event: &FaultEvent) -> Json {
    match *event {
        FaultEvent::DeadSlot {
            cycle,
            site,
            queue_hint,
        } => Json::obj([
            ("kind", Json::from("dead_slot")),
            ("cycle", Json::from(cycle)),
            ("stage", Json::from(site.stage)),
            ("switch", Json::from(site.switch)),
            ("input", Json::from(site.input)),
            ("queue_hint", Json::from(queue_hint)),
        ]),
        FaultEvent::LinkDown { cycle, site, until } => Json::obj([
            ("kind", Json::from("link_down")),
            ("cycle", Json::from(cycle)),
            ("stage", Json::from(site.stage)),
            ("switch", Json::from(site.switch)),
            ("input", Json::from(site.input)),
            ("until", Json::from(until)),
        ]),
        FaultEvent::CorruptPayload { cycle, source } => Json::obj([
            ("kind", Json::from("corrupt_payload")),
            ("cycle", Json::from(cycle)),
            ("source", Json::from(source)),
        ]),
        FaultEvent::Misroute {
            cycle,
            stage,
            switch,
        } => Json::obj([
            ("kind", Json::from("misroute")),
            ("cycle", Json::from(cycle)),
            ("stage", Json::from(stage)),
            ("switch", Json::from(switch)),
        ]),
        // FaultEvent is #[non_exhaustive]; an unknown future class has no
        // structured fields we can name, so render it opaquely.
        other => Json::obj([
            ("kind", Json::from("unknown")),
            ("cycle", Json::from(other.cycle())),
        ]),
    }
}

/// Rebuilds a plan from an event subset (the minimizer's workhorse).
fn plan_from_events(events: &[FaultEvent]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for event in events {
        plan = match *event {
            FaultEvent::DeadSlot {
                cycle,
                site,
                queue_hint,
            } => plan.with_dead_slot(cycle, site, queue_hint),
            FaultEvent::LinkDown { cycle, site, until } => plan.with_link_down(cycle, site, until),
            FaultEvent::CorruptPayload { cycle, source } => plan.with_corruption(cycle, source),
            FaultEvent::Misroute {
                cycle,
                stage,
                switch,
            } => plan.with_misroute(cycle, stage, switch),
            // A future fault class we cannot reconstruct is kept out of
            // the minimized plan; if it mattered, the violation stops
            // reproducing and the deletion is rejected upstream anyway.
            _ => plan,
        };
    }
    plan
}

/// Steps `sim` through epochs of `epoch_cycles` until `end_cycle`,
/// probing the audits and `check` at every boundary. Returns the first
/// violation, or `None` if the window completes clean.
fn drive<S: TelemetrySink<Event>>(
    sim: &mut NetworkSim<damq_core::AnyBuffer, S>,
    epoch_cycles: u64,
    end_cycle: u64,
    check: &EpochCheck<'_>,
    on_cycle: &mut dyn FnMut(),
) -> (u64, Option<Violation>) {
    let epoch_cycles = epoch_cycles.max(1);
    let mut cycles_run = 0;
    let mut epoch = 0;
    while cycles_run < end_cycle {
        let stride = epoch_cycles.min(end_cycle - cycles_run);
        for _ in 0..stride {
            sim.step();
            on_cycle();
        }
        cycles_run += stride;
        let probe = EpochProbe {
            epoch,
            cycle: sim.cycle(),
            delivered: sim.metrics().delivered(),
            discarded: sim.metrics().discarded(),
            recovery_held: sim.recovery_held() as u64,
            ledger: sim.fault_ledger(),
        };
        let verdict = sim
            .audit()
            .map_err(|e| format!("audit failed: {e}"))
            .and_then(|()| check(&probe));
        if let Err(message) = verdict {
            return (
                cycles_run,
                Some(Violation {
                    epoch,
                    cycle: probe.cycle,
                    message,
                }),
            );
        }
        epoch += 1;
    }
    (cycles_run, None)
}

/// Runs one full soak: composes the master plan, steps every epoch with
/// the given telemetry recorder attached as the simulation's sink, and
/// re-audits (built-in audits + `check`) at each epoch boundary. Stops
/// at the first violation.
///
/// `on_cycle` fires once per simulated cycle — the watchdog heartbeat
/// when driven from the isolation harness.
///
/// # Errors
///
/// Returns [`NetworkError`] if the configuration is rejected.
pub fn run_soak(
    config: NetworkConfig,
    soak: &SoakPlan,
    recorder: SharedRecorder<Event>,
    check: &EpochCheck<'_>,
    mut on_cycle: impl FnMut(),
) -> Result<SoakOutcome, NetworkError> {
    let mut sim = NetworkSim::with_sink(config, recorder)?;
    sim.install_fault_plan(soak.compose());
    let (cycles_run, violation) = drive(
        &mut sim,
        soak.epoch_cycles,
        soak.horizon(),
        check,
        &mut on_cycle,
    );
    Ok(SoakOutcome {
        epochs_run: violation
            .as_ref()
            .map_or(soak.epochs, |v| v.epoch + 1)
            .min(soak.epochs),
        cycles_run,
        delivered: sim.metrics().delivered(),
        discarded: sim.metrics().discarded(),
        ledger: sim.fault_ledger(),
        violation,
    })
}

/// Replays `plan` over `[0, end_cycle)` with fresh traffic from
/// `config` and returns the first violation, if any.
fn violates(
    config: NetworkConfig,
    plan: &FaultPlan,
    epoch_cycles: u64,
    end_cycle: u64,
    check: &EpochCheck<'_>,
) -> Option<Violation> {
    let mut sim =
        NetworkSim::with_faults(config, plan.clone()).expect("config validated by the first run");
    drive(&mut sim, epoch_cycles, end_cycle, check, &mut || ()).1
}

/// Shrinks a violating soak to a [`Reproducer`]: truncates the cycle
/// window to the first failing epoch's boundary, then greedily deletes
/// fault events — re-running the window without each event, keeping
/// every deletion under which the violation still fires — until a full
/// pass removes nothing (or the pass cap is hit).
///
/// Greedy one-at-a-time elimination is quadratic in the worst case but
/// the plans here are storm-sized (tens of events), each probe run is a
/// few thousand cycles, and every probe is deterministic — the same
/// inputs always minimize to the same reproducer.
///
/// # Panics
///
/// Panics if the violation does not reproduce against the composed plan
/// over the truncated window — a checker that is not a pure function of
/// the probe cannot be minimized.
pub fn minimize(
    config: NetworkConfig,
    soak: &SoakPlan,
    violation: &Violation,
    check: &EpochCheck<'_>,
) -> Reproducer {
    let end_cycle = (violation.epoch + 1) * soak.epoch_cycles.max(1);
    // Events due after the window cannot influence it; drop them wholesale.
    let mut events: Vec<FaultEvent> = soak
        .compose()
        .events()
        .iter()
        .copied()
        .filter(|e| e.cycle() < end_cycle)
        .collect();
    violates(
        config,
        &plan_from_events(&events),
        soak.epoch_cycles,
        end_cycle,
        check,
    )
    .expect("violation must reproduce deterministically over its own window");

    const MAX_PASSES: usize = 8;
    for _ in 0..MAX_PASSES {
        let mut removed_any = false;
        let mut index = 0;
        while index < events.len() {
            let mut candidate = events.clone();
            candidate.remove(index);
            if violates(
                config,
                &plan_from_events(&candidate),
                soak.epoch_cycles,
                end_cycle,
                check,
            )
            .is_some()
            {
                events = candidate;
                removed_any = true;
                // Do not advance: the element now at `index` is untried.
            } else {
                index += 1;
            }
        }
        if !removed_any {
            break;
        }
    }

    let plan = plan_from_events(&events);
    // One final probe against the minimized plan, so the reproducer
    // carries the exact message its own replay re-triggers (deletions
    // can change counts embedded in the text, e.g. "3 drops" -> "1").
    let confirmed = violates(config, &plan, soak.epoch_cycles, end_cycle, check)
        .expect("every kept deletion preserved the violation");
    let start = plan.events().first().map_or(0, FaultEvent::cycle);
    Reproducer {
        seed: soak.seed,
        window: (start, end_cycle),
        epoch_cycles: soak.epoch_cycles,
        plan,
        message: confirmed.message,
    }
}

/// Verifies a reproducer by replaying it: fresh simulation, the
/// minimized plan, the same epoch boundaries. Returns the re-triggered
/// violation, or `None` if the reproducer went stale.
pub fn replay(
    config: NetworkConfig,
    reproducer: &Reproducer,
    check: &EpochCheck<'_>,
) -> Option<Violation> {
    violates(
        config,
        &reproducer.plan,
        reproducer.epoch_cycles,
        reproducer.window.1,
        check,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use damq_core::BufferKind;
    use damq_net::RecoveryConfig;
    use damq_switch::FlowControl;

    fn config() -> NetworkConfig {
        NetworkConfig::new(16, 4)
            .slots_per_buffer(4)
            .buffer_kind(BufferKind::Damq)
            .flow_control(FlowControl::Discarding)
            .recovery(RecoveryConfig::enabled())
            .offered_load(0.5)
            .seed(41)
    }

    fn soak() -> SoakPlan {
        SoakPlan {
            seed: 0xC4A05,
            epochs: 4,
            epoch_cycles: 200,
            storm: FaultSpec {
                dead_slot_fraction: 0.02,
                link_flaps: 2,
                flap_duration: 30,
                corrupt_packets: 1,
                misroutes: 1,
                ..FaultSpec::fault_free(2, 4, 4, 16, 4, 200)
            },
        }
    }

    #[test]
    fn composed_plan_is_sorted_and_covers_every_epoch() {
        let soak = soak();
        let plan = soak.compose();
        assert!(!plan.is_empty());
        let cycles: Vec<u64> = plan.events().iter().map(FaultEvent::cycle).collect();
        let mut sorted = cycles.clone();
        sorted.sort_unstable();
        assert_eq!(cycles, sorted, "merged storms stay cycle-ordered");
        assert!(
            cycles.iter().any(|&c| c >= 3 * soak.epoch_cycles),
            "the last epoch draws its own storm"
        );
        assert_eq!(plan, soak.compose(), "composition is deterministic");
    }

    #[test]
    fn clean_soak_runs_every_epoch_and_stays_audited() {
        let mut heartbeats = 0u64;
        let outcome = run_soak(
            config(),
            &soak(),
            SharedRecorder::new(64),
            &|_| Ok(()),
            || heartbeats += 1,
        )
        .expect("config is valid");
        assert!(outcome.violation.is_none());
        assert_eq!(outcome.epochs_run, 4);
        assert_eq!(outcome.cycles_run, 800);
        assert_eq!(heartbeats, 800, "one heartbeat per simulated cycle");
        assert!(outcome.delivered > 0);
        assert!(outcome.ledger.dropped() + outcome.ledger.slots_killed > 0);
    }

    #[test]
    fn injected_violation_minimizes_to_a_replayable_reproducer() {
        // The mutation: declare any killed slot a violation. The full
        // storm schedules flaps, corruption and misroutes too; a correct
        // minimizer strips everything but the dead slots the checker
        // actually keys on. (Corruption would not work as the mutation
        // here: with recovery enabled, corrupted payloads are repaired
        // and redelivered, so `corrupt_dropped` never rises.)
        let check = |probe: &EpochProbe| {
            if probe.ledger.slots_killed > 0 {
                Err(format!(
                    "seeded mutation: {} slots killed by cycle {}",
                    probe.ledger.slots_killed, probe.cycle
                ))
            } else {
                Ok(())
            }
        };
        let outcome = run_soak(config(), &soak(), SharedRecorder::new(64), &check, || ())
            .expect("config is valid");
        let violation = outcome.violation.expect("the seeded mutation fires");

        let full_events = soak().compose().events().len();
        let rep = minimize(config(), &soak(), &violation, &check);
        assert!(
            rep.plan.events().len() < full_events,
            "minimization must shrink the plan ({} -> {})",
            full_events,
            rep.plan.events().len()
        );
        assert!(
            rep.plan
                .events()
                .iter()
                .all(|e| matches!(e, FaultEvent::DeadSlot { .. })),
            "only the faults the checker keys on survive: {:?}",
            rep.plan.events()
        );
        assert_eq!(
            rep.plan.events().len(),
            1,
            "one dead slot suffices to re-trigger the mutation"
        );
        assert!(rep.window.1 <= soak().horizon());
        assert!(rep.window.0 < rep.window.1);

        let again = replay(config(), &rep, &check).expect("reproducer re-triggers");
        assert_eq!(again.message, rep.message);

        let json = rep.to_json().render();
        assert!(json.contains("\"fault_plan\""));
        assert!(json.contains("dead_slot"));
    }

    #[test]
    fn reproducer_json_round_trips_through_the_parser() {
        let rep = Reproducer {
            seed: 7,
            window: (10, 400),
            epoch_cycles: 200,
            plan: FaultPlan::new()
                .with_dead_slot(
                    10,
                    damq_core::FaultSite {
                        stage: 0,
                        switch: 1,
                        input: 2,
                    },
                    3,
                )
                .with_link_down(
                    20,
                    damq_core::FaultSite {
                        stage: 1,
                        switch: 0,
                        input: 0,
                    },
                    50,
                )
                .with_corruption(30, 5)
                .with_misroute(40, 1, 2),
            message: "demo".to_owned(),
        };
        let parsed = Json::parse(&rep.to_json().render()).expect("reproducer JSON parses");
        let events = match parsed.get("fault_plan") {
            Some(Json::Arr(events)) => events.clone(),
            other => panic!("fault_plan must be an array, got {other:?}"),
        };
        assert_eq!(events.len(), 4);
        let kinds: Vec<&str> = events
            .iter()
            .map(|e| match e.get("kind") {
                Some(Json::Str(s)) => s.as_str(),
                _ => "?",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["dead_slot", "link_down", "corrupt_payload", "misroute"]
        );
        let back = Reproducer::from_json(&parsed).expect("reproducer parses back");
        assert_eq!(back.seed, rep.seed);
        assert_eq!(back.window, rep.window);
        assert_eq!(back.epoch_cycles, rep.epoch_cycles);
        assert_eq!(back.message, rep.message);
        assert_eq!(
            back.plan, rep.plan,
            "the fault plan survives the round trip"
        );
    }
}
