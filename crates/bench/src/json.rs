//! A hand-rolled JSON value type and report writer (std-only — the crates
//! registry is unreachable from CI, so no serde).
//!
//! Every regeneration harness emits, alongside its fixed-width text table,
//! a machine-readable record of the sweep at `results/json/<name>.json`:
//! the grid coordinates of every cell, the raw [`Measurement`] fields,
//! multi-seed aggregates where the harness runs them, and provenance
//! metadata (worker count, wall-clock, cell count). Downstream tooling —
//! plots, regression diffs, the perf trajectory the ROADMAP asks for —
//! consumes these files instead of scraping the text tables.
//!
//! Serialization is deterministic: object keys keep insertion order,
//! floats render through Rust's shortest-roundtrip `Display`, and no
//! timestamps enter the [`Report::body`] (wall-clock lives in the
//! non-deterministic envelope that [`Report::write`] adds) — which is what
//! lets the determinism test compare 1-worker and N-worker runs byte for
//! byte.
//!
//! # Examples
//!
//! ```
//! use damq_bench::json::Json;
//!
//! let cell = Json::obj([
//!     ("buffer", Json::from("DAMQ")),
//!     ("load", Json::from(0.5)),
//!     ("delivered", Json::from(0.497)),
//! ]);
//! assert_eq!(
//!     cell.render(),
//!     r#"{"buffer":"DAMQ","load":0.5,"delivered":0.497}"#
//! );
//! ```

use std::io;
use std::path::PathBuf;
use std::time::Instant;

use damq_markov::DiscardPoint;
use damq_net::{Measurement, SaturationResult};
use damq_telemetry::Profiler;

use crate::sweep::{Aggregate, CellOutcome, SweepProfile};

/// A JSON value with deterministic, insertion-ordered serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A double. Non-finite values serialize as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys serialize in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        i64::try_from(v).map_or(Json::Num(v as f64), Json::Int)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Error from [`Json::parse`]: byte offset and a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

impl Json {
    /// Builds an object from `(key, value)` pairs, keeping their order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Parses a JSON document (the inverse of [`Json::render`] /
    /// [`Json::render_pretty`]); object key order is preserved.
    ///
    /// Numbers without a fraction or exponent that fit an `i64` parse as
    /// [`Json::Int`]; everything else numeric parses as [`Json::Num`] —
    /// matching what the writer emits, so `parse(render(v)) == v` for
    /// finite values.
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] on malformed input or trailing garbage.
    ///
    /// # Examples
    ///
    /// ```
    /// use damq_bench::json::Json;
    ///
    /// let v = Json::parse(r#"{"a":[1,2.5,"x"],"b":null}"#).unwrap();
    /// assert_eq!(v.render(), r#"{"a":[1,2.5,"x"],"b":null}"#);
    /// ```
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object (`None` for non-objects or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of an [`Json::Int`] or [`Json::Num`], widened to
    /// `f64` (`None` otherwise).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Builds a sweep cell: grid `coords` first, then the fields of
    /// `record` flattened in (a non-object `record` lands under
    /// `"value"`).
    ///
    /// # Examples
    ///
    /// ```
    /// use damq_bench::json::Json;
    ///
    /// let cell = Json::cell(
    ///     [("buffer", Json::from("FIFO"))],
    ///     Json::obj([("delivered", Json::from(0.25))]),
    /// );
    /// assert_eq!(cell.render(), r#"{"buffer":"FIFO","delivered":0.25}"#);
    /// ```
    pub fn cell<K: Into<String>>(
        coords: impl IntoIterator<Item = (K, Json)>,
        record: Json,
    ) -> Json {
        let mut pairs: Vec<(String, Json)> =
            coords.into_iter().map(|(k, v)| (k.into(), v)).collect();
        match record {
            Json::Obj(fields) => pairs.extend(fields),
            other => pairs.push(("value".to_owned(), other)),
        }
        Json::Obj(pairs)
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Serializes with two-space indentation — the format of the
    /// checked-in `results/json/` files (readable diffs).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(v) => write_f64(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            _ => self.write_into(out),
        }
    }
}

/// Recursive-descent parser over the raw bytes (JSON structure is ASCII;
/// string contents pass through as UTF-8).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates (emitted only for astral chars,
                            // which the writer never escapes) map to the
                            // replacement character rather than failing.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 character starting here.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("empty string tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's Display for f64 is shortest-roundtrip and never emits an
        // exponent, so the output is always a valid JSON number.
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One [`Measurement`] as a JSON object, fields in
/// [`Measurement::FIELD_NAMES`] order.
pub fn measurement_json(m: &Measurement) -> Json {
    Json::obj(m.fields().map(|(name, value)| (name, Json::from(value))))
}

/// One Markov-analysis [`DiscardPoint`] as a JSON object.
pub fn discard_point_json(p: &DiscardPoint) -> Json {
    Json::obj([
        ("discard_probability", Json::from(p.discard_probability)),
        ("throughput", Json::from(p.throughput)),
        ("mean_occupancy", Json::from(p.mean_occupancy)),
        ("mean_wait_cycles", Json::from(p.mean_wait_cycles)),
        ("states", Json::from(p.states)),
        ("iterations", Json::from(p.iterations)),
    ])
}

/// One [`SaturationResult`] as a JSON object (the full measurement taken
/// just above the saturation point is nested under `at_saturation`).
pub fn saturation_json(s: &SaturationResult) -> Json {
    Json::obj([
        ("throughput", Json::from(s.throughput)),
        (
            "saturated_latency_clocks",
            Json::from(s.saturated_latency_clocks),
        ),
        ("probes", Json::from(s.probes)),
        ("at_saturation", measurement_json(&s.at_saturation)),
    ])
}

/// A set of per-metric [`Aggregate`]s (as produced by
/// [`crate::sweep::aggregate_measurements`]) as a JSON object:
/// `{"metric": {"n": .., "mean": .., "stddev": .., "ci95": ..}, ...}`.
pub fn aggregates_json(aggs: &[(&'static str, Aggregate)]) -> Json {
    Json::obj(aggs.iter().map(|&(name, a)| {
        (
            name,
            Json::obj([
                ("n", Json::from(a.n)),
                ("mean", Json::from(a.mean)),
                ("stddev", Json::from(a.stddev)),
                ("ci95", Json::from(a.ci95)),
            ]),
        )
    }))
}

/// Summarises a batch of [`CellOutcome`]s into the `robustness` report
/// section: outcome counts plus one `incidents` entry per non-`ok` cell
/// (index into the batch, outcome tag, panic message / attempt count).
///
/// The section is deterministic — outcomes derive from seeded simulation
/// work, not wall-clock — so [`Report::body`] includes it when attached
/// via [`Report::set_robustness`].
///
/// # Examples
///
/// ```
/// use damq_bench::json::robustness_json;
/// use damq_bench::sweep::CellOutcome;
///
/// let section = robustness_json(&[
///     CellOutcome::Ok,
///     CellOutcome::TimedOut,
/// ]);
/// assert!(section.render().contains(r#""timed_out":1"#));
/// ```
pub fn robustness_json(outcomes: &[CellOutcome]) -> Json {
    let count = |label: &str| -> usize { outcomes.iter().filter(|o| o.label() == label).count() };
    let incidents: Vec<Json> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| *o != &CellOutcome::Ok)
        .map(|(i, o)| {
            let mut fields = vec![
                ("index".to_owned(), Json::from(i)),
                ("outcome".to_owned(), Json::from(o.label())),
            ];
            match o {
                CellOutcome::Retried { attempts } => {
                    fields.push(("attempts".to_owned(), Json::from(u64::from(*attempts))));
                }
                CellOutcome::Panicked { message } => {
                    fields.push(("message".to_owned(), Json::from(message.as_str())));
                }
                CellOutcome::Ok | CellOutcome::TimedOut => {}
            }
            Json::Obj(fields)
        })
        .collect();
    Json::obj([
        ("cells", Json::from(outcomes.len())),
        ("ok", Json::from(count("ok"))),
        ("retried", Json::from(count("retried"))),
        ("panicked", Json::from(count("panicked"))),
        ("timed_out", Json::from(count("timed_out"))),
        ("incidents", Json::Arr(incidents)),
    ])
}

/// Accumulates one harness run and writes `results/json/<name>.json`.
///
/// The deterministic part of the record (experiment name, schema version,
/// metadata, cells) is available as [`Report::body`]; [`Report::write`]
/// wraps it in a provenance envelope (worker count, wall-clock seconds)
/// that is *expected* to vary between runs and is therefore excluded from
/// determinism comparisons.
///
/// # Examples
///
/// ```
/// use damq_bench::json::{Json, Report};
///
/// let mut report = Report::new("doc_example");
/// report.meta("traffic", Json::from("uniform"));
/// report.push_cell(Json::obj([
///     ("load", Json::from(0.5)),
///     ("delivered", Json::from(0.497)),
/// ]));
/// let body = report.body().render();
/// assert!(body.contains(r#""experiment":"doc_example""#));
/// assert!(body.contains(r#""cells":"#));
/// ```
#[derive(Debug)]
pub struct Report {
    name: String,
    meta: Vec<(String, Json)>,
    cells: Vec<Json>,
    robustness: Option<Json>,
    telemetry: Option<Json>,
    started: Instant,
}

/// Schema version stamped into every JSON report; bump on breaking layout
/// changes so downstream consumers can dispatch.
pub const SCHEMA_VERSION: u32 = 1;

impl Report {
    /// Starts an empty report for experiment `name`. The wall clock starts
    /// now, so construct the report **before** launching the sweep if the
    /// `run.wall_clock_secs` provenance should cover the experiment itself.
    pub fn new(name: &str) -> Report {
        Report {
            name: name.to_owned(),
            meta: Vec::new(),
            cells: Vec::new(),
            robustness: None,
            telemetry: None,
            started: Instant::now(),
        }
    }

    /// Records an experiment-level metadata entry (topology, window
    /// lengths, …).
    pub fn meta(&mut self, key: &str, value: Json) {
        self.meta.push((key.to_owned(), value));
    }

    /// Appends one grid cell (coordinates + measured fields).
    pub fn push_cell(&mut self, cell: Json) {
        self.cells.push(cell);
    }

    /// Number of cells recorded so far.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Attaches a `robustness` section (see [`robustness_json`]) recording
    /// how the sweep's cells fared under the self-healing harness.
    ///
    /// Cell outcomes are deterministic (panics and cycle-budget timeouts
    /// reproduce from the seeds), so the section lives in the
    /// deterministic [`Report::body`], unlike the timing telemetry.
    pub fn set_robustness(&mut self, robustness: Json) {
        self.robustness = Some(robustness);
    }

    /// Attaches a profiling `telemetry` section to the report.
    ///
    /// Timings vary run to run, so the section is emitted by
    /// [`Report::write`] next to the `run` envelope and stays out of the
    /// deterministic [`Report::body`].
    pub fn set_telemetry(&mut self, telemetry: Json) {
        self.telemetry = Some(telemetry);
    }

    /// Builds the `telemetry` section from a sweep's wall-clock profile
    /// and an optional phase [`Profiler`], then attaches it with
    /// [`Report::set_telemetry`].
    ///
    /// The section records where the time went: worker count, sweep wall
    /// time, summed per-cell time and the implied parallel speed-up, the
    /// slowest cell, the full per-cell timing vector (cell order — the
    /// same order as `cells` in the body), and per-phase seconds from the
    /// profiler.
    pub fn telemetry_from_profile(&mut self, profile: &SweepProfile, profiler: &Profiler) {
        let slowest = profile.slowest_cell().map_or(Json::Null, |(i, secs)| {
            Json::obj([("index", Json::from(i)), ("secs", Json::from(secs))])
        });
        let mut section = vec![
            ("workers".to_owned(), Json::from(profile.workers)),
            ("sweep_secs".to_owned(), Json::from(profile.total_secs)),
            (
                "cell_secs_sum".to_owned(),
                Json::from(profile.cell_secs_sum()),
            ),
            ("speedup".to_owned(), Json::from(profile.speedup())),
            ("slowest_cell".to_owned(), slowest),
            (
                "per_cell_secs".to_owned(),
                Json::Arr(
                    profile
                        .per_cell_secs
                        .iter()
                        .map(|&s| Json::from(s))
                        .collect(),
                ),
            ),
        ];
        if !profile.per_cell_cycles.is_empty() {
            section.push((
                "cycles_per_sec".to_owned(),
                Json::from(profile.cycles_per_sec()),
            ));
            section.push((
                "per_cell_cycles_per_sec".to_owned(),
                Json::Arr(
                    profile
                        .per_cell_cycles_per_sec()
                        .into_iter()
                        .map(Json::from)
                        .collect(),
                ),
            ));
        }
        if !profiler.phases().is_empty() {
            section.push((
                "phases".to_owned(),
                Json::obj(
                    profiler
                        .phases()
                        .iter()
                        .map(|(name, d)| (*name, Json::from(d.as_secs_f64()))),
                ),
            ));
        }
        self.set_telemetry(Json::Obj(section));
    }

    /// The deterministic record: experiment name, schema version,
    /// metadata and cells — everything except the run-varying provenance
    /// envelope.
    pub fn body(&self) -> Json {
        let mut pairs = vec![
            ("experiment".to_owned(), Json::from(self.name.as_str())),
            (
                "schema_version".to_owned(),
                Json::from(u64::from(SCHEMA_VERSION)),
            ),
            ("meta".to_owned(), Json::Obj(self.meta.clone())),
            ("cell_count".to_owned(), Json::from(self.cells.len())),
            ("cells".to_owned(), Json::Arr(self.cells.clone())),
        ];
        if let Some(robustness) = &self.robustness {
            pairs.push(("robustness".to_owned(), robustness.clone()));
        }
        Json::Obj(pairs)
    }

    /// Writes the report to `<results dir>/json/<name>.json` and returns
    /// the path.
    ///
    /// The results directory is `results` relative to the working
    /// directory, or `$DAMQ_RESULTS_DIR` if set. The file is the
    /// [`Report::body`] plus a `run` object carrying worker count and
    /// wall-clock seconds.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the file write.
    pub fn write(&self) -> io::Result<PathBuf> {
        let mut doc = match self.body() {
            Json::Obj(pairs) => pairs,
            _ => unreachable!("body is always an object"),
        };
        doc.push((
            "run".to_owned(),
            Json::obj([
                ("workers", Json::from(crate::sweep::worker_count())),
                (
                    "wall_clock_secs",
                    Json::from(self.started.elapsed().as_secs_f64()),
                ),
            ]),
        ));
        if let Some(telemetry) = &self.telemetry {
            doc.push(("telemetry".to_owned(), telemetry.clone()));
        }
        let dir = std::env::var("DAMQ_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
        let dir = PathBuf::from(dir).join("json");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, Json::Obj(doc).render_pretty())?;
        Ok(path)
    }

    /// [`Report::write`], reporting the destination (or the error) on
    /// stderr so stdout stays a clean table for `> results/<name>.txt`
    /// redirection.
    pub fn write_and_announce(&self) {
        match self.write() {
            Ok(path) => eprintln!("wrote {}", path.display()), // lint: allow — harness status channel
            Err(e) => eprintln!("warning: could not write JSON report: {e}"), // lint: allow — harness status channel
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(-3i64).render(), "-3");
        assert_eq!(Json::from(0.25).render(), "0.25");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        assert_eq!(
            Json::from("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let o = Json::obj([("z", Json::from(1i64)), ("a", Json::from(2i64))]);
        assert_eq!(o.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let o = Json::obj([
            ("name", Json::from("x")),
            ("cells", Json::Arr(vec![Json::from(1i64), Json::from(2i64)])),
            ("empty", Json::Arr(Vec::new())),
        ]);
        assert_eq!(
            o.render_pretty(),
            "{\n  \"name\": \"x\",\n  \"cells\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}\n"
        );
    }

    #[test]
    fn large_u64_survives() {
        assert_eq!(
            Json::from(u64::MAX).render(),
            format!("{}", u64::MAX as f64)
        );
        assert_eq!(Json::from(42u64).render(), "42");
    }

    #[test]
    fn report_body_has_no_wall_clock() {
        let mut r = Report::new("t");
        r.push_cell(Json::from(1i64));
        let body = r.body().render();
        assert!(!body.contains("wall_clock"));
        assert!(body.contains(r#""cell_count":1"#));
    }

    #[test]
    fn telemetry_section_stays_out_of_the_body() {
        let mut r = Report::new("t");
        let profile = SweepProfile {
            per_cell_secs: vec![0.25, 1.5],
            per_cell_cycles: Vec::new(),
            total_secs: 1.75,
            workers: 2,
        }
        .with_cycles(vec![1_000, 12_000]);
        let mut profiler = Profiler::new();
        profiler.add("sweep", std::time::Duration::from_millis(1750));
        r.telemetry_from_profile(&profile, &profiler);
        // Deterministic body is untouched...
        assert!(!r.body().render().contains("telemetry"));
        // ...but the section itself records the profile faithfully.
        let section = r.telemetry.as_ref().expect("telemetry attached").render();
        assert!(section.contains(r#""workers":2"#));
        assert!(section.contains(r#""sweep_secs":1.75"#));
        assert!(section.contains(r#""cell_secs_sum":1.75"#));
        assert!(section.contains(r#""slowest_cell":{"index":1,"secs":1.5}"#));
        assert!(section.contains(r#""per_cell_secs":[0.25,1.5]"#));
        // 13k cycles over 1.75 summed seconds; 1k/0.25 and 12k/1.5 per cell.
        assert!(section.contains(r#""cycles_per_sec":7428.5714"#));
        assert!(section.contains(r#""per_cell_cycles_per_sec":[4000,8000]"#));
        assert!(section.contains(r#""phases":{"sweep":1.75}"#));
    }

    #[test]
    fn robustness_section_lands_in_the_deterministic_body() {
        let mut r = Report::new("t");
        r.push_cell(Json::from(1i64));
        let outcomes = [
            CellOutcome::Ok,
            CellOutcome::Retried { attempts: 3 },
            CellOutcome::Panicked {
                message: "boom".to_owned(),
            },
            CellOutcome::TimedOut,
        ];
        r.set_robustness(robustness_json(&outcomes));
        let body = r.body().render();
        assert!(body
            .contains(r#""robustness":{"cells":4,"ok":1,"retried":1,"panicked":1,"timed_out":1"#));
        assert!(body.contains(r#"{"index":1,"outcome":"retried","attempts":3}"#));
        assert!(body.contains(r#"{"index":2,"outcome":"panicked","message":"boom"}"#));
        assert!(body.contains(r#"{"index":3,"outcome":"timed_out"}"#));
    }

    #[test]
    fn all_ok_robustness_has_no_incidents() {
        let section = robustness_json(&[CellOutcome::Ok, CellOutcome::Ok]);
        assert_eq!(
            section.render(),
            r#"{"cells":2,"ok":2,"retried":0,"panicked":0,"timed_out":0,"incidents":[]}"#
        );
    }

    #[test]
    fn parse_round_trips_render() {
        let doc = Json::obj([
            ("name", Json::from("sim_throughput")),
            ("ok", Json::from(true)),
            ("n", Json::from(42i64)),
            ("rate", Json::from(1234.5)),
            (
                "cells",
                Json::Arr(vec![Json::Null, Json::from(-7i64), Json::from("x\"y")]),
            ),
            ("empty_obj", Json::obj::<&str>([])),
            ("empty_arr", Json::Arr(Vec::new())),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_reports_errors_with_offsets() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let e = Json::parse("nul").unwrap_err();
        assert_eq!(e.offset, 0);
    }

    #[test]
    fn parse_handles_escapes_and_exponents() {
        let v = Json::parse(r#"{"s":"a\nA\\","e":2.5e3,"neg":-0.125}"#).unwrap();
        assert_eq!(v.get("s"), Some(&Json::Str("a\nA\\".to_owned())));
        assert_eq!(v.get("e").and_then(Json::as_f64), Some(2500.0));
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-0.125));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn get_and_as_f64_cover_non_matching_shapes() {
        assert_eq!(Json::Null.get("k"), None);
        assert_eq!(Json::from("s").as_f64(), None);
        assert_eq!(Json::from(3i64).as_f64(), Some(3.0));
    }

    #[test]
    fn empty_profile_yields_null_slowest_cell() {
        let mut r = Report::new("t");
        let profile = SweepProfile {
            per_cell_secs: Vec::new(),
            per_cell_cycles: Vec::new(),
            total_secs: 0.0,
            workers: 1,
        };
        r.telemetry_from_profile(&profile, &Profiler::new());
        let section = r.telemetry.as_ref().expect("telemetry attached").render();
        assert!(section.contains(r#""slowest_cell":null"#));
        assert!(!section.contains("phases"));
        // No cycle counts declared: the throughput keys stay out entirely.
        assert!(!section.contains("cycles_per_sec"));
    }
}
