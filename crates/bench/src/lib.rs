//! Shared infrastructure for the table/figure regeneration harnesses.
//!
//! Each binary in `src/bin/` reproduces one table or figure from the
//! paper (or one extension experiment); this library holds everything
//! they share:
//!
//! - [`sweep`] — the parallel experiment-sweep engine: declarative grids
//!   of cells fanned out across cores with deterministic, thread-count-
//!   independent results, plus multi-seed aggregation (mean / stddev /
//!   95% CI) and the self-healing isolation layer
//!   ([`sweep::run_isolated`]) that contains panics, enforces cycle
//!   budgets and retries flaky cells.
//! - [`json`] — a hand-rolled JSON writer; every harness emits
//!   `results/json/<experiment>.json` alongside its text table.
//! - [`resume`] — per-cell checkpointing to an append-only sidecar so an
//!   interrupted sweep resumes from its last completed cell.
//! - [`chaos`] — the chaos soak engine: composed per-epoch fault storms,
//!   per-epoch invariant audits, and reproducer minimization for the
//!   `chaos_soak` binary.
//! - [`timing`] — a std-only micro-benchmark harness for the `benches/`
//!   targets.
//! - Paper-style number formatting ([`fmt_prob`]) and fixed-width table
//!   rendering ([`render_table`]).
//!
//! See `docs/EXPERIMENTS_GUIDE.md` for the map from binaries to paper
//! tables, their grids, their JSON schemas, and regeneration commands.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chaos;
pub mod json;
pub mod resume;
pub mod sweep;
pub mod timing;

/// Formats a probability the way the paper's Table 2 does: `0+` for
/// positive-but-negligible values (rounds to zero at three decimals),
/// otherwise three decimals.
///
/// The accepted domain is `0.0..=1.0` (a probability). Negative inputs
/// are a caller bug: they trip a debug assertion, and in release builds
/// they clamp to `"0"` rather than formatting nonsense like `"0+"` or
/// `"-0.100"`.
///
/// # Panics
///
/// Debug builds panic on a negative input.
///
/// # Examples
///
/// ```
/// use damq_bench::fmt_prob;
///
/// assert_eq!(fmt_prob(0.0), "0");
/// assert_eq!(fmt_prob(0.0001), "0+");
/// assert_eq!(fmt_prob(0.074), "0.074");
/// ```
pub fn fmt_prob(p: f64) -> String {
    debug_assert!(p >= 0.0, "fmt_prob takes a probability, got {p}");
    if p <= 0.0 {
        "0".to_owned()
    } else if p < 0.0005 {
        "0+".to_owned()
    } else {
        format!("{p:.3}")
    }
}

/// Renders rows as a fixed-width text table with a header row and a rule.
///
/// An empty `header` renders as an empty string (there are no columns to
/// lay out — and no rows can exist, since every row must match the header
/// width).
///
/// # Panics
///
/// Panics if rows have differing lengths.
///
/// # Examples
///
/// ```
/// use damq_bench::render_table;
///
/// let t = render_table(
///     &["buffer", "rate"],
///     &[vec!["FIFO".into(), "0.074".into()]],
/// );
/// assert!(t.contains("FIFO"));
/// assert_eq!(render_table(&[], &[]), "");
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    for row in rows {
        assert_eq!(row.len(), cols, "all rows must match the header width");
    }
    if cols == 0 {
        return String::new();
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>w$}"));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// The traffic levels of the paper's Table 2, as fractions of link capacity.
pub const TABLE2_TRAFFIC: [f64; 8] = [0.25, 0.50, 0.75, 0.80, 0.85, 0.90, 0.95, 0.99];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_prob_thresholds() {
        assert_eq!(fmt_prob(0.0), "0");
        assert_eq!(fmt_prob(0.0004), "0+");
        assert_eq!(fmt_prob(0.0005), "0.001");
        assert_eq!(fmt_prob(0.242), "0.242");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "probability"))]
    fn fmt_prob_rejects_negatives_in_debug_and_clamps_in_release() {
        // Debug: the assertion fires. Release: negative clamps to "0", not
        // the old nonsense "0+".
        assert_eq!(fmt_prob(-0.1), "0");
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["a", "bb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["longer".into(), "z".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn empty_header_renders_empty() {
        // Regression: this used to underflow `2 * (cols - 1)` and panic.
        assert_eq!(render_table(&[], &[]), "");
    }

    #[test]
    fn single_column_has_no_separator_padding() {
        let t = render_table(&["only"], &[vec!["x".into()]]);
        assert_eq!(t, "only\n----\n   x\n");
    }

    #[test]
    #[should_panic(expected = "match the header")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a"], &[vec!["x".into(), "y".into()]]);
    }

    #[test]
    #[should_panic(expected = "match the header")]
    fn empty_header_with_nonempty_rows_panics() {
        let _ = render_table(&[], &[vec!["x".into()]]);
    }
}
