//! Checkpoint/resume for sweep harnesses: never lose a finished cell.
//!
//! Long fault-degradation sweeps record every completed cell to a sidecar
//! file — `results/json/<name>.cells.jsonl`, one `{"key": .., "cell": ..}`
//! object per line — *as the cell finishes*, under a mutex, so a crash or
//! interrupt loses at most the cells still in flight. A harness launched
//! with `--resume` reloads the sidecar and re-runs only the missing cells;
//! a fresh launch truncates it.
//!
//! The sidecar is append-only JSONL precisely because appends are the only
//! write that survives being interrupted halfway: on reload, a torn final
//! line fails to parse and is dropped, and every complete line before it
//! is kept.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::Json;

/// The set of already-completed sweep cells, backed by an append-only
/// JSONL sidecar file.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    done: Mutex<BTreeMap<String, Json>>,
}

/// The results directory honoured by the JSON reports (`$DAMQ_RESULTS_DIR`
/// or `results`), with the `json` subdirectory appended.
fn results_json_dir() -> PathBuf {
    let dir = std::env::var("DAMQ_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    PathBuf::from(dir).join("json")
}

impl Checkpoint {
    /// Loads the sidecar for experiment `name` from the standard results
    /// directory, keeping every parseable line. Use for `--resume` runs.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing (an absent
    /// sidecar is an empty checkpoint).
    pub fn load(name: &str) -> io::Result<Checkpoint> {
        Checkpoint::load_in(results_json_dir(), name)
    }

    /// Truncates any existing sidecar for `name` in the standard results
    /// directory and starts empty. Use for fresh (non-resume) runs so
    /// stale cells from an earlier grid cannot leak in.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or file removal.
    pub fn fresh(name: &str) -> io::Result<Checkpoint> {
        Checkpoint::fresh_in(results_json_dir(), name)
    }

    /// [`Checkpoint::load`] against an explicit directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing.
    pub fn load_in(dir: impl Into<PathBuf>, name: &str) -> io::Result<Checkpoint> {
        let path = sidecar_path(dir, name);
        let mut done = BTreeMap::new();
        // Whether the sidecar carries lines the reload does not keep —
        // a torn tail, unparseable garbage, or duplicate keys from
        // interleaved crash/resume generations. Those lines are dead
        // weight that would otherwise accumulate across resumes, so the
        // load compacts them away below.
        let mut dead_lines = false;
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    // A torn tail line (crash mid-append) fails to parse:
                    // drop it and everything after — those cells re-run.
                    let Ok(entry) = Json::parse(line) else {
                        dead_lines = true;
                        break;
                    };
                    let (Some(Json::Str(key)), Some(cell)) = (entry.get("key"), entry.get("cell"))
                    else {
                        dead_lines = true;
                        break;
                    };
                    if done.insert(key.clone(), cell.clone()).is_some() {
                        // A later generation re-recorded the key: last
                        // write wins, and the earlier line is dead.
                        dead_lines = true;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        if dead_lines {
            compact(&path, &done)?;
        }
        Ok(Checkpoint {
            path,
            done: Mutex::new(done),
        })
    }

    /// [`Checkpoint::fresh`] against an explicit directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or file removal.
    pub fn fresh_in(dir: impl Into<PathBuf>, name: &str) -> io::Result<Checkpoint> {
        let path = sidecar_path(dir, name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        match std::fs::remove_file(&path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Checkpoint {
            path,
            done: Mutex::new(BTreeMap::new()),
        })
    }

    /// The sidecar file backing this checkpoint.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether `key`'s cell is already recorded.
    pub fn contains(&self, key: &str) -> bool {
        self.done
            .lock()
            .expect("checkpoint poisoned")
            .contains_key(key)
    }

    /// The recorded cell for `key`, if any.
    pub fn get(&self, key: &str) -> Option<Json> {
        self.done
            .lock()
            .expect("checkpoint poisoned")
            .get(key)
            .cloned()
    }

    /// Completed cells recorded so far.
    pub fn len(&self) -> usize {
        self.done.lock().expect("checkpoint poisoned").len()
    }

    /// Whether no cells are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records one completed cell, appending it to the sidecar before
    /// updating the in-memory set. Safe to call from parallel sweep
    /// workers; recording an already-present key is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the append. The in-memory set is only
    /// updated on a successful write, so a failed append leaves the cell
    /// eligible to re-run.
    pub fn record(&self, key: &str, cell: &Json) -> io::Result<()> {
        let mut done = self.done.lock().expect("checkpoint poisoned");
        if done.contains_key(key) {
            return Ok(());
        }
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let entry = Json::obj([("key", Json::from(key)), ("cell", cell.clone())]);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        writeln!(file, "{}", entry.render())?;
        done.insert(key.to_owned(), cell.clone());
        Ok(())
    }
}

fn sidecar_path(dir: impl Into<PathBuf>, name: &str) -> PathBuf {
    dir.into().join(format!("{name}.cells.jsonl"))
}

/// Rewrites the sidecar to exactly the surviving cells, one line per
/// key, via a temporary file and an atomic rename — an interrupted
/// compaction leaves either the old sidecar or the new one, never a
/// half-written mix. Keeps sidecar size proportional to the number of
/// *distinct* completed cells no matter how many crash/resume
/// generations appended to it.
fn compact(path: &Path, done: &BTreeMap<String, Json>) -> io::Result<()> {
    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        for (key, cell) in done {
            let entry = Json::obj([("key", Json::from(key.as_str())), ("cell", cell.clone())]);
            writeln!(file, "{}", entry.render())?;
        }
        // No fsync: if the rename is lost to a crash the old sidecar
        // simply survives un-compacted, which the next load fixes.
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("damq_checkpoint_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_and_reload_round_trip() {
        let dir = temp_dir("round_trip");
        let ck = Checkpoint::fresh_in(&dir, "exp").unwrap();
        assert!(ck.is_empty());
        let cell = Json::obj([("delivered", Json::from(0.5))]);
        ck.record("DAMQ|0.1", &cell).unwrap();
        ck.record("DAMQ|0.1", &cell).unwrap(); // idempotent
        ck.record("SAMQ|0.1", &Json::from(7i64)).unwrap();
        assert_eq!(ck.len(), 2);

        let reloaded = Checkpoint::load_in(&dir, "exp").unwrap();
        assert_eq!(reloaded.len(), 2);
        assert!(reloaded.contains("DAMQ|0.1"));
        assert_eq!(reloaded.get("DAMQ|0.1"), Some(cell));
        assert_eq!(reloaded.get("missing"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_truncates_and_missing_file_loads_empty() {
        let dir = temp_dir("fresh");
        let ck = Checkpoint::fresh_in(&dir, "exp").unwrap();
        ck.record("k", &Json::Null).unwrap();
        let ck = Checkpoint::fresh_in(&dir, "exp").unwrap();
        assert!(ck.is_empty());
        assert!(Checkpoint::load_in(&dir, "never_written")
            .unwrap()
            .is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn sidecar_lines(dir: &Path, name: &str) -> Vec<String> {
        std::fs::read_to_string(sidecar_path(dir, name))
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn load_compacts_duplicate_keys_and_keeps_the_last_write() {
        let dir = temp_dir("dup");
        let path = sidecar_path(&dir, "exp");
        std::fs::write(
            &path,
            "{\"key\":\"a\",\"cell\":1}\n{\"key\":\"b\",\"cell\":2}\n{\"key\":\"a\",\"cell\":3}\n",
        )
        .unwrap();
        let ck = Checkpoint::load_in(&dir, "exp").unwrap();
        assert_eq!(ck.len(), 2);
        assert_eq!(ck.get("a"), Some(Json::from(3i64)), "last write wins");
        // The sidecar itself was rewritten to one line per key.
        assert_eq!(sidecar_lines(&dir, "exp").len(), 2);
        // A clean sidecar reloads without touching the file.
        let before = std::fs::read_to_string(&path).unwrap();
        let ck = Checkpoint::load_in(&dir, "exp").unwrap();
        assert_eq!(ck.len(), 2);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_compacted_away_on_reload() {
        let dir = temp_dir("torn_compact");
        let path = sidecar_path(&dir, "exp");
        std::fs::write(
            &path,
            "{\"key\":\"good\",\"cell\":{\"v\":1}}\n{\"key\":\"torn\",\"ce",
        )
        .unwrap();
        let ck = Checkpoint::load_in(&dir, "exp").unwrap();
        assert_eq!(ck.len(), 1);
        let lines = sidecar_lines(&dir, "exp");
        assert_eq!(lines.len(), 1, "the torn tail is gone from disk");
        assert!(lines[0].contains("\"good\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ten_thousand_crash_resume_attempts_keep_the_sidecar_bounded() {
        // Every generation appends a duplicate of an existing cell
        // (simulating a crash after the append raced an earlier
        // generation's line) and then resumes. Compaction on load must
        // keep the sidecar proportional to the *distinct* cells, not
        // the attempt count.
        let dir = temp_dir("bounded");
        let ck = Checkpoint::fresh_in(&dir, "exp").unwrap();
        for k in 0..4 {
            ck.record(&format!("cell{k}"), &Json::from(k as i64))
                .unwrap();
        }
        let path = sidecar_path(&dir, "exp").to_path_buf();
        for attempt in 0..10_000u64 {
            // Simulated crash leftover: a stale duplicate line.
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(file, "{{\"key\":\"cell0\",\"cell\":{attempt}}}").unwrap();
            drop(file);
            let ck = Checkpoint::load_in(&dir, "exp").unwrap();
            assert_eq!(ck.len(), 4, "attempt {attempt}");
            assert!(
                sidecar_lines(&dir, "exp").len() <= 4,
                "attempt {attempt}: sidecar grew past the distinct-cell count"
            );
        }
        let ck = Checkpoint::load_in(&dir, "exp").unwrap();
        assert_eq!(
            ck.get("cell0"),
            Some(Json::from(9_999i64)),
            "last write wins"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_line_is_dropped_on_reload() {
        let dir = temp_dir("torn");
        let path = sidecar_path(&dir, "exp");
        std::fs::write(
            &path,
            "{\"key\":\"good\",\"cell\":{\"v\":1}}\n{\"key\":\"torn\",\"ce",
        )
        .unwrap();
        let ck = Checkpoint::load_in(&dir, "exp").unwrap();
        assert_eq!(ck.len(), 1);
        assert!(ck.contains("good"));
        assert!(!ck.contains("torn"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
