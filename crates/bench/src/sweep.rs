//! The parallel experiment-sweep engine.
//!
//! Every harness binary in `src/bin/` evaluates a *grid* of independent
//! cells — buffer kind × buffer size × offered load × topology × seed —
//! and every cell is a self-contained computation (a simulation run, a
//! saturation search, a Markov solve). This module fans those cells out
//! across cores with [`std::thread::scope`] while keeping the results in
//! **deterministic cell order**, so a run with 8 workers is byte-identical
//! to a run with 1.
//!
//! Three guarantees make parallel regeneration safe:
//!
//! 1. **Per-cell isolation** — a cell receives its inputs by reference,
//!    owns all of its mutable state (each simulation seeds its own RNG
//!    from its config), and returns an owned result.
//! 2. **Deterministic seeding** — [`cell_seed`] derives a cell's RNG seed
//!    from the experiment's base seed and the cell's grid coordinates, so
//!    a cell's stream never depends on scheduling order or on how many
//!    workers ran before it.
//! 3. **Ordered collection** — results are written into a slot per cell
//!    and returned in grid order, regardless of completion order.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be pinned with the `DAMQ_SWEEP_THREADS` environment variable
//! (`DAMQ_SWEEP_THREADS=1` forces the serial schedule — useful for
//! determinism checks and debugging).
//!
//! # Examples
//!
//! Sweep a small grid of (load, seed) cells and aggregate per-load:
//!
//! ```
//! use damq_bench::sweep;
//!
//! let loads = [0.25, 0.50];
//! let cells: Vec<(f64, u64)> = loads
//!     .iter()
//!     .flat_map(|&l| (0..4u64).map(move |s| (l, s)))
//!     .collect();
//! // Any Fn(&C) -> R + Sync closure works; here a toy "measurement".
//! let results = sweep::run(&cells, |&(load, seed)| load * (seed + 1) as f64);
//! assert_eq!(results.len(), cells.len());
//! // Results arrive in grid order, whatever the worker count.
//! assert_eq!(results[0], 0.25);
//! assert_eq!(results[5], 0.50 * 2.0);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use damq_net::Measurement;
use damq_telemetry::{JsonlRecord, SharedRecorder};

use crate::json::Json;

/// The base seed shared by the regeneration harnesses (the historical
/// default seed of [`damq_net::NetworkConfig`]).
pub const BASE_SEED: u64 = 0xDA3B;

/// Returns the worker count: `DAMQ_SWEEP_THREADS` if set (minimum 1),
/// otherwise [`std::thread::available_parallelism`].
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("DAMQ_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` over every cell on [`worker_count`] workers; results come back
/// in cell order.
///
/// See [`run_with_workers`] for the scheduling contract.
pub fn run<C, R, F>(cells: &[C], f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    run_with_workers(cells, worker_count(), f)
}

/// Runs `f` over every cell on exactly `workers` OS threads.
///
/// Work is handed out through a shared atomic cursor (dynamic scheduling:
/// long cells don't convoy short ones behind a fixed partition), and each
/// result lands in the slot of its cell index, so the returned `Vec` is in
/// cell order for **any** worker count. `f` must be a pure function of its
/// cell for the parallel/serial equivalence to hold — the engine enforces
/// ordering, the cell function supplies purity.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated, not swallowed).
pub fn run_with_workers<C, R, F>(cells: &[C], workers: usize, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    let workers = workers.max(1).min(cells.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let result = f(cell);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            }));
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell produced a result")
        })
        .collect()
}

/// Wall-clock profile of one sweep: where the time went, cell by cell.
///
/// Produced by [`run_profiled`]; rendered into the JSON report's
/// `telemetry` section by
/// [`Report::telemetry_from_profile`](crate::json::Report::telemetry_from_profile).
/// Timings are observational (they vary run to run) and are therefore
/// kept out of the deterministic report body.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepProfile {
    /// Wall-clock seconds each cell took, in cell order.
    pub per_cell_secs: Vec<f64>,
    /// Network cycles each cell simulated, in cell order. Empty when the
    /// harness did not declare its cycle counts (see
    /// [`SweepProfile::with_cycles`]).
    pub per_cell_cycles: Vec<u64>,
    /// Wall-clock seconds for the whole sweep (parallel, so typically far
    /// less than the sum of the per-cell times).
    pub total_secs: f64,
    /// Worker threads used.
    pub workers: usize,
}

impl SweepProfile {
    /// Sum of per-cell wall-clock seconds (total CPU-ish time).
    pub fn cell_secs_sum(&self) -> f64 {
        self.per_cell_secs.iter().sum()
    }

    /// Attaches the number of simulated cycles behind each cell (cell
    /// order, same length as the grid), enabling the cycles-per-second
    /// telemetry. The engine cannot observe this itself — cells are
    /// opaque closures — so harnesses that know their warm-up + window
    /// budget declare it.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match `per_cell_secs`.
    pub fn with_cycles(mut self, per_cell_cycles: Vec<u64>) -> Self {
        assert_eq!(
            per_cell_cycles.len(),
            self.per_cell_secs.len(),
            "one cycle count per cell"
        );
        self.per_cell_cycles = per_cell_cycles;
        self
    }

    /// Simulation throughput of each cell in network cycles per
    /// wall-clock second (cell order). Empty unless cycle counts were
    /// attached with [`SweepProfile::with_cycles`]; instantaneous cells
    /// report 0.
    pub fn per_cell_cycles_per_sec(&self) -> Vec<f64> {
        self.per_cell_cycles
            .iter()
            .zip(&self.per_cell_secs)
            .map(|(&cycles, &secs)| {
                if secs > 0.0 {
                    cycles as f64 / secs
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Aggregate simulation throughput: total cycles simulated across all
    /// cells over the summed per-cell wall time. 0 when cycle counts are
    /// absent or no time was observed.
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.cell_secs_sum();
        if self.per_cell_cycles.is_empty() || secs <= 0.0 {
            0.0
        } else {
            self.per_cell_cycles.iter().sum::<u64>() as f64 / secs
        }
    }

    /// Index and duration of the slowest cell, if any cells ran.
    pub fn slowest_cell(&self) -> Option<(usize, f64)> {
        self.per_cell_secs
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Parallel speed-up achieved: summed cell time over sweep wall time
    /// (0 when the sweep was instantaneous).
    pub fn speedup(&self) -> f64 {
        if self.total_secs <= 0.0 {
            0.0
        } else {
            self.cell_secs_sum() / self.total_secs
        }
    }
}

/// Like [`run`], but also times every cell, returning the results
/// together with a [`SweepProfile`].
///
/// Results are identical to [`run`]'s (the timing wrapper does not touch
/// the cell function); only the profile is scheduling-dependent.
pub fn run_profiled<C, R, F>(cells: &[C], f: F) -> (Vec<R>, SweepProfile)
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    let workers = worker_count();
    let start = Instant::now();
    let timed = run_with_workers(cells, workers, |cell| {
        let cell_start = Instant::now();
        let result = f(cell);
        (result, cell_start.elapsed().as_secs_f64())
    });
    let total_secs = start.elapsed().as_secs_f64();
    let mut results = Vec::with_capacity(timed.len());
    let mut per_cell_secs = Vec::with_capacity(timed.len());
    for (result, secs) in timed {
        results.push(result);
        per_cell_secs.push(secs);
    }
    (
        results,
        SweepProfile {
            per_cell_secs,
            per_cell_cycles: Vec::new(),
            total_secs,
            workers,
        },
    )
}

// ----------------------------------------------------------------------
// Self-healing isolation: panic containment, cycle-budget watchdogs and
// bounded retry, so one bad cell degrades one report entry instead of
// losing the whole sweep.

/// Sentinel panic payload thrown by [`Watchdog::tick`]; [`run_isolated`]
/// recognises it and reports the cell as [`CellOutcome::TimedOut`] instead
/// of panicked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogExpired;

/// A deterministic cycle-budget watchdog handed to every isolated cell.
///
/// Cells call [`Watchdog::tick`] once per unit of forward progress
/// (typically one simulated network cycle). A cell that exceeds its budget
/// is unwound and reported as timed out — the budget counts *work*, not
/// wall-clock time, so the verdict is identical on a fast and a loaded
/// machine.
#[derive(Debug)]
pub struct Watchdog {
    budget: u64,
    ticks: AtomicU64,
}

impl Watchdog {
    /// A watchdog with `spent` ticks already charged against `budget` —
    /// how [`run_isolated`] levies the deterministic retry backoff: a
    /// retried attempt starts with [`retry_backoff`] ticks gone, so
    /// repeated failures cost a geometrically growing share of the cell's
    /// cycle budget instead of wall-clock sleeps (which would break
    /// determinism and slow healthy sweeps).
    fn precharged(budget: u64, spent: u64) -> Watchdog {
        Watchdog {
            budget,
            ticks: AtomicU64::new(spent.min(budget)),
        }
    }

    /// Records one unit of progress.
    ///
    /// # Panics
    ///
    /// Unwinds with [`WatchdogExpired`] once the budget is exhausted;
    /// [`run_isolated`] catches it and marks the cell
    /// [`CellOutcome::TimedOut`].
    pub fn tick(&self) {
        let ticks = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        if ticks > self.budget {
            std::panic::panic_any(WatchdogExpired);
        }
    }

    /// Progress recorded so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

/// The deterministic backoff levied on retry attempt `attempt`
/// (0-based), in [`Watchdog::tick`] units pre-charged against the
/// cell's `cycle_budget`.
///
/// Attempt 0 is free; each retry doubles from `cycle_budget / 8`,
/// capped at `cycle_budget / 2` — scaled to the budget, so the same
/// schedule applies to a smoke-sized and a soak-sized sweep, and pinned
/// by `attempt_schedule_is_pinned` so harness tuning cannot silently
/// change which flaky cells survive.
///
/// # Examples
///
/// ```
/// use damq_bench::sweep::retry_backoff;
///
/// assert_eq!(retry_backoff(8_000, 0), 0);
/// assert_eq!(retry_backoff(8_000, 1), 1_000);
/// assert_eq!(retry_backoff(8_000, 2), 2_000);
/// assert_eq!(retry_backoff(8_000, 3), 4_000);
/// assert_eq!(retry_backoff(8_000, 4), 4_000); // capped at budget / 2
/// ```
pub fn retry_backoff(cycle_budget: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return 0;
    }
    let base = cycle_budget / 8;
    let shifted = base.saturating_mul(1u64 << (attempt - 1).min(32));
    shifted.min(cycle_budget / 2)
}

/// What happened to one isolated cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The cell completed on its first attempt.
    Ok,
    /// The cell panicked and then completed on a retry (`attempts` counts
    /// every attempt, including the successful one).
    Retried {
        /// Total attempts made, including the one that succeeded.
        attempts: u32,
    },
    /// The cell panicked on every attempt; the last panic message is kept.
    Panicked {
        /// Rendered payload of the final panic.
        message: String,
    },
    /// The cell exhausted its cycle budget. Timeouts are deterministic
    /// (the budget counts simulated work), so they are not retried.
    TimedOut,
}

impl CellOutcome {
    /// Short machine-readable tag (`ok`, `retried`, `panicked`,
    /// `timed_out`) used by the JSON reports.
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Ok => "ok",
            CellOutcome::Retried { .. } => "retried",
            CellOutcome::Panicked { .. } => "panicked",
            CellOutcome::TimedOut => "timed_out",
        }
    }

    /// Whether the cell produced a usable result.
    pub fn is_usable(&self) -> bool {
        matches!(self, CellOutcome::Ok | CellOutcome::Retried { .. })
    }
}

/// One isolated cell's verdict and (if usable) its result.
#[derive(Debug, Clone)]
pub struct CellReport<R> {
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// The result, present exactly when `outcome.is_usable()`.
    pub result: Option<R>,
}

/// Tuning for [`run_isolated`].
#[derive(Debug, Clone, Copy)]
pub struct IsolationOptions {
    /// Watchdog budget per attempt, in [`Watchdog::tick`] units.
    pub cycle_budget: u64,
    /// Panicking cells are re-run up to this many extra times (each
    /// attempt sees its attempt index, so it can reseed). Timeouts are
    /// never retried.
    pub max_retries: u32,
}

impl Default for IsolationOptions {
    fn default() -> IsolationOptions {
        IsolationOptions {
            cycle_budget: 10_000_000,
            max_retries: 2,
        }
    }
}

/// Like [`run`], but each cell runs inside a panic boundary with a
/// cycle-budget watchdog and bounded retry: the sweep always completes and
/// every cell reports a [`CellOutcome`] instead of taking the process down.
///
/// `f` receives the cell, a fresh [`Watchdog`] per attempt, and the
/// 0-based attempt index (fold it into the cell's seed so retries explore
/// a different stream). Results come back in cell order.
///
/// Panic payloads are contained per attempt; the default panic hook still
/// prints them to stderr, which doubles as the incident log.
pub fn run_isolated<C, R, F>(cells: &[C], opts: IsolationOptions, f: F) -> Vec<CellReport<R>>
where
    C: Sync,
    R: Send,
    F: Fn(&C, &Watchdog, u32) -> R + Sync,
{
    run_with_workers(cells, worker_count(), |cell| {
        let mut attempt = 0;
        loop {
            // Retries start with a backoff pre-charged against the
            // budget: deterministic (no wall clock) and budget-scaled.
            let watchdog =
                Watchdog::precharged(opts.cycle_budget, retry_backoff(opts.cycle_budget, attempt));
            match catch_unwind(AssertUnwindSafe(|| f(cell, &watchdog, attempt))) {
                Ok(result) => {
                    let outcome = if attempt == 0 {
                        CellOutcome::Ok
                    } else {
                        CellOutcome::Retried {
                            attempts: attempt + 1,
                        }
                    };
                    return CellReport {
                        outcome,
                        result: Some(result),
                    };
                }
                Err(payload) => {
                    if payload.downcast_ref::<WatchdogExpired>().is_some() {
                        return CellReport {
                            outcome: CellOutcome::TimedOut,
                            result: None,
                        };
                    }
                    if attempt >= opts.max_retries {
                        return CellReport {
                            outcome: CellOutcome::Panicked {
                                message: panic_message(payload.as_ref()),
                            },
                            result: None,
                        };
                    }
                    attempt += 1;
                }
            }
        }
    })
}

/// One isolated cell's verdict plus the crash-dump sidecars its failing
/// attempts produced (empty when every attempt succeeded cleanly).
#[derive(Debug, Clone)]
pub struct RecordedCell<R> {
    /// The cell's outcome and (if usable) result, exactly as
    /// [`run_isolated`] would report them.
    pub report: CellReport<R>,
    /// Flight-recorder dump files written for this cell, one per failed
    /// attempt, in attempt order.
    pub dumps: Vec<PathBuf>,
}

/// Like [`run_isolated`], but every attempt records telemetry into a
/// fresh fixed-capacity [`SharedRecorder`] ring, and any attempt that
/// panics, trips the [`Watchdog`], or exhausts its retries dumps the
/// ring to a JSONL sidecar in `dump_dir` — turning a "panicked isolated"
/// verdict into a post-mortem.
///
/// `f` receives the cell, the attempt's watchdog, the 0-based attempt
/// index, and a [`SharedRecorder`] handle to attach as the simulation's
/// telemetry sink (clone it freely; the harness keeps its own handle
/// outside the panic boundary). Each dump file is named
/// `cell{index:04}_attempt{n}.jsonl` and starts with one
/// `flight_recorder` meta line (cell, attempt, outcome, panic message,
/// ring occupancy) followed by the ring's events, oldest first.
///
/// Dump-file I/O errors are swallowed — a failing disk must not turn a
/// contained cell panic into a sweep abort — so a dump path is only
/// returned for files that were actually written.
pub fn run_isolated_recorded<C, R, E, F>(
    cells: &[C],
    opts: IsolationOptions,
    capacity: usize,
    dump_dir: &Path,
    f: F,
) -> Vec<RecordedCell<R>>
where
    C: Sync,
    R: Send,
    E: JsonlRecord,
    F: Fn(&C, &Watchdog, u32, SharedRecorder<E>) -> R + Sync,
{
    let indexed: Vec<(usize, &C)> = cells.iter().enumerate().collect();
    run_with_workers(&indexed, worker_count(), |&(index, cell)| {
        let mut attempt = 0;
        let mut dumps = Vec::new();
        loop {
            let watchdog =
                Watchdog::precharged(opts.cycle_budget, retry_backoff(opts.cycle_budget, attempt));
            let recorder = SharedRecorder::new(capacity.max(1));
            let inside = recorder.clone();
            match catch_unwind(AssertUnwindSafe(|| f(cell, &watchdog, attempt, inside))) {
                Ok(result) => {
                    let outcome = if attempt == 0 {
                        CellOutcome::Ok
                    } else {
                        CellOutcome::Retried {
                            attempts: attempt + 1,
                        }
                    };
                    return RecordedCell {
                        report: CellReport {
                            outcome,
                            result: Some(result),
                        },
                        dumps,
                    };
                }
                Err(payload) => {
                    let timed_out = payload.downcast_ref::<WatchdogExpired>().is_some();
                    let message = if timed_out {
                        format!("watchdog expired after {} ticks", watchdog.ticks())
                    } else {
                        panic_message(payload.as_ref())
                    };
                    let label = if timed_out {
                        CellOutcome::TimedOut.label()
                    } else {
                        "panicked"
                    };
                    if let Some(path) =
                        write_flight_dump(dump_dir, index, attempt, label, &message, &recorder)
                    {
                        dumps.push(path);
                    }
                    if timed_out {
                        return RecordedCell {
                            report: CellReport {
                                outcome: CellOutcome::TimedOut,
                                result: None,
                            },
                            dumps,
                        };
                    }
                    if attempt >= opts.max_retries {
                        return RecordedCell {
                            report: CellReport {
                                outcome: CellOutcome::Panicked { message },
                                result: None,
                            },
                            dumps,
                        };
                    }
                    attempt += 1;
                }
            }
        }
    })
}

/// Writes one flight-recorder sidecar: a meta line describing the failed
/// attempt, then the ring's retained events as JSONL. Returns `None` on
/// any I/O failure (dumping is best-effort by design).
fn write_flight_dump<E: JsonlRecord>(
    dir: &Path,
    cell: usize,
    attempt: u32,
    outcome: &str,
    message: &str,
    recorder: &SharedRecorder<E>,
) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("cell{cell:04}_attempt{attempt}.jsonl"));
    let meta = Json::obj([
        ("type", Json::from("flight_recorder")),
        ("cell", Json::from(cell)),
        ("attempt", Json::from(u64::from(attempt))),
        ("outcome", Json::from(outcome)),
        ("message", Json::from(message)),
        ("retained", Json::from(recorder.len())),
        ("seen", Json::from(recorder.seen())),
    ]);
    let body = format!("{}\n{}", meta.render(), recorder.dump_jsonl());
    std::fs::write(&path, body).ok()?;
    Some(path)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Derives a deterministic per-cell RNG seed from an experiment's base
/// seed and the cell's grid coordinates.
///
/// The derivation is a SplitMix64-style mix over the coordinate sequence:
/// stable across platforms and runs, sensitive to every coordinate, and
/// independent of scheduling — the property that makes a parallel sweep
/// reproduce a serial one exactly. Distinct coordinate vectors (including
/// vectors of different lengths) map to distinct streams with
/// overwhelming probability.
///
/// # Examples
///
/// ```
/// use damq_bench::sweep::cell_seed;
///
/// let a = cell_seed(0xDA3B, &[0, 2, 1]);
/// assert_eq!(a, cell_seed(0xDA3B, &[0, 2, 1])); // stable
/// assert_ne!(a, cell_seed(0xDA3B, &[1, 2, 0])); // order matters
/// assert_ne!(a, cell_seed(0xDA3B, &[0, 2]));    // length matters
/// ```
pub fn cell_seed(base: u64, coords: &[u64]) -> u64 {
    let mut state = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(coords.len() as u64 + 1);
    let mut mix = |v: u64| {
        state = state.wrapping_add(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        state = z ^ (z >> 31);
    };
    for &c in coords {
        mix(c);
    }
    mix(0x5EED);
    state
}

/// Mean, spread and confidence interval of one metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Number of samples aggregated.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (`n - 1` denominator; 0 for a single
    /// sample).
    pub stddev: f64,
    /// Half-width of the two-sided 95% confidence interval on the mean
    /// (Student's t for small `n`); 0 for a single sample.
    pub ci95: f64,
}

/// Two-sided 95% t-quantiles for `n - 1` degrees of freedom (index 1..=30;
/// larger samples use the normal 1.96).
const T95: [f64; 31] = [
    f64::NAN,
    12.706,
    4.303,
    3.182,
    2.776,
    2.571,
    2.447,
    2.365,
    2.306,
    2.262,
    2.228,
    2.201,
    2.179,
    2.160,
    2.145,
    2.131,
    2.120,
    2.110,
    2.101,
    2.093,
    2.086,
    2.080,
    2.074,
    2.069,
    2.064,
    2.060,
    2.056,
    2.052,
    2.048,
    2.045,
    2.042,
];

impl Aggregate {
    /// Aggregates a non-empty sample set.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    ///
    /// # Examples
    ///
    /// ```
    /// use damq_bench::sweep::Aggregate;
    ///
    /// let a = Aggregate::from_samples(&[2.0, 4.0, 6.0]);
    /// assert_eq!(a.n, 3);
    /// assert!((a.mean - 4.0).abs() < 1e-12);
    /// assert!((a.stddev - 2.0).abs() < 1e-12);
    /// // 95% CI half-width = t(2 df) * s / sqrt(n) = 4.303 * 2 / sqrt(3)
    /// assert!((a.ci95 - 4.303 * 2.0 / 3.0f64.sqrt()).abs() < 1e-9);
    /// ```
    pub fn from_samples(samples: &[f64]) -> Aggregate {
        assert!(!samples.is_empty(), "cannot aggregate zero samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Aggregate {
                n,
                mean,
                stddev: 0.0,
                ci95: 0.0,
            };
        }
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let stddev = var.sqrt();
        let t = if n - 1 <= 30 { T95[n - 1] } else { 1.96 };
        Aggregate {
            n,
            mean,
            stddev,
            ci95: t * stddev / (n as f64).sqrt(),
        }
    }
}

/// Aggregates every [`Measurement`] metric across a multi-seed cell:
/// one [`Aggregate`] per field, in [`Measurement::FIELD_NAMES`] order.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn aggregate_measurements(samples: &[Measurement]) -> Vec<(&'static str, Aggregate)> {
    assert!(!samples.is_empty(), "cannot aggregate zero measurements");
    let per_sample: Vec<_> = samples.iter().map(Measurement::fields).collect();
    Measurement::FIELD_NAMES
        .iter()
        .enumerate()
        .map(|(i, &name)| {
            let column: Vec<f64> = per_sample.iter().map(|fields| fields[i].1).collect();
            (name, Aggregate::from_samples(&column))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_cell_order_for_any_worker_count() {
        let cells: Vec<usize> = (0..37).collect();
        let serial = run_with_workers(&cells, 1, |&c| c * c);
        for workers in [2, 3, 8, 64] {
            assert_eq!(run_with_workers(&cells, workers, |&c| c * c), serial);
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u32> = run_with_workers(&[] as &[u32], 4, |&c| c);
        assert!(out.is_empty());
    }

    #[test]
    fn cell_seed_is_stable_and_coordinate_sensitive() {
        let s = cell_seed(BASE_SEED, &[3, 1, 4]);
        assert_eq!(s, cell_seed(BASE_SEED, &[3, 1, 4]));
        assert_ne!(s, cell_seed(BASE_SEED, &[4, 1, 3]));
        assert_ne!(s, cell_seed(BASE_SEED + 1, &[3, 1, 4]));
        assert_ne!(s, cell_seed(BASE_SEED, &[3, 1]));
        assert_ne!(cell_seed(0, &[]), 0);
    }

    #[test]
    fn attempt_schedule_is_pinned() {
        // The deterministic retry-backoff table, pinned so harness
        // tuning cannot silently change which flaky cells survive.
        for (attempt, expect) in [
            (0u32, 0u64),
            (1, 125),
            (2, 250),
            (3, 500),
            (4, 500),
            (9, 500),
        ] {
            assert_eq!(retry_backoff(1_000, attempt), expect, "attempt {attempt}");
        }
        assert_eq!(retry_backoff(0, 5), 0, "degenerate budget");
        assert_eq!(retry_backoff(u64::MAX, 63), u64::MAX / 2);

        // A retried cell actually starts each attempt with the backoff
        // pre-charged against its watchdog budget.
        use std::sync::Mutex;
        let observed = Mutex::new(Vec::new());
        let reports = run_isolated(
            &[0u64],
            IsolationOptions {
                cycle_budget: 1_000,
                max_retries: 3,
            },
            |_, watchdog, attempt| {
                observed.lock().unwrap().push(watchdog.ticks());
                if attempt < 2 {
                    panic!("injected: force a retry");
                }
                attempt
            },
        );
        assert_eq!(reports[0].outcome, CellOutcome::Retried { attempts: 3 });
        assert_eq!(
            *observed.lock().unwrap(),
            vec![0, 125, 250],
            "per-attempt pre-charged ticks follow the pinned schedule"
        );

        // The pre-charge shrinks the work a retry may do: a cell that
        // ticks more than budget − backoff on its retry times out.
        let reports = run_isolated(
            &[0u64],
            IsolationOptions {
                cycle_budget: 1_000,
                max_retries: 3,
            },
            |_, watchdog, attempt| {
                if attempt == 0 {
                    panic!("injected: force a retry");
                }
                for _ in 0..900 {
                    watchdog.tick(); // 125 + 900 > 1_000
                }
            },
        );
        assert_eq!(reports[0].outcome, CellOutcome::TimedOut);
    }

    #[test]
    fn aggregate_single_sample_has_no_spread() {
        let a = Aggregate::from_samples(&[7.5]);
        assert_eq!((a.n, a.mean, a.stddev, a.ci95), (1, 7.5, 0.0, 0.0));
    }

    #[test]
    fn aggregate_known_samples() {
        // Five known samples: mean 10, stddev sqrt(2.5), t(4 df) = 2.776.
        let a = Aggregate::from_samples(&[8.0, 9.0, 10.0, 11.0, 12.0]);
        assert_eq!(a.n, 5);
        assert!((a.mean - 10.0).abs() < 1e-12);
        assert!((a.stddev - 2.5f64.sqrt()).abs() < 1e-12);
        assert!((a.ci95 - 2.776 * 2.5f64.sqrt() / 5f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn run_profiled_matches_run_and_times_every_cell() {
        let cells: Vec<u64> = (0..9).collect();
        let plain = run(&cells, |&c| c + 1);
        let (results, profile) = run_profiled(&cells, |&c| c + 1);
        assert_eq!(results, plain);
        assert_eq!(profile.per_cell_secs.len(), cells.len());
        assert!(profile.per_cell_secs.iter().all(|&s| s >= 0.0));
        assert!(profile.total_secs >= 0.0);
        assert!(profile.workers >= 1);
        assert!(profile.slowest_cell().is_some());
        assert!(profile.cell_secs_sum() >= 0.0);
    }

    #[test]
    fn cycle_counts_turn_the_profile_into_throughput() {
        let (_, profile) = run_profiled(&[1u32, 2, 3], |&c| {
            // Busy the cell long enough for a nonzero timer reading.
            (0..50_000u64).fold(c as u64, |a, b| a.wrapping_add(b))
        });
        assert!(profile.per_cell_cycles_per_sec().is_empty());
        assert_eq!(profile.cycles_per_sec(), 0.0);
        let profile = profile.with_cycles(vec![1_000, 2_000, 3_000]);
        let per_cell = profile.per_cell_cycles_per_sec();
        assert_eq!(per_cell.len(), 3);
        assert!(per_cell.iter().all(|&cps| cps >= 0.0));
        if profile.cell_secs_sum() > 0.0 {
            assert!(profile.cycles_per_sec() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "one cycle count per cell")]
    fn mismatched_cycle_counts_rejected() {
        let (_, profile) = run_profiled(&[1u32, 2], |&c| c);
        let _ = profile.with_cycles(vec![10]);
    }

    #[test]
    fn empty_profile_has_no_slowest_cell() {
        let (results, profile) = run_profiled(&[] as &[u32], |&c| c);
        assert!(results.is_empty());
        assert_eq!(profile.slowest_cell(), None);
        assert_eq!(profile.cell_secs_sum(), 0.0);
    }

    #[test]
    fn isolated_cells_contain_panics_timeouts_and_retries() {
        let cells: Vec<u32> = (0..6).collect();
        let opts = IsolationOptions {
            cycle_budget: 500,
            max_retries: 2,
        };
        let reports = run_isolated(&cells, opts, |&c, watchdog, attempt| match c {
            2 => panic!("injected fault in cell 2"),
            3 => loop {
                watchdog.tick();
            },
            4 if attempt == 0 => panic!("flaky once"),
            _ => c * 10,
        });
        assert_eq!(reports.len(), 6);
        for i in [0usize, 1, 5] {
            assert_eq!(reports[i].outcome, CellOutcome::Ok);
            assert_eq!(reports[i].result, Some(i as u32 * 10));
        }
        match &reports[2].outcome {
            CellOutcome::Panicked { message } => {
                assert!(message.contains("injected fault in cell 2"));
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(reports[2].result, None);
        assert_eq!(reports[3].outcome, CellOutcome::TimedOut);
        assert_eq!(reports[3].result, None);
        assert_eq!(reports[4].outcome, CellOutcome::Retried { attempts: 2 });
        assert_eq!(reports[4].result, Some(40));
    }

    #[test]
    fn outcome_labels_and_usability() {
        assert_eq!(CellOutcome::Ok.label(), "ok");
        assert_eq!(CellOutcome::Retried { attempts: 2 }.label(), "retried");
        assert!(CellOutcome::Retried { attempts: 2 }.is_usable());
        assert!(!CellOutcome::TimedOut.is_usable());
        assert!(!CellOutcome::Panicked {
            message: String::new()
        }
        .is_usable());
    }

    #[test]
    fn watchdog_budget_is_deterministic_progress_not_wall_clock() {
        let reports = run_isolated(
            &[100u64, 99],
            IsolationOptions {
                cycle_budget: 99,
                max_retries: 0,
            },
            |&n, watchdog, _| {
                for _ in 0..n {
                    watchdog.tick();
                }
                n
            },
        );
        // 100 ticks over a 99-tick budget: out. Exactly 99: fine.
        assert_eq!(reports[0].outcome, CellOutcome::TimedOut);
        assert_eq!(reports[1].outcome, CellOutcome::Ok);
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let cells = [1u32, 2, 3];
            let _ = run_with_workers(&cells, 2, |&c| {
                assert!(c != 2, "boom");
                c
            });
        });
        assert!(result.is_err());
    }
}
