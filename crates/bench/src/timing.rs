//! A minimal std-only micro-benchmark harness (the registry is
//! unreachable offline, so no criterion).
//!
//! The `benches/` targets use this to report nanoseconds per operation.
//! Methodology: calibrate a batch size that runs for roughly
//! [`TARGET_BATCH`], run several batches, and report the minimum and
//! median per-op time — the minimum is the least noisy estimator on a
//! busy machine, the median shows whether the minimum is representative.
//!
//! # Examples
//!
//! ```
//! use damq_bench::timing::bench;
//!
//! let mut acc = 0u64;
//! let stats = bench("wrapping_add", || {
//!     acc = acc.wrapping_add(1);
//!     acc
//! });
//! assert!(stats.min_ns > 0.0);
//! assert!(stats.median_ns >= stats.min_ns);
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target duration of one calibrated measurement batch.
pub const TARGET_BATCH: Duration = Duration::from_millis(20);

/// Number of measured batches per benchmark.
pub const BATCHES: usize = 9;

/// Per-op timing estimates from one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Fastest observed batch, in nanoseconds per operation.
    pub min_ns: f64,
    /// Median batch, in nanoseconds per operation.
    pub median_ns: f64,
    /// Operations per measured batch after calibration.
    pub batch_ops: u64,
}

/// Times `f`, prints one aligned report line to stdout, and returns the
/// estimates.
pub fn bench<T>(label: &str, mut f: impl FnMut() -> T) -> Stats {
    // Warm up and calibrate: double the batch until it takes long enough
    // to swamp timer resolution.
    let mut batch_ops = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..batch_ops {
            black_box(f());
        }
        let took = start.elapsed();
        if took >= TARGET_BATCH || batch_ops >= 1 << 30 {
            break;
        }
        // Jump close to the target once we have a usable estimate.
        batch_ops = if took < Duration::from_micros(50) {
            batch_ops * 8
        } else {
            let scale = TARGET_BATCH.as_secs_f64() / took.as_secs_f64();
            ((batch_ops as f64 * scale * 1.1) as u64).max(batch_ops + 1)
        };
    }

    let mut per_op: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch_ops {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / batch_ops as f64
        })
        .collect();
    per_op.sort_by(f64::total_cmp);
    let stats = Stats {
        min_ns: per_op[0],
        median_ns: per_op[per_op.len() / 2],
        batch_ops,
    };
    // lint: allow — the aligned report line IS this harness's output.
    println!(
        "{label:<40} {:>12.1} ns/op min {:>12.1} ns/op median ({} ops/batch)",
        stats.min_ns, stats.median_ns, stats.batch_ops
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_ordered_stats() {
        let mut x = 1u64;
        let s = bench("spin", || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(s.min_ns > 0.0);
        assert!(s.median_ns >= s.min_ns);
        assert!(s.batch_ops >= 1);
    }
}
