//! Seeded-mutation test for the chaos soak pipeline: an injected
//! invariant violation must travel the whole emission path — soak,
//! minimization, panic, flight-recorder crash dump — and the reproducer
//! recovered from the dump must re-trigger the violation on replay.

use damq_bench::chaos::{self, EpochProbe, Reproducer, SoakPlan};
use damq_bench::json::Json;
use damq_bench::sweep::{self, CellOutcome, IsolationOptions};
use damq_core::{BufferKind, FaultSpec};
use damq_net::{NetworkConfig, RecoveryConfig};
use damq_switch::FlowControl;

fn config() -> NetworkConfig {
    NetworkConfig::new(16, 4)
        .slots_per_buffer(4)
        .buffer_kind(BufferKind::Damq)
        .flow_control(FlowControl::Discarding)
        .recovery(RecoveryConfig::enabled())
        .offered_load(0.5)
        .seed(59)
}

fn soak() -> SoakPlan {
    SoakPlan {
        seed: 0x50AC,
        epochs: 3,
        epoch_cycles: 150,
        storm: FaultSpec {
            dead_slot_fraction: 0.02,
            link_flaps: 2,
            flap_duration: 30,
            corrupt_packets: 1,
            misroutes: 1,
            ..FaultSpec::fault_free(2, 4, 4, 16, 4, 150)
        },
    }
}

/// The seeded mutation: any killed slot is declared a violation.
fn mutation(probe: &EpochProbe) -> Result<(), String> {
    if probe.ledger.slots_killed > 0 {
        Err(format!(
            "mutation: {} slots killed",
            probe.ledger.slots_killed
        ))
    } else {
        Ok(())
    }
}

#[test]
fn mutated_soak_emits_a_working_reproducer_through_the_flight_recorder() {
    let dump_dir =
        std::env::temp_dir().join(format!("damq_chaos_dump_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump_dir);

    // One cell, no retries: the violation is deterministic, so a retry
    // would only panic again.
    let cells = [()];
    let opts = IsolationOptions {
        cycle_budget: soak().epochs * soak().epoch_cycles * 20,
        max_retries: 0,
    };
    let recorded = sweep::run_isolated_recorded(
        &cells,
        opts,
        64,
        &dump_dir,
        |_cell, watchdog, _attempt, recorder| {
            let outcome =
                chaos::run_soak(config(), &soak(), recorder, &mutation, || watchdog.tick())
                    .expect("config is valid");
            let violation = outcome.violation.expect("the seeded mutation fires");
            let rep = chaos::minimize(config(), &soak(), &violation, &mutation);
            // Same emission shape as the chaos_soak bin: the reproducer
            // rides the panic message into the crash-dump sidecar.
            panic!(
                "chaos invariant violated at epoch {} cycle {}: {} — reproducer {}",
                violation.epoch,
                violation.cycle,
                violation.message,
                rep.to_json().render()
            );
        },
    );

    assert_eq!(recorded.len(), 1);
    let cell = &recorded[0];
    assert!(
        matches!(cell.report.outcome, CellOutcome::Panicked { .. }),
        "the violating soak must surface as a panicked cell, got {:?}",
        cell.report.outcome
    );
    assert_eq!(cell.dumps.len(), 1, "one crash dump for the one attempt");

    // Recover the reproducer from the dump's meta line, exactly as a
    // post-mortem would: parse the first JSONL line, find the reproducer
    // object inside the panic message, parse it back.
    let dump = std::fs::read_to_string(&cell.dumps[0]).expect("dump file is readable");
    let meta_line = dump.lines().next().expect("dump has a meta line");
    let meta = Json::parse(meta_line).expect("meta line is JSON");
    let message = match meta.get("message") {
        Some(Json::Str(s)) => s.clone(),
        other => panic!("meta message must be a string, got {other:?}"),
    };
    let marker = "reproducer ";
    let at = message.find(marker).expect("message embeds the reproducer");
    let rep_json = Json::parse(&message[at + marker.len()..]).expect("reproducer JSON parses");
    let rep = Reproducer::from_json(&rep_json).expect("reproducer fields are complete");

    assert!(
        !rep.plan.is_empty() && rep.plan.events().len() < soak().compose().events().len(),
        "the emitted plan is minimized ({} of {} events)",
        rep.plan.events().len(),
        soak().compose().events().len()
    );

    // The acceptance bar: the recovered reproducer re-triggers the
    // violation on a fresh simulation.
    let again = chaos::replay(config(), &rep, &mutation).expect("reproducer re-triggers");
    assert_eq!(again.message, rep.message);

    let _ = std::fs::remove_dir_all(&dump_dir);
}
