//! Flight-recorder integration: a forced-panic sweep cell must leave a
//! readable crash dump behind.
//!
//! `sweep::run_isolated_recorded` hands every attempt a fresh
//! [`SharedRecorder`] ring; when the cell panics, trips its watchdog, or
//! exhausts retries, the harness dumps the surviving ring to a JSONL
//! sidecar. These tests drive a real `NetworkSim` with the recorder
//! attached as its telemetry sink and check the dump end to end: the
//! meta line parses, the event tail parses, and healthy cells leave no
//! dumps at all.

use std::path::PathBuf;

use damq_bench::json::Json;
use damq_bench::sweep::{self, CellOutcome, IsolationOptions};
use damq_core::BufferKind;
use damq_net::{NetworkConfig, NetworkSim};
use damq_telemetry::Event;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("damq_flight_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(seed: u64) -> NetworkConfig {
    NetworkConfig::new(16, 4)
        .buffer_kind(BufferKind::Damq)
        .slots_per_buffer(4)
        .offered_load(0.5)
        .seed(seed)
}

#[test]
fn forced_panic_cell_dumps_a_readable_flight_record() {
    let dir = temp_dir("panic");
    let cells: Vec<u64> = vec![1, 2, 3];
    let opts = IsolationOptions {
        cycle_budget: 100_000,
        max_retries: 1,
    };
    let reports = sweep::run_isolated_recorded(
        &cells,
        opts,
        64,
        &dir,
        |&seed, watchdog, _attempt, recorder| {
            let mut sim = NetworkSim::with_sink(config(seed), recorder).expect("valid config");
            for cycle in 0..200u64 {
                watchdog.tick();
                sim.step();
                // Cell index 1 (seed 2) hits an injected fault mid-run,
                // every attempt — after telemetry has filled the ring.
                assert!(!(seed == 2 && cycle == 150), "injected fault at cycle 150");
            }
            sim.metrics().delivered()
        },
    );

    assert_eq!(reports.len(), 3);
    // Healthy cells: usable results, no dumps.
    for i in [0usize, 2] {
        assert_eq!(reports[i].report.outcome, CellOutcome::Ok);
        assert!(reports[i].report.result.is_some());
        assert!(reports[i].dumps.is_empty(), "healthy cell left a dump");
    }
    // The faulty cell panicked on both attempts: one dump per attempt.
    match &reports[1].report.outcome {
        CellOutcome::Panicked { message } => {
            assert!(message.contains("injected fault at cycle 150"));
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert_eq!(reports[1].dumps.len(), 2);

    for (attempt, path) in reports[1].dumps.iter().enumerate() {
        let text = std::fs::read_to_string(path).expect("dump readable");
        let mut lines = text.lines();
        // Line 1: the meta record, parseable JSON with the verdict.
        let meta = Json::parse(lines.next().expect("meta line")).expect("meta parses");
        assert_eq!(meta.get("type"), Some(&Json::from("flight_recorder")));
        assert_eq!(meta.get("cell"), Some(&Json::Int(1)));
        assert_eq!(meta.get("attempt"), Some(&Json::Int(attempt as i64)));
        assert_eq!(meta.get("outcome"), Some(&Json::from("panicked")));
        let Some(Json::Str(message)) = meta.get("message") else {
            panic!("meta carries the panic message");
        };
        assert!(message.contains("injected fault"));
        assert_eq!(meta.get("retained"), Some(&Json::Int(64)));
        // The rest: the ring's event tail, valid JSONL telemetry.
        let tail: String = lines.map(|l| format!("{l}\n")).collect();
        let events = Event::parse_trace(&tail).expect("event tail parses");
        assert_eq!(events.len(), 64, "ring capacity of events retained");
        // The tail ends just before the crash cycle.
        let last_cycle = events.last().expect("nonempty").cycle;
        assert!((140..=151).contains(&last_cycle), "tail cycle {last_cycle}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watchdog_trip_dumps_without_retrying() {
    let dir = temp_dir("timeout");
    let reports = sweep::run_isolated_recorded(
        &[0u64],
        IsolationOptions {
            cycle_budget: 50,
            max_retries: 3,
        },
        16,
        &dir,
        |&seed, watchdog, _attempt, recorder| {
            let mut sim = NetworkSim::with_sink(config(seed + 7), recorder).expect("valid config");
            loop {
                watchdog.tick();
                sim.step();
            }
        },
    );
    assert_eq!(reports[0].report.outcome, CellOutcome::TimedOut);
    // Timeouts are deterministic, so exactly one attempt ran.
    assert_eq!(reports[0].dumps.len(), 1);
    let text = std::fs::read_to_string(&reports[0].dumps[0]).expect("dump readable");
    let meta = Json::parse(text.lines().next().expect("meta line")).expect("meta parses");
    assert_eq!(meta.get("outcome"), Some(&Json::from("timed_out")));
    let Some(Json::Str(message)) = meta.get("message") else {
        panic!("meta carries the watchdog message");
    };
    assert!(message.contains("watchdog expired"));
    let _ = std::fs::remove_dir_all(&dir);
}
