//! Integration test for the self-healing sweep harness: a grid with a
//! deliberately panicking cell and a wedged (watchdog-tripping) cell still
//! completes, both incidents land in the report's `robustness` section,
//! and a resumed sweep re-runs only the cells missing from the checkpoint.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use damq_bench::json::{robustness_json, Json, Report};
use damq_bench::resume::Checkpoint;
use damq_bench::sweep::{run_isolated, CellOutcome, IsolationOptions};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("damq_self_healing_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sweep_with_panicking_and_wedged_cells_completes_and_reports_both() {
    let cells: Vec<u64> = (0..8).collect();
    let opts = IsolationOptions {
        cycle_budget: 1_000,
        max_retries: 2,
    };
    let reports = run_isolated(&cells, opts, |&c, watchdog, attempt| {
        match c {
            // A cell whose simulation panics on every attempt.
            3 => panic!("injected: buffer invariant violated in cell 3"),
            // A wedged cell: spins forever, making "progress" ticks only.
            5 => loop {
                watchdog.tick();
            },
            // A flaky cell: the first seed panics, the retry's seed works.
            6 if attempt == 0 => panic!("injected: flaky seed"),
            _ => c * 100 + u64::from(attempt),
        }
    });

    // The sweep completed: every cell has a verdict, in grid order.
    assert_eq!(reports.len(), cells.len());
    let outcomes: Vec<CellOutcome> = reports.iter().map(|r| r.outcome.clone()).collect();
    assert!(matches!(&outcomes[3], CellOutcome::Panicked { message }
        if message.contains("cell 3")));
    assert_eq!(outcomes[5], CellOutcome::TimedOut);
    assert_eq!(outcomes[6], CellOutcome::Retried { attempts: 2 });
    assert_eq!(reports[6].result, Some(601), "retry ran with attempt 1");
    for i in [0usize, 1, 2, 4, 7] {
        assert_eq!(outcomes[i], CellOutcome::Ok, "cell {i}");
        assert_eq!(reports[i].result, Some(i as u64 * 100));
    }

    // Both incident kinds surface in the report's robustness section.
    let mut report = Report::new("self_healing_test");
    for r in &reports {
        report.push_cell(r.result.map_or(Json::Null, Json::from));
    }
    report.set_robustness(robustness_json(&outcomes));
    let body = report.body().render();
    assert!(body.contains(r#""panicked":1"#));
    assert!(body.contains(r#""timed_out":1"#));
    assert!(body.contains(r#""retried":1"#));
    assert!(body.contains(r#""ok":5"#));
    assert!(body.contains(r#""outcome":"panicked""#));
    assert!(body.contains(r#""outcome":"timed_out""#));
    assert!(body.contains("buffer invariant violated"));
}

#[test]
fn resume_reruns_only_the_missing_cells() {
    let dir = temp_dir("resume");
    let cells: Vec<u64> = (0..5).collect();
    let key = |c: &u64| format!("cell{c}");
    let executions = AtomicUsize::new(0);
    let opts = IsolationOptions {
        cycle_budget: 1_000,
        max_retries: 0,
    };

    let run_sweep = |checkpoint: &Checkpoint| {
        let pending: Vec<u64> = cells
            .iter()
            .filter(|c| !checkpoint.contains(&key(c)))
            .copied()
            .collect();
        let reports = run_isolated(&pending, opts, |&c, _watchdog, _attempt| {
            executions.fetch_add(1, Ordering::SeqCst);
            let cell = Json::obj([("value", Json::from(c * 2))]);
            checkpoint.record(&key(&c), &cell).unwrap();
            cell
        });
        (pending, reports)
    };

    // First sweep: all five cells execute and checkpoint.
    let checkpoint = Checkpoint::fresh_in(&dir, "resume_exp").unwrap();
    let (pending, _) = run_sweep(&checkpoint);
    assert_eq!(pending.len(), 5);
    assert_eq!(executions.load(Ordering::SeqCst), 5);
    assert_eq!(checkpoint.len(), 5);

    // Simulate a lost cell (e.g. the process died before finishing it) by
    // rewriting the sidecar without cell 2's line.
    let sidecar = checkpoint.path().to_path_buf();
    let kept: String = std::fs::read_to_string(&sidecar)
        .unwrap()
        .lines()
        .filter(|l| !l.contains("\"cell2\""))
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&sidecar, kept).unwrap();

    // Resumed sweep: exactly one cell (the missing one) re-runs.
    let checkpoint = Checkpoint::load_in(&dir, "resume_exp").unwrap();
    assert_eq!(checkpoint.len(), 4);
    let (pending, reports) = run_sweep(&checkpoint);
    assert_eq!(pending, vec![2]);
    assert_eq!(executions.load(Ordering::SeqCst), 6, "5 + the 1 missing");
    assert_eq!(reports.len(), 1);
    assert_eq!(checkpoint.len(), 5);

    // Every cell is recoverable in grid order after the resume.
    for c in &cells {
        let cell = checkpoint.get(&key(c)).unwrap();
        assert_eq!(
            cell.get("value").and_then(Json::as_f64),
            Some(*c as f64 * 2.0)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_cells_never_reach_the_checkpoint() {
    let dir = temp_dir("failures");
    let checkpoint = Checkpoint::fresh_in(&dir, "fail_exp").unwrap();
    let cells: Vec<u64> = (0..3).collect();
    let opts = IsolationOptions {
        cycle_budget: 100,
        max_retries: 1,
    };
    let reports = run_isolated(&cells, opts, |&c, watchdog, _| {
        if c == 1 {
            panic!("injected failure");
        }
        watchdog.tick();
        checkpoint
            .record(&format!("cell{c}"), &Json::from(c))
            .unwrap();
        c
    });
    assert!(matches!(reports[1].outcome, CellOutcome::Panicked { .. }));
    assert_eq!(checkpoint.len(), 2, "only completed cells checkpoint");
    assert!(!checkpoint.contains("cell1"));
    // The panicked cell stays eligible: a resume would re-run exactly it.
    let _ = std::fs::remove_dir_all(&dir);
}
