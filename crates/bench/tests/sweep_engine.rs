//! Integration tests of the sweep engine: the two properties the
//! harnesses rely on.
//!
//! 1. **Determinism**: the same grid produces byte-identical JSON report
//!    bodies no matter how many worker threads ran it.
//! 2. **Aggregation**: multi-seed aggregation reproduces hand-computed
//!    mean / stddev / 95% CI.

use damq_bench::json::{measurement_json, Json, Report};
use damq_bench::sweep::{self, Aggregate};
use damq_core::BufferKind;
use damq_net::{measure, Measurement, NetworkConfig};

/// Runs a small but real simulation grid and renders the report body.
fn render_grid(workers: usize) -> String {
    let kinds = [BufferKind::Fifo, BufferKind::Damq];
    let loads = [0.2, 0.4];
    let cells: Vec<(usize, usize)> = (0..kinds.len())
        .flat_map(|k| (0..loads.len()).map(move |l| (k, l)))
        .collect();
    let measurements = sweep::run_with_workers(&cells, workers, |&(k, l)| {
        measure(
            NetworkConfig::new(16, 4)
                .buffer_kind(kinds[k])
                .offered_load(loads[l])
                .seed(sweep::cell_seed(sweep::BASE_SEED, &[k as u64, l as u64])),
            200,
            1_000,
        )
        .expect("simulation runs")
    });
    let mut report = Report::new("sweep_engine_test");
    report.meta("grid", Json::from("2 kinds x 2 loads"));
    for (&(k, l), m) in cells.iter().zip(&measurements) {
        report.push_cell(Json::cell(
            [
                ("buffer", Json::from(kinds[k].name())),
                ("offered_load", Json::from(loads[l])),
            ],
            measurement_json(m),
        ));
    }
    report.body().render()
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let serial = render_grid(1);
    for workers in [2, 4, 7] {
        assert_eq!(
            serial,
            render_grid(workers),
            "report body must not depend on worker count ({workers} workers)"
        );
    }
}

#[test]
fn cell_seeds_are_distinct_across_coordinates() {
    let mut seen = std::collections::HashSet::new();
    for a in 0..8u64 {
        for b in 0..8u64 {
            assert!(seen.insert(sweep::cell_seed(sweep::BASE_SEED, &[a, b])));
        }
    }
    // Coordinate order matters: [0, 1] and [1, 0] are different cells.
    assert_ne!(
        sweep::cell_seed(sweep::BASE_SEED, &[0, 1]),
        sweep::cell_seed(sweep::BASE_SEED, &[1, 0])
    );
}

#[test]
fn aggregate_matches_hand_computed_values() {
    // Samples 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample variance 32/7.
    let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
    let a = Aggregate::from_samples(&samples);
    assert_eq!(a.n, 8);
    assert!((a.mean - 5.0).abs() < 1e-12);
    let expected_sd = (32.0f64 / 7.0).sqrt();
    assert!((a.stddev - expected_sd).abs() < 1e-12);
    // 95% CI half-width: t(0.975, df=7) * sd / sqrt(n), t = 2.365.
    let expected_ci = 2.365 * expected_sd / (8.0f64).sqrt();
    assert!((a.ci95 - expected_ci).abs() < 1e-9, "ci95 = {}", a.ci95);
}

#[test]
fn aggregate_measurements_cover_every_field() {
    let mk = |seed: u64| {
        measure(
            NetworkConfig::new(16, 4)
                .buffer_kind(BufferKind::Damq)
                .offered_load(0.3)
                .seed(seed),
            100,
            500,
        )
        .expect("simulation runs")
    };
    let samples: Vec<_> = (1..=4).map(mk).collect();
    let aggs = sweep::aggregate_measurements(&samples);
    assert_eq!(aggs.len(), Measurement::FIELD_NAMES.len());
    for ((name, agg), &expected) in aggs.iter().zip(Measurement::FIELD_NAMES.iter()) {
        assert_eq!(*name, expected);
        assert_eq!(agg.n, 4);
        assert!(agg.stddev >= 0.0);
    }
    // Spot-check one field against a direct computation.
    let delivered: Vec<f64> = samples.iter().map(|m| m.delivered).collect();
    let direct = Aggregate::from_samples(&delivered);
    let from_iter = aggs
        .iter()
        .find(|(name, _)| *name == "delivered")
        .expect("delivered aggregated")
        .1;
    assert_eq!(direct, from_iter);
}
