//! Kind-erased buffers without heap indirection: the [`AnyBuffer`] enum
//! and the [`BuildBuffer`] construction trait.
//!
//! The simulation data path used to hold every input buffer behind a
//! `Box<dyn SwitchBuffer>`: one heap allocation and one virtual call per
//! operation, opaque to the inliner. [`AnyBuffer`] replaces that with an
//! enum over the five concrete designs and static `match` dispatch — the
//! compiler sees concrete types on every arm, inlines the per-design
//! fast paths, and stores the buffer inline in the switch's `Vec`.
//!
//! [`BuildBuffer`] is the construction half: it lets a generic container
//! (`Switch<B>`, `NetworkSim<B, _>`) build its buffers from a
//! [`BufferConfig`] plus a [`BufferKind`] hint without knowing `B`
//! concretely. The hint is honoured by the kind-erased implementors
//! ([`AnyBuffer`], `Box<dyn SwitchBuffer>`) and ignored by the concrete
//! designs, which *are* their kind.

use crate::audit::AuditError;
use crate::buffer::{BufferConfig, BufferKind, FrontMeta, SwitchBuffer};
use crate::error::{ConfigError, Rejected};
use crate::packet::Packet;
use crate::stats::BufferStats;
use crate::{DafcBuffer, DamqBuffer, FifoBuffer, OutputPort, SafcBuffer, SamqBuffer};

/// Any of the five buffer designs, dispatched by `match` instead of
/// through a vtable.
///
/// This is the default buffer type of the simulation stack
/// (`Switch<AnyBuffer>`, `NetworkSim<AnyBuffer, _>`): it keeps the
/// run-time kind-selection API (`BufferKind` in a config) while letting
/// the compiler monomorphize the data path. Use a concrete design
/// (`Switch<DamqBuffer>`) when the kind is fixed at compile time, or
/// `Box<dyn SwitchBuffer>` only for heterogeneous collections outside
/// the hot path.
///
/// # Examples
///
/// ```
/// use damq_core::{AnyBuffer, BufferConfig, BufferKind, SwitchBuffer};
///
/// let buf = BufferConfig::new(4, 4).build_any(BufferKind::Damq)?;
/// assert_eq!(buf.kind(), BufferKind::Damq);
/// assert!(matches!(buf, AnyBuffer::Damq(_)));
/// # Ok::<(), damq_core::ConfigError>(())
/// ```
#[derive(Debug)]
pub enum AnyBuffer {
    /// First-in first-out single queue.
    Fifo(FifoBuffer),
    /// Statically-allocated multi-queue.
    Samq(SamqBuffer),
    /// Statically-allocated fully-connected.
    Safc(SafcBuffer),
    /// Dynamically-allocated multi-queue.
    Damq(DamqBuffer),
    /// Dynamically-allocated fully-connected.
    Dafc(DafcBuffer),
}

/// Statically dispatches `$body` over every variant, binding the concrete
/// buffer as `$b`.
macro_rules! dispatch {
    ($self:expr, $b:ident => $body:expr) => {
        match $self {
            AnyBuffer::Fifo($b) => $body,
            AnyBuffer::Samq($b) => $body,
            AnyBuffer::Safc($b) => $body,
            AnyBuffer::Damq($b) => $body,
            AnyBuffer::Dafc($b) => $body,
        }
    };
}

impl SwitchBuffer for AnyBuffer {
    #[inline]
    fn kind(&self) -> BufferKind {
        dispatch!(self, b => b.kind())
    }

    #[inline]
    fn fanout(&self) -> usize {
        dispatch!(self, b => b.fanout())
    }

    #[inline]
    fn capacity_slots(&self) -> usize {
        dispatch!(self, b => b.capacity_slots())
    }

    #[inline]
    fn used_slots(&self) -> usize {
        dispatch!(self, b => b.used_slots())
    }

    #[inline]
    fn slot_bytes(&self) -> usize {
        dispatch!(self, b => b.slot_bytes())
    }

    #[inline]
    fn read_ports(&self) -> usize {
        dispatch!(self, b => b.read_ports())
    }

    #[inline]
    fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        dispatch!(self, b => b.can_accept(output, slots))
    }

    #[inline]
    fn accept_capacity(&self, output: OutputPort) -> usize {
        dispatch!(self, b => b.accept_capacity(output))
    }

    #[inline]
    fn front_meta(&self, output: OutputPort) -> Option<FrontMeta> {
        dispatch!(self, b => b.front_meta(output))
    }

    #[inline]
    fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
        dispatch!(self, b => b.try_enqueue(output, packet))
    }

    #[inline]
    fn queue_len(&self, output: OutputPort) -> usize {
        dispatch!(self, b => b.queue_len(output))
    }

    #[inline]
    fn queue_lens_into(&self, lens: &mut [u16]) {
        dispatch!(self, b => b.queue_lens_into(lens))
    }

    #[inline]
    fn front(&self, output: OutputPort) -> Option<&Packet> {
        dispatch!(self, b => b.front(output))
    }

    #[inline]
    fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        dispatch!(self, b => b.dequeue(output))
    }

    #[inline]
    fn packet_count(&self) -> usize {
        dispatch!(self, b => b.packet_count())
    }

    fn stats(&self) -> &BufferStats {
        dispatch!(self, b => b.stats())
    }

    fn reset_stats(&mut self) {
        dispatch!(self, b => b.reset_stats())
    }

    // The defaulted methods are forwarded too, so per-design overrides
    // (FIFO's head-of-line accounting) take effect through the enum and
    // the rest stay on the concrete types' inlined fast paths.

    #[inline]
    fn free_slots(&self) -> usize {
        dispatch!(self, b => b.free_slots())
    }

    #[inline]
    fn is_empty(&self) -> bool {
        dispatch!(self, b => b.is_empty())
    }

    fn eligible_outputs(&self) -> Vec<OutputPort> {
        dispatch!(self, b => b.eligible_outputs())
    }

    #[inline]
    fn note_hol_blocked(&mut self) -> u64 {
        dispatch!(self, b => b.note_hol_blocked())
    }

    #[inline]
    fn kill_slot(&mut self, hint: OutputPort) -> bool {
        dispatch!(self, b => b.kill_slot(hint))
    }

    #[inline]
    fn dead_slots(&self) -> usize {
        dispatch!(self, b => b.dead_slots())
    }

    fn audit(&self) -> Result<(), AuditError> {
        dispatch!(self, b => b.audit())
    }

    fn check_invariants(&self) {
        dispatch!(self, b => b.check_invariants())
    }
}

/// Construction of a buffer type from its geometry plus a design hint —
/// the bridge that lets `Switch<B>` and `NetworkSim<B, _>` stay generic
/// while still being configured through [`BufferKind`].
///
/// Kind-erased implementors ([`AnyBuffer`], `Box<dyn SwitchBuffer>`)
/// build the design `kind` names. Concrete designs ignore the hint: a
/// `Switch<DamqBuffer>` holds DAMQ buffers no matter what the config's
/// `buffer_kind` says (the config field exists for the kind-erased
/// default path).
pub trait BuildBuffer: SwitchBuffer + Sized {
    /// Builds an empty buffer for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid dimensions (zero sizes, or a
    /// capacity not divisible by the fanout for static designs).
    fn build_buffer(config: BufferConfig, kind: BufferKind) -> Result<Self, ConfigError>;
}

impl BuildBuffer for AnyBuffer {
    fn build_buffer(config: BufferConfig, kind: BufferKind) -> Result<Self, ConfigError> {
        config.build_any(kind)
    }
}

impl BuildBuffer for FifoBuffer {
    fn build_buffer(config: BufferConfig, _kind: BufferKind) -> Result<Self, ConfigError> {
        FifoBuffer::new(config)
    }
}

impl BuildBuffer for SamqBuffer {
    fn build_buffer(config: BufferConfig, _kind: BufferKind) -> Result<Self, ConfigError> {
        SamqBuffer::new(config)
    }
}

impl BuildBuffer for SafcBuffer {
    fn build_buffer(config: BufferConfig, _kind: BufferKind) -> Result<Self, ConfigError> {
        SafcBuffer::new(config)
    }
}

impl BuildBuffer for DamqBuffer {
    fn build_buffer(config: BufferConfig, _kind: BufferKind) -> Result<Self, ConfigError> {
        DamqBuffer::new(config)
    }
}

impl BuildBuffer for DafcBuffer {
    fn build_buffer(config: BufferConfig, _kind: BufferKind) -> Result<Self, ConfigError> {
        DafcBuffer::new(config)
    }
}

// The compatibility facade: the pre-monomorphization boxed representation
// remains a first-class buffer type, so generic containers can still be
// instantiated with `Box<dyn SwitchBuffer>` (the dispatch-equivalence
// tests drive both paths through the same simulations). Kept out of the
// hot path — `cargo xtask lint` forbids it in the switch and network
// crates.
impl SwitchBuffer for Box<dyn SwitchBuffer> {
    fn kind(&self) -> BufferKind {
        (**self).kind()
    }

    fn fanout(&self) -> usize {
        (**self).fanout()
    }

    fn capacity_slots(&self) -> usize {
        (**self).capacity_slots()
    }

    fn used_slots(&self) -> usize {
        (**self).used_slots()
    }

    fn slot_bytes(&self) -> usize {
        (**self).slot_bytes()
    }

    fn read_ports(&self) -> usize {
        (**self).read_ports()
    }

    fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        (**self).can_accept(output, slots)
    }

    fn accept_capacity(&self, output: OutputPort) -> usize {
        (**self).accept_capacity(output)
    }

    fn front_meta(&self, output: OutputPort) -> Option<FrontMeta> {
        (**self).front_meta(output)
    }

    fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
        (**self).try_enqueue(output, packet)
    }

    fn queue_len(&self, output: OutputPort) -> usize {
        (**self).queue_len(output)
    }

    fn queue_lens_into(&self, lens: &mut [u16]) {
        (**self).queue_lens_into(lens)
    }

    fn front(&self, output: OutputPort) -> Option<&Packet> {
        (**self).front(output)
    }

    fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        (**self).dequeue(output)
    }

    fn packet_count(&self) -> usize {
        (**self).packet_count()
    }

    fn stats(&self) -> &BufferStats {
        (**self).stats()
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }

    fn free_slots(&self) -> usize {
        (**self).free_slots()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn eligible_outputs(&self) -> Vec<OutputPort> {
        (**self).eligible_outputs()
    }

    fn note_hol_blocked(&mut self) -> u64 {
        (**self).note_hol_blocked()
    }

    fn kill_slot(&mut self, hint: OutputPort) -> bool {
        (**self).kill_slot(hint)
    }

    fn dead_slots(&self) -> usize {
        (**self).dead_slots()
    }

    fn audit(&self) -> Result<(), AuditError> {
        (**self).audit()
    }

    fn check_invariants(&self) {
        (**self).check_invariants()
    }
}

impl BuildBuffer for Box<dyn SwitchBuffer> {
    fn build_buffer(config: BufferConfig, kind: BufferKind) -> Result<Self, ConfigError> {
        config.build(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn pkt(n: usize) -> Packet {
        Packet::builder(NodeId::new(n), NodeId::new(n)).build()
    }

    #[test]
    fn build_any_produces_every_kind() {
        let cfg = BufferConfig::new(4, 8);
        for kind in BufferKind::EXTENDED {
            let buf = cfg.build_any(kind).expect("valid config");
            assert_eq!(buf.kind(), kind);
            assert_eq!(buf.fanout(), 4);
            assert_eq!(buf.capacity_slots(), 8);
            assert_eq!(buf.slot_bytes(), cfg.slot_size());
            assert!(buf.is_empty());
            assert!(buf.audit().is_ok());
        }
    }

    #[test]
    fn build_any_propagates_config_errors() {
        assert_eq!(
            BufferConfig::new(4, 6).build_any(BufferKind::Samq).err(),
            Some(ConfigError::CapacityNotDivisible {
                capacity: 6,
                fanout: 4
            })
        );
    }

    #[test]
    fn enum_dispatch_matches_boxed_dispatch_per_operation() {
        let cfg = BufferConfig::new(4, 4);
        for kind in BufferKind::EXTENDED {
            let mut a = AnyBuffer::build_buffer(cfg, kind).unwrap();
            let mut b = <Box<dyn SwitchBuffer>>::build_buffer(cfg, kind).unwrap();
            for (i, out) in [0usize, 1, 1, 3, 0].into_iter().enumerate() {
                let out = OutputPort::new(out);
                assert_eq!(a.can_accept(out, 1), b.can_accept(out, 1), "{kind}");
                let ra = a.try_enqueue(out, pkt(i));
                let rb = b.try_enqueue(out, pkt(i));
                assert_eq!(ra.is_ok(), rb.is_ok(), "{kind}");
            }
            for out in OutputPort::all(4) {
                assert_eq!(a.queue_len(out), b.queue_len(out), "{kind}");
                assert_eq!(a.front(out), b.front(out), "{kind}");
                assert_eq!(a.dequeue(out), b.dequeue(out), "{kind}");
            }
            assert_eq!(a.note_hol_blocked(), b.note_hol_blocked(), "{kind}");
            assert_eq!(a.stats(), b.stats(), "{kind}");
            assert_eq!(a.packet_count(), b.packet_count(), "{kind}");
            assert_eq!(a.used_slots(), b.used_slots(), "{kind}");
            assert_eq!(a.free_slots(), b.free_slots(), "{kind}");
            assert_eq!(a.eligible_outputs(), b.eligible_outputs(), "{kind}");
            assert_eq!(a.read_ports(), b.read_ports(), "{kind}");
            assert!(a.audit().is_ok() && b.audit().is_ok(), "{kind}");
            a.reset_stats();
            b.reset_stats();
            assert_eq!(a.stats(), b.stats(), "{kind}");
            a.check_invariants();
            b.check_invariants();
        }
    }

    #[test]
    fn fifo_hol_accounting_survives_enum_dispatch() {
        let mut buf = BufferConfig::new(4, 4).build_any(BufferKind::Fifo).unwrap();
        buf.try_enqueue(OutputPort::new(0), pkt(0)).unwrap();
        buf.try_enqueue(OutputPort::new(1), pkt(1)).unwrap();
        // The out1 packet sits behind the out0 head: one blocked packet.
        assert_eq!(buf.note_hol_blocked(), 1);
        assert_eq!(buf.stats().hol_blocked(), 1);
    }

    #[test]
    fn concrete_builders_ignore_the_kind_hint() {
        let cfg = BufferConfig::new(4, 4);
        let damq = DamqBuffer::build_buffer(cfg, BufferKind::Fifo).unwrap();
        assert_eq!(damq.kind(), BufferKind::Damq);
        let fifo = FifoBuffer::build_buffer(cfg, BufferKind::Damq).unwrap();
        assert_eq!(fifo.kind(), BufferKind::Fifo);
    }
}
