//! The frozen array-of-structs reference designs.
//!
//! The canonical five buffer types ([`FifoBuffer`](crate::FifoBuffer),
//! [`SamqBuffer`](crate::SamqBuffer), [`SafcBuffer`](crate::SafcBuffer),
//! [`DamqBuffer`](crate::DamqBuffer), [`DafcBuffer`](crate::DafcBuffer))
//! store their state as structure-of-arrays index registers (see
//! [`SoaSlots`](crate::SoaSlots) and `docs/PERFORMANCE.md`). This module
//! preserves the pre-SoA implementations byte for byte — per-packet
//! `Entry` structs in `VecDeque`s and the linked
//! [`SlotPool`](crate::SlotPool) — as *differential references*:
//!
//! * the dispatch-equivalence fingerprints
//!   (`crates/net/tests/dispatch_equivalence.rs`) run whole simulations
//!   with `NetworkSim::<AosDamqBuffer>::typed(..)` and demand
//!   byte-identical telemetry against the SoA build, for all five
//!   designs, with and without fault injection;
//! * the seeded property sweep (`crates/core/tests/soa_equivalence.rs`)
//!   drives each AoS/SoA pair through the same operation streams.
//!
//! Nothing in the simulation stack uses these types on a hot path; they
//! exist so that every future storage-layout change has an executable
//! specification to diff against.

use std::collections::VecDeque;

use crate::audit::{audit_ensure, strict_audit, AuditError};
use crate::buffer::{BufferConfig, BufferKind, SwitchBuffer};
use crate::error::{ConfigError, RejectReason, Rejected};
use crate::packet::Packet;
use crate::slots::SlotPool;
use crate::stats::BufferStats;
use crate::{BuildBuffer, OutputPort};

#[derive(Debug, Clone)]
struct FifoEntry {
    output: OutputPort,
    slots: usize,
    packet: Packet,
}

/// The pre-SoA [`FifoBuffer`](crate::FifoBuffer): a `VecDeque` of
/// per-packet entries.
#[derive(Debug)]
pub struct AosFifoBuffer {
    config: BufferConfig,
    queue: VecDeque<FifoEntry>,
    used_slots: usize,
    dead: usize,
    pending_kills: usize,
    stats: BufferStats,
}

impl AosFifoBuffer {
    /// Creates an empty AoS FIFO buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration has a zero dimension.
    pub fn new(config: BufferConfig) -> Result<Self, ConfigError> {
        config.validate(BufferKind::Fifo)?;
        Ok(AosFifoBuffer {
            config,
            queue: VecDeque::new(),
            used_slots: 0,
            dead: 0,
            pending_kills: 0,
            stats: BufferStats::new(),
        })
    }

    fn head_matches(&self, output: OutputPort) -> bool {
        self.queue.front().map(|e| e.output) == Some(output)
    }
}

impl SwitchBuffer for AosFifoBuffer {
    fn kind(&self) -> BufferKind {
        BufferKind::Fifo
    }

    fn fanout(&self) -> usize {
        self.config.fanout_count()
    }

    fn capacity_slots(&self) -> usize {
        self.config.capacity()
    }

    fn used_slots(&self) -> usize {
        self.used_slots
    }

    fn slot_bytes(&self) -> usize {
        self.config.slot_size()
    }

    fn read_ports(&self) -> usize {
        1
    }

    fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        output.index() < self.fanout()
            && self.used_slots + slots + self.dead_slots() <= self.capacity_slots()
    }

    fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
        let slots = packet.slots_needed(self.slot_bytes());
        if output.index() >= self.fanout() {
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::NoSuchOutput,
            });
        }
        if slots > self.capacity_slots() {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::PacketTooLarge,
            });
        }
        if slots + self.dead_slots() > self.capacity_slots() {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::Faulted,
            });
        }
        if self.used_slots + slots + self.dead_slots() > self.capacity_slots() {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::BufferFull,
            });
        }
        self.used_slots += slots;
        self.stats.record_accepted(slots);
        self.stats.observe_used_slots(self.used_slots);
        self.queue.push_back(FifoEntry {
            output,
            slots,
            packet,
        });
        strict_audit!(self);
        Ok(())
    }

    fn queue_len(&self, output: OutputPort) -> usize {
        if self.head_matches(output) {
            self.queue.len()
        } else {
            0
        }
    }

    fn front(&self, output: OutputPort) -> Option<&Packet> {
        self.queue
            .front()
            .filter(|e| e.output == output)
            .map(|e| &e.packet)
    }

    fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        if !self.head_matches(output) {
            return None;
        }
        // lint: allow — head_matches() proved the queue is non-empty.
        let entry = self.queue.pop_front().expect("head checked above");
        self.used_slots -= entry.slots;
        let consumed = self.pending_kills.min(entry.slots);
        self.pending_kills -= consumed;
        self.dead += consumed;
        self.stats.record_forwarded();
        strict_audit!(self);
        Some(entry.packet)
    }

    fn packet_count(&self) -> usize {
        self.queue.len()
    }

    fn stats(&self) -> &BufferStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn kill_slot(&mut self, hint: OutputPort) -> bool {
        let _ = hint;
        if self.dead_slots() >= self.capacity_slots() {
            return false;
        }
        if self.used_slots + self.dead < self.capacity_slots() {
            self.dead += 1;
        } else {
            self.pending_kills += 1;
        }
        strict_audit!(self);
        true
    }

    fn dead_slots(&self) -> usize {
        self.dead + self.pending_kills
    }

    fn note_hol_blocked(&mut self) -> u64 {
        let Some(head) = self.queue.front().map(|e| e.output) else {
            return 0;
        };
        let blocked = self
            .queue
            .iter()
            .skip(1)
            .filter(|e| e.output != head)
            .count() as u64;
        self.stats.record_hol_blocked(blocked);
        blocked
    }

    fn audit(&self) -> Result<(), AuditError> {
        let sum: usize = self.queue.iter().map(|e| e.slots).sum();
        audit_ensure!(
            sum == self.used_slots,
            "register-sync",
            "FIFO used_slots register says {} but entries sum to {sum}",
            self.used_slots
        );
        audit_ensure!(
            self.used_slots + self.dead <= self.capacity_slots(),
            "capacity-bound",
            "FIFO holds {} live + {} dead of {} slots",
            self.used_slots,
            self.dead,
            self.capacity_slots()
        );
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct MqEntry {
    slots: usize,
    packet: Packet,
}

/// The pre-SoA static multi-queue storage shared by [`AosSamqBuffer`]
/// and [`AosSafcBuffer`]: per-output `VecDeque`s over statically
/// partitioned slot budgets.
#[derive(Debug)]
struct AosStaticMultiQueue {
    config: BufferConfig,
    per_queue_capacity: usize,
    queues: Vec<VecDeque<MqEntry>>,
    queue_used: Vec<usize>,
    dead: Vec<usize>,
    pending_kills: Vec<usize>,
    stats: BufferStats,
}

impl AosStaticMultiQueue {
    fn new(config: BufferConfig, kind: BufferKind) -> Result<Self, ConfigError> {
        debug_assert!(kind.is_statically_allocated());
        config.validate(kind)?;
        let fanout = config.fanout_count();
        Ok(AosStaticMultiQueue {
            config,
            per_queue_capacity: config.capacity() / fanout,
            queues: (0..fanout).map(|_| VecDeque::new()).collect(),
            queue_used: vec![0; fanout],
            dead: vec![0; fanout],
            pending_kills: vec![0; fanout],
            stats: BufferStats::new(),
        })
    }

    fn used_slots(&self) -> usize {
        self.queue_used.iter().sum()
    }

    fn dead_slots(&self) -> usize {
        self.dead.iter().sum::<usize>() + self.pending_kills.iter().sum::<usize>()
    }

    fn kill_slot(&mut self, hint: OutputPort) -> bool {
        let fanout = self.queues.len();
        let start = if hint.index() < fanout {
            hint.index()
        } else {
            0
        };
        let target = (0..fanout)
            .map(|off| (start + off) % fanout)
            .find(|&q| self.dead[q] + self.pending_kills[q] < self.per_queue_capacity);
        let Some(q) = target else {
            return false;
        };
        if self.queue_used[q] + self.dead[q] < self.per_queue_capacity {
            self.dead[q] += 1;
        } else {
            self.pending_kills[q] += 1;
        }
        strict_audit!(self);
        true
    }

    fn faulted_slots(&self, q: usize) -> usize {
        self.dead[q] + self.pending_kills[q]
    }

    fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        output.index() < self.queues.len()
            && self.queue_used[output.index()] + slots + self.faulted_slots(output.index())
                <= self.per_queue_capacity
    }

    fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
        if output.index() >= self.queues.len() {
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::NoSuchOutput,
            });
        }
        let slots = packet.slots_needed(self.config.slot_size());
        if slots > self.per_queue_capacity {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::PacketTooLarge,
            });
        }
        if slots + self.faulted_slots(output.index()) > self.per_queue_capacity {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::Faulted,
            });
        }
        if self.queue_used[output.index()] + slots + self.faulted_slots(output.index())
            > self.per_queue_capacity
        {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::QueueFull,
            });
        }
        self.queue_used[output.index()] += slots;
        self.stats.record_accepted(slots);
        let used = self.used_slots();
        self.stats.observe_used_slots(used);
        self.queues[output.index()].push_back(MqEntry { slots, packet });
        strict_audit!(self);
        Ok(())
    }

    fn queue_len(&self, output: OutputPort) -> usize {
        self.queues.get(output.index()).map_or(0, VecDeque::len)
    }

    fn front(&self, output: OutputPort) -> Option<&Packet> {
        self.queues.get(output.index())?.front().map(|e| &e.packet)
    }

    fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        let entry = self.queues.get_mut(output.index())?.pop_front()?;
        let q = output.index();
        self.queue_used[q] -= entry.slots;
        let consumed = self.pending_kills[q].min(entry.slots);
        self.pending_kills[q] -= consumed;
        self.dead[q] += consumed;
        self.stats.record_forwarded();
        strict_audit!(self);
        Some(entry.packet)
    }

    fn packet_count(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn audit(&self) -> Result<(), AuditError> {
        for (i, q) in self.queues.iter().enumerate() {
            let sum: usize = q.iter().map(|e| e.slots).sum();
            audit_ensure!(
                sum == self.queue_used[i],
                "register-sync",
                "queue {i}: used-slot register says {} but entries sum to {sum}",
                self.queue_used[i]
            );
            audit_ensure!(
                self.queue_used[i] + self.dead[i] <= self.per_queue_capacity,
                "capacity-bound",
                "queue {i} holds {} live + {} dead of its {} statically-partitioned slots",
                self.queue_used[i],
                self.dead[i],
                self.per_queue_capacity
            );
        }
        Ok(())
    }
}

/// Implements `SwitchBuffer` for an AoS newtype over
/// [`AosStaticMultiQueue`].
macro_rules! impl_aos_static_buffer {
    ($ty:ty, $kind:expr, $read_ports:expr) => {
        impl SwitchBuffer for $ty {
            fn kind(&self) -> BufferKind {
                $kind
            }

            fn fanout(&self) -> usize {
                self.inner.config.fanout_count()
            }

            fn capacity_slots(&self) -> usize {
                self.inner.config.capacity()
            }

            fn used_slots(&self) -> usize {
                self.inner.used_slots()
            }

            fn slot_bytes(&self) -> usize {
                self.inner.config.slot_size()
            }

            fn read_ports(&self) -> usize {
                let f: fn(&$ty) -> usize = $read_ports;
                f(self)
            }

            fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
                self.inner.can_accept(output, slots)
            }

            fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
                self.inner.try_enqueue(output, packet)
            }

            fn queue_len(&self, output: OutputPort) -> usize {
                self.inner.queue_len(output)
            }

            fn front(&self, output: OutputPort) -> Option<&Packet> {
                self.inner.front(output)
            }

            fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
                self.inner.dequeue(output)
            }

            fn packet_count(&self) -> usize {
                self.inner.packet_count()
            }

            fn stats(&self) -> &BufferStats {
                &self.inner.stats
            }

            fn reset_stats(&mut self) {
                self.inner.stats.reset()
            }

            fn kill_slot(&mut self, hint: OutputPort) -> bool {
                self.inner.kill_slot(hint)
            }

            fn dead_slots(&self) -> usize {
                self.inner.dead_slots()
            }

            fn audit(&self) -> Result<(), AuditError> {
                self.inner.audit()
            }
        }
    };
}

/// The pre-SoA [`SamqBuffer`](crate::SamqBuffer).
#[derive(Debug)]
pub struct AosSamqBuffer {
    inner: AosStaticMultiQueue,
}

impl AosSamqBuffer {
    /// Creates an empty AoS SAMQ buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if a dimension is zero or the capacity
    /// does not divide evenly among the output queues.
    pub fn new(config: BufferConfig) -> Result<Self, ConfigError> {
        Ok(AosSamqBuffer {
            inner: AosStaticMultiQueue::new(config, BufferKind::Samq)?,
        })
    }
}

impl_aos_static_buffer!(AosSamqBuffer, BufferKind::Samq, |_b| 1);

/// The pre-SoA [`SafcBuffer`](crate::SafcBuffer).
#[derive(Debug)]
pub struct AosSafcBuffer {
    inner: AosStaticMultiQueue,
}

impl AosSafcBuffer {
    /// Creates an empty AoS SAFC buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if a dimension is zero or the capacity
    /// does not divide evenly among the output queues.
    pub fn new(config: BufferConfig) -> Result<Self, ConfigError> {
        Ok(AosSafcBuffer {
            inner: AosStaticMultiQueue::new(config, BufferKind::Safc)?,
        })
    }
}

impl_aos_static_buffer!(AosSafcBuffer, BufferKind::Safc, |b: &AosSafcBuffer| b
    .inner
    .config
    .fanout_count());

/// The pre-SoA [`DamqBuffer`](crate::DamqBuffer): linked lists through
/// the per-slot pointer registers of [`SlotPool`].
#[derive(Debug)]
pub struct AosDamqBuffer {
    config: BufferConfig,
    pool: SlotPool,
    stats: BufferStats,
}

impl AosDamqBuffer {
    /// Creates an empty AoS DAMQ buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration has a zero dimension.
    pub fn new(config: BufferConfig) -> Result<Self, ConfigError> {
        config.validate(BufferKind::Damq)?;
        Ok(AosDamqBuffer {
            config,
            pool: SlotPool::new(config.capacity(), config.fanout_count()),
            stats: BufferStats::new(),
        })
    }

    /// Direct read access to the underlying linked slot pool.
    pub fn pool(&self) -> &SlotPool {
        &self.pool
    }
}

impl SwitchBuffer for AosDamqBuffer {
    fn kind(&self) -> BufferKind {
        BufferKind::Damq
    }

    fn fanout(&self) -> usize {
        self.config.fanout_count()
    }

    fn capacity_slots(&self) -> usize {
        self.config.capacity()
    }

    fn used_slots(&self) -> usize {
        self.pool.used_count()
    }

    fn slot_bytes(&self) -> usize {
        self.config.slot_size()
    }

    fn read_ports(&self) -> usize {
        1
    }

    fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        output.index() < self.fanout() && slots <= self.pool.free_count()
    }

    fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
        if output.index() >= self.fanout() {
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::NoSuchOutput,
            });
        }
        let slots = packet.slots_needed(self.slot_bytes());
        if slots > self.capacity_slots() {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::PacketTooLarge,
            });
        }
        if slots > self.pool.effective_capacity() {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::Faulted,
            });
        }
        match self.pool.enqueue(output.index(), packet, slots) {
            Ok(()) => {
                self.stats.record_accepted(slots);
                self.stats.observe_used_slots(self.pool.used_count());
                Ok(())
            }
            Err(packet) => {
                self.stats.record_rejected();
                Err(Rejected {
                    packet,
                    output,
                    reason: RejectReason::BufferFull,
                })
            }
        }
    }

    fn queue_len(&self, output: OutputPort) -> usize {
        if output.index() < self.fanout() {
            self.pool.queue_packets(output.index())
        } else {
            0
        }
    }

    fn front(&self, output: OutputPort) -> Option<&Packet> {
        if output.index() < self.fanout() {
            self.pool.front(output.index())
        } else {
            None
        }
    }

    fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        if output.index() >= self.fanout() {
            return None;
        }
        let packet = self.pool.dequeue(output.index())?;
        self.stats.record_forwarded();
        Some(packet)
    }

    fn packet_count(&self) -> usize {
        (0..self.fanout()).map(|l| self.pool.queue_packets(l)).sum()
    }

    fn stats(&self) -> &BufferStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn kill_slot(&mut self, hint: OutputPort) -> bool {
        let _ = hint;
        self.pool.kill_slot()
    }

    fn dead_slots(&self) -> usize {
        self.pool.dead_count()
    }

    fn audit(&self) -> Result<(), AuditError> {
        self.pool.audit()?;
        audit_ensure!(
            self.used_slots() <= self.capacity_slots(),
            "capacity-bound",
            "pool reports {} used of {} slots",
            self.used_slots(),
            self.capacity_slots()
        );
        Ok(())
    }
}

/// The pre-SoA [`DafcBuffer`](crate::DafcBuffer): [`AosDamqBuffer`]
/// storage behind one read port per output.
#[derive(Debug)]
pub struct AosDafcBuffer {
    inner: AosDamqBuffer,
}

impl AosDafcBuffer {
    /// Creates an empty AoS DAFC buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration has a zero dimension.
    pub fn new(config: BufferConfig) -> Result<Self, ConfigError> {
        Ok(AosDafcBuffer {
            inner: AosDamqBuffer::new(config)?,
        })
    }
}

impl SwitchBuffer for AosDafcBuffer {
    fn kind(&self) -> BufferKind {
        BufferKind::Dafc
    }

    fn fanout(&self) -> usize {
        self.inner.fanout()
    }

    fn capacity_slots(&self) -> usize {
        self.inner.capacity_slots()
    }

    fn used_slots(&self) -> usize {
        self.inner.used_slots()
    }

    fn slot_bytes(&self) -> usize {
        self.inner.slot_bytes()
    }

    fn read_ports(&self) -> usize {
        self.inner.fanout()
    }

    fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        self.inner.can_accept(output, slots)
    }

    fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
        self.inner.try_enqueue(output, packet)
    }

    fn queue_len(&self, output: OutputPort) -> usize {
        self.inner.queue_len(output)
    }

    fn front(&self, output: OutputPort) -> Option<&Packet> {
        self.inner.front(output)
    }

    fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        self.inner.dequeue(output)
    }

    fn packet_count(&self) -> usize {
        self.inner.packet_count()
    }

    fn stats(&self) -> &BufferStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }

    fn kill_slot(&mut self, hint: OutputPort) -> bool {
        self.inner.kill_slot(hint)
    }

    fn dead_slots(&self) -> usize {
        self.inner.dead_slots()
    }

    fn audit(&self) -> Result<(), AuditError> {
        self.inner.audit()
    }
}

impl BuildBuffer for AosFifoBuffer {
    fn build_buffer(config: BufferConfig, _kind: BufferKind) -> Result<Self, ConfigError> {
        AosFifoBuffer::new(config)
    }
}

impl BuildBuffer for AosSamqBuffer {
    fn build_buffer(config: BufferConfig, _kind: BufferKind) -> Result<Self, ConfigError> {
        AosSamqBuffer::new(config)
    }
}

impl BuildBuffer for AosSafcBuffer {
    fn build_buffer(config: BufferConfig, _kind: BufferKind) -> Result<Self, ConfigError> {
        AosSafcBuffer::new(config)
    }
}

impl BuildBuffer for AosDamqBuffer {
    fn build_buffer(config: BufferConfig, _kind: BufferKind) -> Result<Self, ConfigError> {
        AosDamqBuffer::new(config)
    }
}

impl BuildBuffer for AosDafcBuffer {
    fn build_buffer(config: BufferConfig, _kind: BufferKind) -> Result<Self, ConfigError> {
        AosDafcBuffer::new(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn pkt(src: usize) -> Packet {
        Packet::builder(NodeId::new(src), NodeId::new(1)).build()
    }

    #[test]
    fn aos_designs_report_the_canonical_kinds() {
        let cfg = BufferConfig::new(4, 8);
        assert_eq!(AosFifoBuffer::new(cfg).unwrap().kind(), BufferKind::Fifo);
        assert_eq!(AosSamqBuffer::new(cfg).unwrap().kind(), BufferKind::Samq);
        assert_eq!(AosSafcBuffer::new(cfg).unwrap().kind(), BufferKind::Safc);
        assert_eq!(AosDamqBuffer::new(cfg).unwrap().kind(), BufferKind::Damq);
        assert_eq!(AosDafcBuffer::new(cfg).unwrap().kind(), BufferKind::Dafc);
    }

    #[test]
    fn aos_damq_round_trip_and_audit() {
        let mut b = AosDamqBuffer::new(BufferConfig::new(4, 4)).unwrap();
        b.try_enqueue(OutputPort::new(2), pkt(0)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(1)).unwrap();
        assert_eq!(b.packet_count(), 2);
        assert_eq!(
            b.dequeue(OutputPort::new(1)).unwrap().source(),
            NodeId::new(1)
        );
        b.check_invariants();
    }

    #[test]
    fn aos_fifo_head_of_line_semantics_survive() {
        let mut b = AosFifoBuffer::new(BufferConfig::new(4, 4)).unwrap();
        b.try_enqueue(OutputPort::new(3), pkt(0)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(1)).unwrap();
        assert_eq!(b.queue_len(OutputPort::new(1)), 0);
        assert_eq!(b.note_hol_blocked(), 1);
    }
}
