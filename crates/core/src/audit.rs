//! Machine-checkable invariant audits over the buffer structures.
//!
//! The DAMQ mechanism is pure pointer-register bookkeeping (§3.1: per-slot
//! `next` registers, per-queue head/tail registers, a shared free list).
//! A silent corruption there does not crash — it produces plausible but
//! wrong Table 2 / Figure 3 numbers. The audits in this module turn the
//! bookkeeping contract into a checked property:
//!
//! * every slot is on exactly one list (free or some queue) — the lists
//!   **partition** the storage,
//! * no list contains a cycle,
//! * every head/tail/`slot_count`/`packet_count` register agrees with the
//!   links it summarises,
//! * multi-slot packets occupy contiguous runs of their queue list.
//!
//! Violations are reported as [`AuditError`] values rather than panics so
//! the exhaustive model checker (`damq-verify`) can count and attribute
//! them. The [`SwitchBuffer::check_invariants`] bridge panics on `Err` for
//! assert-style use in tests.
//!
//! With the `strict-audit` cargo feature enabled, a full audit runs after
//! **every** enqueue and dequeue on every buffer — expensive (each audit
//! walks all lists) but it pins a corruption to the exact operation that
//! introduced it. Without the feature only cheap O(1) debug assertions
//! remain on the hot paths.
//!
//! [`SwitchBuffer::check_invariants`]: crate::SwitchBuffer::check_invariants

use std::error::Error;
use std::fmt;

/// A violated structural invariant, reported by an `audit()` pass.
///
/// Carries the short name of the invariant that failed (stable, suitable
/// for grouping in the model checker) and a human-readable detail naming
/// the offending slot/queue/register.
///
/// # Examples
///
/// ```
/// use damq_core::AuditError;
///
/// let e = AuditError::new("list-partition", "slot slot3 appears on two lists");
/// assert_eq!(e.invariant(), "list-partition");
/// assert!(e.to_string().contains("slot3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    invariant: &'static str,
    detail: String,
}

impl AuditError {
    /// Creates an audit error for `invariant` with a human-readable detail.
    pub fn new(invariant: &'static str, detail: impl Into<String>) -> Self {
        AuditError {
            invariant,
            detail: detail.into(),
        }
    }

    /// Short stable name of the violated invariant (e.g. `"list-partition"`).
    pub fn invariant(&self) -> &'static str {
        self.invariant
    }

    /// Human-readable description of the violation.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant '{}' violated: {}",
            self.invariant, self.detail
        )
    }
}

impl Error for AuditError {}

/// Returns an [`AuditError`] from the enclosing function unless `cond`
/// holds. Crate-internal: the audit implementations use it the way tests
/// use `assert!`.
macro_rules! audit_ensure {
    ($cond:expr, $invariant:expr, $($arg:tt)+) => {
        if !$cond {
            return Err($crate::audit::AuditError::new($invariant, format!($($arg)+)));
        }
    };
}

/// Runs a full `audit()` on `$subject` after a mutating operation when the
/// `strict-audit` feature is on; compiles to nothing otherwise.
///
/// Panicking (rather than propagating) is deliberate: the audit sits on
/// infallible-by-contract paths, and under `strict-audit` a violation must
/// stop the run at the operation that introduced it.
macro_rules! strict_audit {
    ($subject:expr) => {
        #[cfg(feature = "strict-audit")]
        {
            if let Err(e) = $subject.audit() {
                // lint: allow — failing fast at the corrupting operation is
                // the whole point of the strict-audit feature.
                panic!("strict-audit: {e}");
            }
        }
    };
}

pub(crate) use audit_ensure;
pub(crate) use strict_audit;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_carries_invariant_and_detail() {
        let e = AuditError::new("register-sync", "queue 2: slot_count register disagrees");
        assert_eq!(e.invariant(), "register-sync");
        assert!(e.detail().contains("queue 2"));
        let shown = e.to_string();
        assert!(shown.contains("register-sync") && shown.contains("queue 2"));
    }

    #[test]
    fn audit_ensure_passes_and_fails() {
        fn check(x: usize) -> Result<(), AuditError> {
            audit_ensure!(x < 10, "bound", "x = {x} out of range");
            Ok(())
        }
        assert!(check(3).is_ok());
        let e = check(12).unwrap_err();
        assert_eq!(e.invariant(), "bound");
        assert!(e.detail().contains("12"));
    }
}
