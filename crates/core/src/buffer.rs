//! The [`SwitchBuffer`] abstraction shared by all four buffer designs.
//!
//! A switch buffer sits at one *input port* of an n×n switch and holds
//! packets that have already been routed (i.e. their output port is known)
//! until the crossbar can forward them. The four designs compared in the
//! paper differ in how they organise this storage:
//!
//! * [`FifoBuffer`](crate::FifoBuffer) — one queue; only the head packet is
//!   transmittable (head-of-line blocking).
//! * [`SamqBuffer`](crate::SamqBuffer) — one queue per output, storage
//!   *statically* split among them, single read port.
//! * [`SafcBuffer`](crate::SafcBuffer) — like SAMQ but with one read port per
//!   output (a fully-connected 4×1-switch fabric).
//! * [`DamqBuffer`](crate::DamqBuffer) — one queue per output, storage
//!   *dynamically* shared through linked lists and a free list.

use std::fmt;

use crate::audit::AuditError;
use crate::error::{ConfigError, Rejected};
use crate::ids::NodeId;
use crate::packet::{Packet, DEFAULT_SLOT_BYTES};
use crate::stats::BufferStats;
use crate::OutputPort;

/// Compact descriptor of the packet at the head of a queue: exactly the
/// two facts a flow-control probe needs — where the packet is going and
/// how much room it takes — without handing out the packet itself.
///
/// The cycle kernel examines up to `ports x fanout` queue heads per cycle
/// just to answer "can this candidate move?". Returning `FrontMeta`
/// (16 bytes, by value) from the buffer's index registers keeps that
/// examination walk inside the dense SoA columns; the out-of-line
/// [`Packet`] payload is only dereferenced for the one winner per read
/// port that actually dequeues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontMeta {
    /// Final destination of the head packet.
    pub dest: NodeId,
    /// Payload length of the head packet in bytes.
    pub length_bytes: u32,
}

impl FrontMeta {
    /// Slots the head packet would occupy in a buffer with
    /// `slot_bytes`-byte slots — same formula as
    /// [`Packet::slots_needed`].
    ///
    /// # Panics
    ///
    /// Panics if `slot_bytes` is zero.
    pub fn slots_needed(&self, slot_bytes: usize) -> usize {
        assert!(slot_bytes > 0, "slot size must be nonzero");
        (self.length_bytes as usize).div_ceil(slot_bytes).max(1)
    }
}

/// Which buffer design a buffer instance implements.
///
/// The first four are the designs compared in the paper;
/// [`BufferKind::Dafc`] is this crate's ablation completing the
/// (static/dynamic) × (single/fully-connected read) design matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BufferKind {
    /// First-in first-out single queue.
    Fifo,
    /// Statically-allocated multi-queue.
    Samq,
    /// Statically-allocated fully-connected.
    Safc,
    /// Dynamically-allocated multi-queue (the paper's contribution).
    Damq,
    /// Dynamically-allocated fully-connected (ablation; not in the paper).
    Dafc,
}

impl BufferKind {
    /// The paper's four designs, in the order its tables list them.
    pub const ALL: [BufferKind; 4] = [
        BufferKind::Fifo,
        BufferKind::Samq,
        BufferKind::Safc,
        BufferKind::Damq,
    ];

    /// The paper's four designs plus the DAFC ablation.
    pub const EXTENDED: [BufferKind; 5] = [
        BufferKind::Fifo,
        BufferKind::Samq,
        BufferKind::Safc,
        BufferKind::Damq,
        BufferKind::Dafc,
    ];

    /// Short upper-case name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            BufferKind::Fifo => "FIFO",
            BufferKind::Samq => "SAMQ",
            BufferKind::Safc => "SAFC",
            BufferKind::Damq => "DAMQ",
            BufferKind::Dafc => "DAFC",
        }
    }

    /// Whether storage is statically partitioned among output queues.
    ///
    /// Static partitioning restricts valid capacities (must divide by the
    /// fanout) and is the root of the SAMQ/SAFC space-inefficiency the paper
    /// describes.
    pub fn is_statically_allocated(self) -> bool {
        matches!(self, BufferKind::Samq | BufferKind::Safc)
    }
}

impl fmt::Display for BufferKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Geometry of a switch buffer: fanout, slot count and slot size.
///
/// # Examples
///
/// ```
/// use damq_core::{BufferConfig, BufferKind};
///
/// // A 4-output buffer with four 8-byte slots, as in the paper's Omega runs.
/// let cfg = BufferConfig::new(4, 4);
/// let buf = cfg.build(BufferKind::Damq)?;
/// assert_eq!(buf.capacity_slots(), 4);
/// # Ok::<(), damq_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferConfig {
    fanout: usize,
    capacity_slots: usize,
    slot_bytes: usize,
}

impl BufferConfig {
    /// Creates a configuration with `fanout` output queues and
    /// `capacity_slots` total slots of [`DEFAULT_SLOT_BYTES`] bytes each.
    pub fn new(fanout: usize, capacity_slots: usize) -> Self {
        BufferConfig {
            fanout,
            capacity_slots,
            slot_bytes: DEFAULT_SLOT_BYTES,
        }
    }

    /// Overrides the slot size in bytes.
    #[must_use]
    pub fn slot_bytes(mut self, slot_bytes: usize) -> Self {
        self.slot_bytes = slot_bytes;
        self
    }

    /// Number of output queues the buffer feeds.
    pub fn fanout_count(&self) -> usize {
        self.fanout
    }

    /// Total storage in slots.
    pub fn capacity(&self) -> usize {
        self.capacity_slots
    }

    /// Slot size in bytes.
    pub fn slot_size(&self) -> usize {
        self.slot_bytes
    }

    /// Validates the configuration for the given buffer kind.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any dimension is zero, or if `kind` is
    /// statically allocated and `capacity` is not divisible by `fanout`.
    pub fn validate(&self, kind: BufferKind) -> Result<(), ConfigError> {
        if self.capacity_slots == 0 {
            return Err(ConfigError::ZeroCapacity);
        }
        if self.fanout == 0 {
            return Err(ConfigError::ZeroFanout);
        }
        if self.slot_bytes == 0 {
            return Err(ConfigError::ZeroSlotBytes);
        }
        if kind.is_statically_allocated() && !self.capacity_slots.is_multiple_of(self.fanout) {
            return Err(ConfigError::CapacityNotDivisible {
                capacity: self.capacity_slots,
                fanout: self.fanout,
            });
        }
        Ok(())
    }

    /// Builds a boxed buffer of the requested kind.
    ///
    /// This is the convenient way to construct buffers generically (e.g. when
    /// sweeping all four kinds in an experiment). Use the concrete
    /// constructors ([`DamqBuffer::new`](crate::DamqBuffer::new) etc.) when
    /// the kind is fixed.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from [`BufferConfig::validate`].
    pub fn build(&self, kind: BufferKind) -> Result<Box<dyn SwitchBuffer>, ConfigError> {
        Ok(match kind {
            BufferKind::Fifo => Box::new(crate::FifoBuffer::new(*self)?),
            BufferKind::Samq => Box::new(crate::SamqBuffer::new(*self)?),
            BufferKind::Safc => Box::new(crate::SafcBuffer::new(*self)?),
            BufferKind::Damq => Box::new(crate::DamqBuffer::new(*self)?),
            BufferKind::Dafc => Box::new(crate::DafcBuffer::new(*self)?),
        })
    }

    /// Builds an [`AnyBuffer`](crate::AnyBuffer) of the requested kind —
    /// like [`BufferConfig::build`] but with enum dispatch instead of a
    /// heap-allocated trait object, so the simulation hot path stays
    /// visible to the inliner.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from [`BufferConfig::validate`].
    pub fn build_any(&self, kind: BufferKind) -> Result<crate::AnyBuffer, ConfigError> {
        use crate::AnyBuffer;
        Ok(match kind {
            BufferKind::Fifo => AnyBuffer::Fifo(crate::FifoBuffer::new(*self)?),
            BufferKind::Samq => AnyBuffer::Samq(crate::SamqBuffer::new(*self)?),
            BufferKind::Safc => AnyBuffer::Safc(crate::SafcBuffer::new(*self)?),
            BufferKind::Damq => AnyBuffer::Damq(crate::DamqBuffer::new(*self)?),
            BufferKind::Dafc => AnyBuffer::Dafc(crate::DafcBuffer::new(*self)?),
        })
    }
}

/// Common interface of the four input-port buffer designs.
///
/// Packets are enqueued with the output port they were routed to and dequeued
/// per output port. The semantics of "what can be sent to output *o* right
/// now" differ per design and are captured by [`SwitchBuffer::queue_len`]:
///
/// * For multi-queue buffers it is the length of the per-output queue.
/// * For a FIFO it is nonzero **only** for the output of the head packet —
///   everything behind the head is blocked, which is exactly the
///   head-of-line effect the DAMQ design removes.
///
/// The trait is object-safe so switches can hold `Box<dyn SwitchBuffer>`.
///
/// `Send + Sync` are supertraits: buffers are plain owned data (no
/// interior mutability in any design), and the sharded simulator hands
/// disjoint `&mut Switch<B>` islands to worker threads while probing
/// downstream switches through `&self` — see `docs/ARCHITECTURE.md`.
pub trait SwitchBuffer: fmt::Debug + Send + Sync {
    /// Which design this is.
    fn kind(&self) -> BufferKind;

    /// Number of output queues (the switch fanout).
    fn fanout(&self) -> usize;

    /// Total storage in slots.
    fn capacity_slots(&self) -> usize;

    /// Slots currently holding packet data.
    fn used_slots(&self) -> usize;

    /// Slot size in bytes.
    fn slot_bytes(&self) -> usize;

    /// Number of packets that can leave through the crossbar in one cycle.
    ///
    /// 1 for FIFO, SAMQ and DAMQ (single read port); equals
    /// [`SwitchBuffer::fanout`] for SAFC (fully connected).
    fn read_ports(&self) -> usize;

    /// Whether a packet needing `slots` slots, routed to `output`, would be
    /// accepted right now.
    fn can_accept(&self, output: OutputPort, slots: usize) -> bool;

    /// The largest `slots` for which [`can_accept`](SwitchBuffer::can_accept)
    /// of `output` answers `true` right now — the batched form of the
    /// backpressure probe. The network simulator snapshots these
    /// capacities per stage so its probe loop reads one flat array entry
    /// instead of re-deriving admission per candidate packet.
    ///
    /// Admission is room-based in every design, hence monotone in
    /// `slots`; the default derives the capacity from `can_accept`
    /// directly (and is therefore exact for any conforming design), the
    /// designs override it with their admission register.
    fn accept_capacity(&self, output: OutputPort) -> usize {
        let mut slots = 0;
        while self.can_accept(output, slots + 1) {
            slots += 1;
        }
        slots
    }

    /// Stores a packet routed to `output`.
    ///
    /// # Errors
    ///
    /// Returns the packet back inside [`Rejected`] if there is no space for
    /// it (the precise condition depends on the design — see
    /// [`RejectReason`](crate::RejectReason)).
    fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected>;

    /// Number of packets transmittable to `output` *now* (see trait docs for
    /// the FIFO caveat).
    fn queue_len(&self, output: OutputPort) -> usize;

    /// Writes every per-output queue length into `lens` in one batched read.
    ///
    /// `lens.len()` must equal [`fanout`](SwitchBuffer::fanout); element `o`
    /// receives `queue_len(OutputPort::new(o))`. The default loops over
    /// `queue_len`; SoA-backed designs override it with a contiguous copy of
    /// their packet-count registers so the switch's cycle kernel reads one
    /// cache line per buffer instead of making `fanout` virtual calls.
    fn queue_lens_into(&self, lens: &mut [u16]) {
        debug_assert_eq!(lens.len(), self.fanout());
        for (o, len) in lens.iter_mut().enumerate() {
            *len = self.queue_len(OutputPort::new(o)) as u16;
        }
    }

    /// The packet that would be returned by `dequeue(output)`, if any.
    fn front(&self, output: OutputPort) -> Option<&Packet>;

    /// Routing metadata of the packet [`front`](SwitchBuffer::front) would
    /// return, if any, without touching out-of-line packet storage.
    ///
    /// The default derives the answer from `front` and is therefore
    /// always exact; SoA-backed designs override it to read their
    /// destination/length registers so the switch's examination walk
    /// never dereferences the packet arena (see `docs/PERFORMANCE.md`
    /// §4-§5).
    fn front_meta(&self, output: OutputPort) -> Option<FrontMeta> {
        self.front(output).map(|p| FrontMeta {
            dest: p.dest(),
            length_bytes: p.length_bytes() as u32,
        })
    }

    /// Removes and returns the next packet for `output`, freeing its slots.
    ///
    /// Returns `None` when `queue_len(output)` is zero.
    fn dequeue(&mut self, output: OutputPort) -> Option<Packet>;

    /// Total packets resident in the buffer.
    fn packet_count(&self) -> usize;

    /// Operation counters.
    fn stats(&self) -> &BufferStats;

    /// Zeroes the operation counters (occupancy is untouched).
    fn reset_stats(&mut self);

    /// Free slots available to *some* queue (not necessarily to every queue —
    /// static designs partition them). Dead slots are not free.
    fn free_slots(&self) -> usize {
        (self.capacity_slots() - self.used_slots()).saturating_sub(self.dead_slots())
    }

    /// Permanently removes one slot from service (fault injection).
    ///
    /// `hint` names the output partition the slot is carved from in
    /// statically-allocated designs (SAMQ/SAFC); designs with shared
    /// storage ignore it. A kill must degrade the buffer *gracefully*:
    /// capacity shrinks, resident packets drain intact, and no linked
    /// list is ever corrupted. Returns `false` when nothing further can
    /// be killed (every slot already dead or doomed).
    ///
    /// The default declines every kill, so designs without fault support
    /// simply never degrade.
    fn kill_slot(&mut self, hint: OutputPort) -> bool {
        let _ = hint;
        false
    }

    /// Slots removed from service by [`SwitchBuffer::kill_slot`],
    /// including kills deferred until a busy slot drains.
    fn dead_slots(&self) -> usize {
        0
    }

    /// Whether no packets are resident.
    fn is_empty(&self) -> bool {
        self.packet_count() == 0
    }

    /// Output ports that have at least one transmittable packet.
    fn eligible_outputs(&self) -> Vec<OutputPort> {
        OutputPort::all(self.fanout())
            .filter(|&o| self.queue_len(o) > 0)
            .collect()
    }

    /// Records one cycle's head-of-line blocking into
    /// [`stats`](SwitchBuffer::stats) and returns the number of blocked
    /// packets: residents that cannot even be considered for transmission
    /// because a packet bound for a *different* output sits ahead of them.
    ///
    /// Per-output designs (SAMQ, SAFC, DAMQ, DAFC) never structurally
    /// block and keep the default, which records and returns zero; the
    /// FIFO baseline overrides it. Call once per simulated cycle.
    fn note_hol_blocked(&mut self) -> u64 {
        0
    }

    /// Verifies the design's structural invariants (list partition,
    /// register/counter sync, queue shape — see [`AuditError`] and
    /// `docs/VERIFICATION.md`) without panicking.
    ///
    /// Heavy — walks the entire structure; meant for tests, the model
    /// checker and the `strict-audit` feature.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    fn audit(&self) -> Result<(), AuditError>;

    /// Assert-style wrapper over [`SwitchBuffer::audit`].
    ///
    /// # Panics
    ///
    /// Panics with the audit's description on violation.
    fn check_invariants(&self) {
        if let Err(e) = self.audit() {
            // lint: allow — the panicking bridge is this method's contract.
            panic!("{} buffer {e}", self.kind());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(BufferKind::Fifo.name(), "FIFO");
        assert_eq!(BufferKind::Samq.name(), "SAMQ");
        assert_eq!(BufferKind::Safc.name(), "SAFC");
        assert_eq!(BufferKind::Damq.name(), "DAMQ");
    }

    #[test]
    fn static_allocation_flags() {
        assert!(!BufferKind::Fifo.is_statically_allocated());
        assert!(BufferKind::Samq.is_statically_allocated());
        assert!(BufferKind::Safc.is_statically_allocated());
        assert!(!BufferKind::Damq.is_statically_allocated());
    }

    #[test]
    fn config_validation_rejects_zero_dimensions() {
        assert_eq!(
            BufferConfig::new(4, 0).validate(BufferKind::Fifo),
            Err(ConfigError::ZeroCapacity)
        );
        assert_eq!(
            BufferConfig::new(0, 4).validate(BufferKind::Fifo),
            Err(ConfigError::ZeroFanout)
        );
        assert_eq!(
            BufferConfig::new(4, 4)
                .slot_bytes(0)
                .validate(BufferKind::Fifo),
            Err(ConfigError::ZeroSlotBytes)
        );
    }

    #[test]
    fn static_kinds_require_divisible_capacity() {
        let cfg = BufferConfig::new(4, 6);
        assert!(cfg.validate(BufferKind::Fifo).is_ok());
        assert!(cfg.validate(BufferKind::Damq).is_ok());
        assert_eq!(
            cfg.validate(BufferKind::Samq),
            Err(ConfigError::CapacityNotDivisible {
                capacity: 6,
                fanout: 4
            })
        );
        assert_eq!(
            cfg.validate(BufferKind::Safc),
            Err(ConfigError::CapacityNotDivisible {
                capacity: 6,
                fanout: 4
            })
        );
    }

    #[test]
    fn build_produces_all_kinds() {
        let cfg = BufferConfig::new(4, 8);
        for kind in BufferKind::ALL {
            let buf = cfg.build(kind).expect("valid config");
            assert_eq!(buf.kind(), kind);
            assert_eq!(buf.capacity_slots(), 8);
            assert_eq!(buf.fanout(), 4);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn read_ports_distinguish_safc() {
        let cfg = BufferConfig::new(4, 8);
        assert_eq!(cfg.build(BufferKind::Fifo).unwrap().read_ports(), 1);
        assert_eq!(cfg.build(BufferKind::Samq).unwrap().read_ports(), 1);
        assert_eq!(cfg.build(BufferKind::Damq).unwrap().read_ports(), 1);
        assert_eq!(cfg.build(BufferKind::Safc).unwrap().read_ports(), 4);
    }
}
