//! The DAFC buffer: dynamically-allocated, fully-connected (an ablation,
//! not in the paper).
//!
//! The DAMQ design combines two mechanisms: *dynamic storage allocation*
//! (shared slot pool) and *multi-queue organisation* behind a single read
//! port. The SAFC design shows what *full connectivity* (one read port per
//! output) buys on top of static allocation. This buffer completes the
//! 2×2 design matrix:
//!
//! | | single read port | read port per output |
//! |---|---|---|
//! | static partition | SAMQ | SAFC |
//! | dynamic pool | **DAMQ** | **DAFC** (this) |
//!
//! Comparing DAMQ with DAFC isolates how much the extra read bandwidth
//! would add once storage is already shared — the paper argues (via the
//! SAMQ≈SAFC observation) that it is little, and the `ablation_dafc`
//! harness in `damq-bench` quantifies that claim.

use crate::audit::AuditError;
use crate::buffer::{BufferConfig, BufferKind, FrontMeta, SwitchBuffer};
use crate::damq::DamqBuffer;
use crate::error::{ConfigError, Rejected};
use crate::packet::Packet;
use crate::stats::BufferStats;
use crate::OutputPort;

/// Dynamically-allocated fully-connected input buffer (DAMQ storage, one
/// read port per output).
///
/// # Examples
///
/// ```
/// use damq_core::{BufferConfig, DafcBuffer, NodeId, OutputPort, Packet, SwitchBuffer};
///
/// let mut buf = DafcBuffer::new(BufferConfig::new(4, 4))?;
/// assert_eq!(buf.read_ports(), 4);
/// // Dynamic allocation: one queue may take the whole pool.
/// for _ in 0..4 {
///     let p = Packet::builder(NodeId::new(0), NodeId::new(1)).build();
///     buf.try_enqueue(OutputPort::new(3), p)?;
/// }
/// assert_eq!(buf.queue_len(OutputPort::new(3)), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DafcBuffer {
    inner: DamqBuffer,
}

impl DafcBuffer {
    /// Creates an empty DAFC buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration has a zero dimension.
    pub fn new(config: BufferConfig) -> Result<Self, ConfigError> {
        Ok(DafcBuffer {
            inner: DamqBuffer::new(config)?,
        })
    }
}

impl SwitchBuffer for DafcBuffer {
    fn kind(&self) -> BufferKind {
        BufferKind::Dafc
    }

    fn fanout(&self) -> usize {
        self.inner.fanout()
    }

    fn capacity_slots(&self) -> usize {
        self.inner.capacity_slots()
    }

    fn used_slots(&self) -> usize {
        self.inner.used_slots()
    }

    fn slot_bytes(&self) -> usize {
        self.inner.slot_bytes()
    }

    fn read_ports(&self) -> usize {
        self.inner.fanout()
    }

    fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        self.inner.can_accept(output, slots)
    }

    fn accept_capacity(&self, output: OutputPort) -> usize {
        self.inner.accept_capacity(output)
    }

    fn front_meta(&self, output: OutputPort) -> Option<FrontMeta> {
        self.inner.front_meta(output)
    }

    fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
        self.inner.try_enqueue(output, packet)
    }

    fn queue_len(&self, output: OutputPort) -> usize {
        self.inner.queue_len(output)
    }

    fn queue_lens_into(&self, lens: &mut [u16]) {
        self.inner.queue_lens_into(lens)
    }

    fn front(&self, output: OutputPort) -> Option<&Packet> {
        self.inner.front(output)
    }

    fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        self.inner.dequeue(output)
    }

    fn packet_count(&self) -> usize {
        self.inner.packet_count()
    }

    fn stats(&self) -> &BufferStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }

    fn kill_slot(&mut self, hint: OutputPort) -> bool {
        self.inner.kill_slot(hint)
    }

    fn dead_slots(&self) -> usize {
        self.inner.dead_slots()
    }

    fn audit(&self) -> Result<(), AuditError> {
        self.inner.audit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn pkt() -> Packet {
        Packet::builder(NodeId::new(0), NodeId::new(1)).build()
    }

    #[test]
    fn combines_dynamic_storage_with_full_read_bandwidth() {
        let mut b = DafcBuffer::new(BufferConfig::new(4, 4)).unwrap();
        assert_eq!(b.read_ports(), 4);
        // Any mix of queues up to the shared capacity.
        b.try_enqueue(OutputPort::new(0), pkt()).unwrap();
        b.try_enqueue(OutputPort::new(0), pkt()).unwrap();
        b.try_enqueue(OutputPort::new(0), pkt()).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt()).unwrap();
        assert!(!b.can_accept(OutputPort::new(2), 1));
        // Drains one packet per output per cycle.
        assert!(b.dequeue(OutputPort::new(0)).is_some());
        assert!(b.dequeue(OutputPort::new(1)).is_some());
        b.check_invariants();
    }

    #[test]
    fn odd_capacities_allowed_like_damq() {
        assert!(DafcBuffer::new(BufferConfig::new(4, 3)).is_ok());
    }

    #[test]
    fn reports_its_own_kind() {
        let b = DafcBuffer::new(BufferConfig::new(4, 4)).unwrap();
        assert_eq!(b.kind(), BufferKind::Dafc);
        assert_eq!(b.kind().name(), "DAFC");
    }
}
