//! The DAMQ buffer: dynamically-allocated multi-queue (the paper's
//! contribution).
//!
//! A DAMQ buffer keeps a separate FIFO queue of packets per output port —
//! like SAMQ/SAFC it never suffers head-of-line blocking — but its storage is
//! **not** statically partitioned. All slots live in one pool threaded onto
//! a free list; a packet for any output may claim any free slot. The queues
//! are linked lists through per-slot pointer registers, stored here as
//! structure-of-arrays index registers (see [`SoaSlots`]) exactly as the
//! chip's hardwired controller would lay them out. The pre-SoA linked-node
//! implementation survives as [`SlotPool`](crate::SlotPool) /
//! [`AosDamqBuffer`](crate::AosDamqBuffer) for differential testing.
//!
//! The combination gives DAMQ both of the properties the paper identifies as
//! essential:
//!
//! 1. *non-FIFO packet handling* — an idle output is never starved by a
//!    blocked packet in front, and
//! 2. *efficient storage allocation* — free space "adapts" to whatever
//!    traffic actually arrives, so a DAMQ buffer with 3 slots discards no
//!    more than a FIFO with 6 (paper Table 2).

use crate::audit::{audit_ensure, AuditError};
use crate::buffer::{BufferConfig, BufferKind, FrontMeta, SwitchBuffer};
use crate::error::{ConfigError, RejectReason, Rejected};
use crate::packet::Packet;
use crate::soa::SoaSlots;
use crate::stats::BufferStats;
use crate::OutputPort;

/// Dynamically-allocated multi-queue input buffer.
///
/// # Examples
///
/// The dynamic-allocation property — one queue may use the whole pool:
///
/// ```
/// use damq_core::{BufferConfig, DamqBuffer, NodeId, OutputPort, Packet, SwitchBuffer};
///
/// let mut buf = DamqBuffer::new(BufferConfig::new(4, 4))?;
/// let mk = || Packet::builder(NodeId::new(0), NodeId::new(1)).build();
/// for _ in 0..4 {
///     buf.try_enqueue(OutputPort::new(2), mk())?; // all 4 slots to out2
/// }
/// assert_eq!(buf.queue_len(OutputPort::new(2)), 4);
/// assert!(!buf.can_accept(OutputPort::new(0), 1)); // pool exhausted
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DamqBuffer {
    config: BufferConfig,
    pool: SoaSlots,
    stats: BufferStats,
}

impl DamqBuffer {
    /// Creates an empty DAMQ buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration has a zero dimension.
    /// Unlike the statically-allocated designs, any capacity is valid — the
    /// paper's Table 5 exploits this with 3-slot DAMQ buffers.
    pub fn new(config: BufferConfig) -> Result<Self, ConfigError> {
        config.validate(BufferKind::Damq)?;
        Ok(DamqBuffer {
            config,
            pool: SoaSlots::new(config.capacity(), config.fanout_count()),
            stats: BufferStats::new(),
        })
    }

    /// Direct read access to the underlying slot pool (for inspection and
    /// the micro-architecture model).
    pub fn pool(&self) -> &SoaSlots {
        &self.pool
    }

    /// Slots consumed by the queue for `output`.
    pub fn queue_slots(&self, output: OutputPort) -> usize {
        if output.index() < self.fanout() {
            self.pool.queue_slots(output.index())
        } else {
            0
        }
    }
}

impl SwitchBuffer for DamqBuffer {
    fn kind(&self) -> BufferKind {
        BufferKind::Damq
    }

    fn fanout(&self) -> usize {
        self.config.fanout_count()
    }

    fn capacity_slots(&self) -> usize {
        self.config.capacity()
    }

    fn used_slots(&self) -> usize {
        self.pool.used_count()
    }

    fn slot_bytes(&self) -> usize {
        self.config.slot_size()
    }

    fn read_ports(&self) -> usize {
        1
    }

    fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        output.index() < self.fanout() && slots <= self.pool.free_count()
    }

    fn accept_capacity(&self, output: OutputPort) -> usize {
        if output.index() < self.fanout() {
            self.pool.free_count()
        } else {
            0
        }
    }

    fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
        if output.index() >= self.fanout() {
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::NoSuchOutput,
            });
        }
        let slots = packet.slots_needed(self.slot_bytes());
        if slots > self.capacity_slots() {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::PacketTooLarge,
            });
        }
        if slots > self.pool.effective_capacity() {
            // Fits a healthy pool but not what the faults have left of it.
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::Faulted,
            });
        }
        match self.pool.enqueue(output.index(), packet, slots) {
            Ok(()) => {
                self.stats.record_accepted(slots);
                self.stats.observe_used_slots(self.pool.used_count());
                Ok(())
            }
            Err(packet) => {
                self.stats.record_rejected();
                Err(Rejected {
                    packet,
                    output,
                    reason: RejectReason::BufferFull,
                })
            }
        }
    }

    fn queue_len(&self, output: OutputPort) -> usize {
        if output.index() < self.fanout() {
            self.pool.queue_packets(output.index())
        } else {
            0
        }
    }

    fn queue_lens_into(&self, lens: &mut [u16]) {
        self.pool.queue_lens_into(lens);
    }

    fn front(&self, output: OutputPort) -> Option<&Packet> {
        if output.index() < self.fanout() {
            self.pool.front(output.index())
        } else {
            None
        }
    }

    fn front_meta(&self, output: OutputPort) -> Option<FrontMeta> {
        if output.index() < self.fanout() {
            self.pool.front_meta(output.index())
        } else {
            None
        }
    }

    fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        if output.index() >= self.fanout() {
            return None;
        }
        let packet = self.pool.dequeue(output.index())?;
        self.stats.record_forwarded();
        Some(packet)
    }

    fn packet_count(&self) -> usize {
        (0..self.fanout()).map(|l| self.pool.queue_packets(l)).sum()
    }

    fn stats(&self) -> &BufferStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn kill_slot(&mut self, hint: OutputPort) -> bool {
        // The pool is shared: a dead slot hurts every queue equally, so the
        // hinted output carries no information here.
        let _ = hint;
        self.pool.kill_slot()
    }

    fn dead_slots(&self) -> usize {
        self.pool.dead_count()
    }

    fn audit(&self) -> Result<(), AuditError> {
        // The pool enforces strict-audit on its own enqueue/dequeue paths;
        // here we re-check it plus the buffer-level accounting on top.
        self.pool.audit()?;
        audit_ensure!(
            self.used_slots() <= self.capacity_slots(),
            "capacity-bound",
            "pool reports {} used of {} slots",
            self.used_slots(),
            self.capacity_slots()
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn pkt(len: usize, src: usize) -> Packet {
        Packet::builder(NodeId::new(src), NodeId::new(1))
            .length_bytes(len)
            .build()
    }

    fn buf(slots: usize) -> DamqBuffer {
        DamqBuffer::new(BufferConfig::new(4, slots)).unwrap()
    }

    #[test]
    fn any_capacity_is_valid() {
        // Odd capacities are fine (unlike SAMQ/SAFC): Table 5 uses 3 slots.
        assert!(DamqBuffer::new(BufferConfig::new(4, 3)).is_ok());
        assert!(DamqBuffer::new(BufferConfig::new(4, 5)).is_ok());
    }

    #[test]
    fn no_head_of_line_blocking() {
        let mut b = buf(4);
        b.try_enqueue(OutputPort::new(3), pkt(8, 0)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(8, 1)).unwrap();
        // out1 is immediately servable even though out3's packet arrived first.
        assert_eq!(b.queue_len(OutputPort::new(1)), 1);
        assert_eq!(
            b.dequeue(OutputPort::new(1)).unwrap().source(),
            NodeId::new(1)
        );
    }

    #[test]
    fn storage_is_shared_not_partitioned() {
        let mut b = buf(4);
        for i in 0..4 {
            b.try_enqueue(OutputPort::new(0), pkt(8, i)).unwrap();
        }
        let err = b.try_enqueue(OutputPort::new(1), pkt(8, 9)).unwrap_err();
        assert_eq!(err.reason, RejectReason::BufferFull);
        // Freeing one slot makes it available to *any* queue.
        b.dequeue(OutputPort::new(0)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(8, 9)).unwrap();
        b.check_invariants();
    }

    #[test]
    fn variable_length_packets_span_slots() {
        let mut b = buf(6);
        b.try_enqueue(OutputPort::new(0), pkt(32, 0)).unwrap(); // 4 slots
        b.try_enqueue(OutputPort::new(1), pkt(12, 1)).unwrap(); // 2 slots
        assert_eq!(b.used_slots(), 6);
        assert_eq!(b.queue_slots(OutputPort::new(0)), 4);
        assert_eq!(b.queue_slots(OutputPort::new(1)), 2);
        assert!(!b.can_accept(OutputPort::new(2), 1));
        let p = b.dequeue(OutputPort::new(0)).unwrap();
        assert_eq!(p.length_bytes(), 32);
        assert_eq!(b.free_slots(), 4);
        b.check_invariants();
    }

    #[test]
    fn per_output_fifo_order() {
        let mut b = buf(8);
        for i in 0..3 {
            b.try_enqueue(OutputPort::new(2), pkt(8, i)).unwrap();
            b.try_enqueue(OutputPort::new(0), pkt(8, 10 + i)).unwrap();
        }
        for i in 0..3 {
            assert_eq!(
                b.dequeue(OutputPort::new(2)).unwrap().source(),
                NodeId::new(i)
            );
        }
        for i in 0..3 {
            assert_eq!(
                b.dequeue(OutputPort::new(0)).unwrap().source(),
                NodeId::new(10 + i)
            );
        }
    }

    #[test]
    fn stats_track_all_outcomes() {
        let mut b = buf(2);
        b.try_enqueue(OutputPort::new(0), pkt(8, 0)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(8, 1)).unwrap();
        let _ = b.try_enqueue(OutputPort::new(2), pkt(8, 2));
        b.dequeue(OutputPort::new(0)).unwrap();
        assert_eq!(b.stats().packets_accepted(), 2);
        assert_eq!(b.stats().packets_rejected(), 1);
        assert_eq!(b.stats().packets_forwarded(), 1);
        assert_eq!(b.stats().peak_used_slots(), 2);
    }

    #[test]
    fn eligible_outputs_lists_all_nonempty_queues() {
        let mut b = buf(4);
        b.try_enqueue(OutputPort::new(3), pkt(8, 0)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(8, 1)).unwrap();
        assert_eq!(
            b.eligible_outputs(),
            vec![OutputPort::new(1), OutputPort::new(3)]
        );
    }

    #[test]
    fn mixed_operations_keep_invariants() {
        let mut b = buf(12);
        for i in 0..200 {
            let out = OutputPort::new(i % 4);
            let _ = b.try_enqueue(out, pkt(1 + (i * 5) % 32, i));
            if i % 3 == 0 {
                b.dequeue(OutputPort::new((i / 3) % 4));
            }
            b.check_invariants();
        }
    }
}
