//! Error types for buffer construction and operation.

use std::error::Error;
use std::fmt;

use crate::packet::Packet;
use crate::OutputPort;

/// Error constructing a buffer from a [`BufferConfig`].
///
/// [`BufferConfig`]: crate::BufferConfig
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The buffer must contain at least one slot.
    ZeroCapacity,
    /// A switch buffer must feed at least one output port.
    ZeroFanout,
    /// Slots must hold at least one byte.
    ZeroSlotBytes,
    /// Statically-partitioned buffers (SAMQ, SAFC) require the slot count to
    /// divide evenly among the output queues.
    CapacityNotDivisible {
        /// Total slots requested.
        capacity: usize,
        /// Number of static partitions (the fanout).
        fanout: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCapacity => write!(f, "buffer capacity must be at least one slot"),
            ConfigError::ZeroFanout => write!(f, "buffer fanout must be at least one output"),
            ConfigError::ZeroSlotBytes => write!(f, "slot size must be at least one byte"),
            ConfigError::CapacityNotDivisible { capacity, fanout } => write!(
                f,
                "statically-allocated buffer needs capacity divisible by fanout ({capacity} slots over {fanout} queues)"
            ),
        }
    }
}

impl Error for ConfigError {}

/// Why a packet could not be accepted by a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RejectReason {
    /// Not enough free slots in the pool shared by all queues.
    BufferFull,
    /// The statically-allocated queue for the packet's output is full, even
    /// though other queues may have space (the SAMQ/SAFC pathology).
    QueueFull,
    /// The packet needs more slots than the buffer has in total.
    PacketTooLarge,
    /// The requested output port does not exist on this buffer.
    NoSuchOutput,
    /// Injected faults have shrunk the buffer (or the packet's static
    /// partition) below the packet's size: it could never be accepted
    /// until the fault is repaired, even with every live slot free.
    Faulted,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::BufferFull => write!(f, "buffer has no free slots"),
            RejectReason::QueueFull => write!(f, "statically-allocated queue is full"),
            RejectReason::PacketTooLarge => {
                write!(f, "packet does not fit in the buffer even when empty")
            }
            RejectReason::NoSuchOutput => write!(f, "output port index out of range"),
            RejectReason::Faulted => {
                write!(f, "dead slots leave too little capacity for this packet")
            }
        }
    }
}

/// A packet bounced back by [`SwitchBuffer::try_enqueue`], together with the
/// reason it was rejected.
///
/// Ownership of the packet returns to the caller so a *blocking* switch can
/// retry later and a *discarding* switch can count the loss.
///
/// [`SwitchBuffer::try_enqueue`]: crate::SwitchBuffer::try_enqueue
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// The packet that was not accepted.
    pub packet: Packet,
    /// The output-port queue it was headed for.
    pub output: OutputPort,
    /// Why it was rejected.
    pub reason: RejectReason,
}

impl Rejected {
    /// Recovers the packet, discarding the bookkeeping.
    pub fn into_packet(self) -> Packet {
        self.packet
    }
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "packet {} rejected from queue {}: {}",
            self.packet.id(),
            self.output,
            self.reason
        )
    }
}

impl Error for Rejected {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::NodeId;

    #[test]
    fn config_error_messages_are_lowercase_and_specific() {
        let e = ConfigError::CapacityNotDivisible {
            capacity: 5,
            fanout: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains('5') && msg.contains('4'));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn rejected_round_trips_packet() {
        let p = Packet::builder(NodeId::new(0), NodeId::new(1)).build();
        let r = Rejected {
            packet: p.clone(),
            output: OutputPort::new(1),
            reason: RejectReason::BufferFull,
        };
        assert_eq!(r.into_packet(), p);
    }

    #[test]
    fn reject_reason_display_distinct() {
        let all = [
            RejectReason::BufferFull,
            RejectReason::QueueFull,
            RejectReason::PacketTooLarge,
            RejectReason::NoSuchOutput,
            RejectReason::Faulted,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.to_string(), b.to_string());
            }
        }
    }
}
