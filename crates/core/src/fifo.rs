//! The FIFO buffer: the paper's baseline ("control") design.
//!
//! A single first-in first-out queue with one write port and one read port.
//! Simple to build and ideal for variable-length packets (storage is a ring
//! of slots), but it suffers **head-of-line blocking**: when the packet at
//! the head waits for a busy output, every packet behind it waits too, even
//! if their outputs are idle.

use std::collections::VecDeque;

use crate::audit::{audit_ensure, strict_audit, AuditError};
use crate::buffer::{BufferConfig, BufferKind, SwitchBuffer};
use crate::error::{ConfigError, RejectReason, Rejected};
use crate::packet::Packet;
use crate::stats::BufferStats;
use crate::OutputPort;

#[derive(Debug, Clone)]
struct Entry {
    output: OutputPort,
    slots: usize,
    packet: Packet,
}

/// Single-queue first-in first-out input buffer.
///
/// Only the head packet is ever transmittable; consequently
/// [`queue_len`](SwitchBuffer::queue_len) reports the entire queue length for
/// the head packet's output and `0` for every other output.
///
/// # Examples
///
/// ```
/// use damq_core::{BufferConfig, FifoBuffer, NodeId, OutputPort, Packet, SwitchBuffer};
///
/// let mut buf = FifoBuffer::new(BufferConfig::new(4, 4))?;
/// let a = Packet::builder(NodeId::new(0), NodeId::new(1)).build();
/// let b = Packet::builder(NodeId::new(0), NodeId::new(2)).build();
/// buf.try_enqueue(OutputPort::new(1), a)?;
/// buf.try_enqueue(OutputPort::new(2), b)?;
///
/// // b is routed to out2 and out2 is idle -- but b is stuck behind a.
/// assert_eq!(buf.queue_len(OutputPort::new(2)), 0);
/// assert_eq!(buf.queue_len(OutputPort::new(1)), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FifoBuffer {
    config: BufferConfig,
    queue: VecDeque<Entry>,
    used_slots: usize,
    /// Ring slots permanently removed by fault injection.
    dead: usize,
    /// Kills issued while the ring was full; consumed by later dequeues.
    pending_kills: usize,
    stats: BufferStats,
}

impl FifoBuffer {
    /// Creates an empty FIFO buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration has a zero dimension.
    pub fn new(config: BufferConfig) -> Result<Self, ConfigError> {
        config.validate(BufferKind::Fifo)?;
        Ok(FifoBuffer {
            config,
            queue: VecDeque::new(),
            used_slots: 0,
            dead: 0,
            pending_kills: 0,
            stats: BufferStats::new(),
        })
    }

    /// The output port of the head packet, if any.
    pub fn head_output(&self) -> Option<OutputPort> {
        self.queue.front().map(|e| e.output)
    }

    fn head_matches(&self, output: OutputPort) -> bool {
        self.head_output() == Some(output)
    }
}

impl SwitchBuffer for FifoBuffer {
    fn kind(&self) -> BufferKind {
        BufferKind::Fifo
    }

    fn fanout(&self) -> usize {
        self.config.fanout_count()
    }

    fn capacity_slots(&self) -> usize {
        self.config.capacity()
    }

    fn used_slots(&self) -> usize {
        self.used_slots
    }

    fn slot_bytes(&self) -> usize {
        self.config.slot_size()
    }

    fn read_ports(&self) -> usize {
        1
    }

    fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        output.index() < self.fanout()
            && self.used_slots + slots + self.dead_slots() <= self.capacity_slots()
    }

    fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
        let slots = packet.slots_needed(self.slot_bytes());
        if output.index() >= self.fanout() {
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::NoSuchOutput,
            });
        }
        if slots > self.capacity_slots() {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::PacketTooLarge,
            });
        }
        if slots + self.dead_slots() > self.capacity_slots() {
            // Fits a healthy ring but not what the faults have left of it.
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::Faulted,
            });
        }
        if self.used_slots + slots + self.dead_slots() > self.capacity_slots() {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::BufferFull,
            });
        }
        self.used_slots += slots;
        self.stats.record_accepted(slots);
        self.stats.observe_used_slots(self.used_slots);
        self.queue.push_back(Entry {
            output,
            slots,
            packet,
        });
        strict_audit!(self);
        Ok(())
    }

    fn queue_len(&self, output: OutputPort) -> usize {
        if self.head_matches(output) {
            self.queue.len()
        } else {
            0
        }
    }

    fn front(&self, output: OutputPort) -> Option<&Packet> {
        self.queue
            .front()
            .filter(|e| e.output == output)
            .map(|e| &e.packet)
    }

    fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        if !self.head_matches(output) {
            return None;
        }
        // lint: allow — head_matches() proved the queue is non-empty.
        let entry = self.queue.pop_front().expect("head checked above");
        self.used_slots -= entry.slots;
        // Freed slots feed deferred kills before returning to service.
        let consumed = self.pending_kills.min(entry.slots);
        self.pending_kills -= consumed;
        self.dead += consumed;
        self.stats.record_forwarded();
        strict_audit!(self);
        Some(entry.packet)
    }

    fn packet_count(&self) -> usize {
        self.queue.len()
    }

    fn stats(&self) -> &BufferStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn kill_slot(&mut self, hint: OutputPort) -> bool {
        // A FIFO ring has no per-output partitions; the hint is irrelevant.
        let _ = hint;
        if self.dead_slots() >= self.capacity_slots() {
            return false;
        }
        if self.used_slots + self.dead < self.capacity_slots() {
            self.dead += 1;
        } else {
            self.pending_kills += 1;
        }
        strict_audit!(self);
        true
    }

    fn dead_slots(&self) -> usize {
        self.dead + self.pending_kills
    }

    fn note_hol_blocked(&mut self) -> u64 {
        let Some(head) = self.head_output() else {
            return 0;
        };
        let blocked = self
            .queue
            .iter()
            .skip(1)
            .filter(|e| e.output != head)
            .count() as u64;
        self.stats.record_hol_blocked(blocked);
        blocked
    }

    fn audit(&self) -> Result<(), AuditError> {
        let sum: usize = self.queue.iter().map(|e| e.slots).sum();
        audit_ensure!(
            sum == self.used_slots,
            "register-sync",
            "FIFO used_slots register says {} but entries sum to {sum}",
            self.used_slots
        );
        audit_ensure!(
            self.used_slots + self.dead <= self.capacity_slots(),
            "capacity-bound",
            "FIFO holds {} live + {} dead of {} slots",
            self.used_slots,
            self.dead,
            self.capacity_slots()
        );
        audit_ensure!(
            self.dead + self.pending_kills <= self.capacity_slots(),
            "fault-ledger",
            "FIFO records {} dead + {} pending kills over {} slots",
            self.dead,
            self.pending_kills,
            self.capacity_slots()
        );
        audit_ensure!(
            self.pending_kills == 0 || self.used_slots + self.dead == self.capacity_slots(),
            "fault-ledger",
            "FIFO defers {} kills while slots are free",
            self.pending_kills
        );
        for e in &self.queue {
            audit_ensure!(
                e.output.index() < self.fanout(),
                "queue-shape",
                "entry routed to nonexistent output {}",
                e.output
            );
            audit_ensure!(
                e.slots == e.packet.slots_needed(self.slot_bytes()),
                "queue-shape",
                "entry slot count {} disagrees with its packet length",
                e.slots
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn pkt(len: usize) -> Packet {
        Packet::builder(NodeId::new(0), NodeId::new(1))
            .length_bytes(len)
            .build()
    }

    fn buf(slots: usize) -> FifoBuffer {
        FifoBuffer::new(BufferConfig::new(4, slots)).unwrap()
    }

    #[test]
    fn accepts_until_full_then_rejects() {
        let mut b = buf(2);
        b.try_enqueue(OutputPort::new(0), pkt(8)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(8)).unwrap();
        let err = b.try_enqueue(OutputPort::new(2), pkt(8)).unwrap_err();
        assert_eq!(err.reason, RejectReason::BufferFull);
        assert_eq!(b.stats().packets_rejected(), 1);
        assert_eq!(b.used_slots(), 2);
    }

    #[test]
    fn multi_slot_packet_consumes_multiple_slots() {
        let mut b = buf(4);
        b.try_enqueue(OutputPort::new(0), pkt(32)).unwrap(); // 4 slots
        assert_eq!(b.used_slots(), 4);
        assert!(!b.can_accept(OutputPort::new(0), 1));
        let p = b.dequeue(OutputPort::new(0)).unwrap();
        assert_eq!(p.length_bytes(), 32);
        assert_eq!(b.used_slots(), 0);
    }

    #[test]
    fn oversized_packet_rejected_as_too_large() {
        let mut b = buf(2);
        let err = b.try_enqueue(OutputPort::new(0), pkt(32)).unwrap_err();
        assert_eq!(err.reason, RejectReason::PacketTooLarge);
    }

    #[test]
    fn head_of_line_blocking_semantics() {
        let mut b = buf(4);
        b.try_enqueue(OutputPort::new(3), pkt(8)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(8)).unwrap();
        // Head is for out3; out1 sees nothing.
        assert_eq!(b.queue_len(OutputPort::new(1)), 0);
        assert!(b.front(OutputPort::new(1)).is_none());
        assert!(b.dequeue(OutputPort::new(1)).is_none());
        // Draining out3 unblocks out1.
        assert!(b.dequeue(OutputPort::new(3)).is_some());
        assert_eq!(b.queue_len(OutputPort::new(1)), 1);
        assert!(b.dequeue(OutputPort::new(1)).is_some());
        assert!(b.is_empty());
    }

    #[test]
    fn hol_blocking_counts_foreign_output_residents() {
        let mut b = buf(4);
        assert_eq!(b.note_hol_blocked(), 0); // empty buffer
        b.try_enqueue(OutputPort::new(3), pkt(8)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(8)).unwrap();
        b.try_enqueue(OutputPort::new(3), pkt(8)).unwrap();
        // Head is for out3; the out1 packet is blocked, the second out3
        // packet merely queues behind its own output.
        assert_eq!(b.note_hol_blocked(), 1);
        assert_eq!(b.stats().hol_blocked(), 1);
        b.dequeue(OutputPort::new(3)).unwrap();
        // New head is the out1 packet: the trailing out3 packet is blocked.
        assert_eq!(b.note_hol_blocked(), 1);
        assert_eq!(b.stats().hol_blocked(), 2);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut b = buf(4);
        for i in 0..4 {
            let p = Packet::builder(NodeId::new(i), NodeId::new(9)).build();
            b.try_enqueue(OutputPort::new(2), p).unwrap();
        }
        for i in 0..4 {
            let p = b.dequeue(OutputPort::new(2)).unwrap();
            assert_eq!(p.source(), NodeId::new(i));
        }
    }

    #[test]
    fn bad_output_port_is_rejected_without_counting() {
        let mut b = buf(2);
        let err = b.try_enqueue(OutputPort::new(4), pkt(8)).unwrap_err();
        assert_eq!(err.reason, RejectReason::NoSuchOutput);
        assert_eq!(b.stats().offered(), 0);
    }

    #[test]
    fn eligible_outputs_reports_only_head() {
        let mut b = buf(4);
        b.try_enqueue(OutputPort::new(2), pkt(8)).unwrap();
        b.try_enqueue(OutputPort::new(0), pkt(8)).unwrap();
        assert_eq!(b.eligible_outputs(), vec![OutputPort::new(2)]);
    }

    #[test]
    fn invariants_hold_through_random_ops() {
        let mut b = buf(6);
        for i in 0..50 {
            let out = OutputPort::new(i % 4);
            let _ = b.try_enqueue(out, pkt(1 + (i * 7) % 32));
            if i % 3 == 0 {
                if let Some(o) = b.head_output() {
                    b.dequeue(o);
                }
            }
            b.check_invariants();
        }
    }
}
