//! The FIFO buffer: the paper's baseline ("control") design.
//!
//! A single first-in first-out queue with one write port and one read port.
//! Simple to build and ideal for variable-length packets (storage is a ring
//! of slots), but it suffers **head-of-line blocking**: when the packet at
//! the head waits for a busy output, every packet behind it waits too, even
//! if their outputs are idle.
//!
//! # Storage layout
//!
//! The queue is structure-of-arrays like [`SoaSlots`](crate::SoaSlots): one
//! ring of `capacity` entry positions described by three parallel arrays —
//! `outs` (output-port index), `entry_slots` (slot count) and the
//! out-of-line payload `arena` — addressed by `head`/`len` ring registers.
//! A packet occupies at least one slot, so resident entries can never
//! exceed `capacity` and the ring cannot overflow. The pre-SoA `VecDeque`
//! implementation survives verbatim in `aos.rs` as the differential
//! reference.

use crate::audit::{audit_ensure, strict_audit, AuditError};
use crate::buffer::{BufferConfig, BufferKind, SwitchBuffer};
use crate::error::{ConfigError, RejectReason, Rejected};
use crate::packet::Packet;
use crate::stats::BufferStats;
use crate::OutputPort;

/// Single-queue first-in first-out input buffer.
///
/// Only the head packet is ever transmittable; consequently
/// [`queue_len`](SwitchBuffer::queue_len) reports the entire queue length for
/// the head packet's output and `0` for every other output.
///
/// # Examples
///
/// ```
/// use damq_core::{BufferConfig, FifoBuffer, NodeId, OutputPort, Packet, SwitchBuffer};
///
/// let mut buf = FifoBuffer::new(BufferConfig::new(4, 4))?;
/// let a = Packet::builder(NodeId::new(0), NodeId::new(1)).build();
/// let b = Packet::builder(NodeId::new(0), NodeId::new(2)).build();
/// buf.try_enqueue(OutputPort::new(1), a)?;
/// buf.try_enqueue(OutputPort::new(2), b)?;
///
/// // b is routed to out2 and out2 is idle -- but b is stuck behind a.
/// assert_eq!(buf.queue_len(OutputPort::new(2)), 0);
/// assert_eq!(buf.queue_len(OutputPort::new(1)), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FifoBuffer {
    config: BufferConfig,
    /// Output-port index of the entry at each ring position (parallel to
    /// `arena`; stale outside the live window).
    outs: Vec<u16>,
    /// Slot count of the entry at each ring position.
    entry_slots: Vec<u16>,
    /// Out-of-line payloads; `Some` exactly inside the live window.
    arena: Vec<Option<Packet>>,
    /// Ring head offset.
    head: u16,
    /// Resident-entry count.
    len: u16,
    used_slots: usize,
    /// Ring slots permanently removed by fault injection.
    dead: usize,
    /// Kills issued while the ring was full; consumed by later dequeues.
    pending_kills: usize,
    stats: BufferStats,
}

impl FifoBuffer {
    /// Creates an empty FIFO buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration has a zero dimension.
    pub fn new(config: BufferConfig) -> Result<Self, ConfigError> {
        config.validate(BufferKind::Fifo)?;
        assert!(
            config.capacity() < u16::MAX as usize,
            "u16 ring registers cap the capacity"
        );
        Ok(FifoBuffer {
            config,
            outs: vec![0; config.capacity()],
            entry_slots: vec![0; config.capacity()],
            arena: (0..config.capacity()).map(|_| None).collect(),
            head: 0,
            len: 0,
            used_slots: 0,
            dead: 0,
            pending_kills: 0,
            stats: BufferStats::new(),
        })
    }

    /// Ring position of entry `i` (0 = head).
    fn pos(&self, i: usize) -> usize {
        (self.head as usize + i) % self.arena.len()
    }

    /// The output port of the head packet, if any.
    pub fn head_output(&self) -> Option<OutputPort> {
        if self.len == 0 {
            None
        } else {
            Some(OutputPort::new(self.outs[self.head as usize] as usize))
        }
    }

    fn head_matches(&self, output: OutputPort) -> bool {
        self.head_output() == Some(output)
    }
}

impl SwitchBuffer for FifoBuffer {
    fn kind(&self) -> BufferKind {
        BufferKind::Fifo
    }

    fn fanout(&self) -> usize {
        self.config.fanout_count()
    }

    fn capacity_slots(&self) -> usize {
        self.config.capacity()
    }

    fn used_slots(&self) -> usize {
        self.used_slots
    }

    fn slot_bytes(&self) -> usize {
        self.config.slot_size()
    }

    fn read_ports(&self) -> usize {
        1
    }

    fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        output.index() < self.fanout()
            && self.used_slots + slots + self.dead_slots() <= self.capacity_slots()
    }

    fn accept_capacity(&self, output: OutputPort) -> usize {
        if output.index() < self.fanout() {
            self.capacity_slots()
                .saturating_sub(self.used_slots + self.dead_slots())
        } else {
            0
        }
    }

    fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
        let slots = packet.slots_needed(self.slot_bytes());
        if output.index() >= self.fanout() {
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::NoSuchOutput,
            });
        }
        if slots > self.capacity_slots() {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::PacketTooLarge,
            });
        }
        if slots + self.dead_slots() > self.capacity_slots() {
            // Fits a healthy ring but not what the faults have left of it.
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::Faulted,
            });
        }
        if self.used_slots + slots + self.dead_slots() > self.capacity_slots() {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::BufferFull,
            });
        }
        self.used_slots += slots;
        self.stats.record_accepted(slots);
        self.stats.observe_used_slots(self.used_slots);
        let tail = self.pos(self.len as usize);
        self.outs[tail] = output.index() as u16;
        self.entry_slots[tail] = slots as u16;
        self.arena[tail] = Some(packet);
        self.len += 1;
        strict_audit!(self);
        Ok(())
    }

    fn queue_len(&self, output: OutputPort) -> usize {
        if self.head_matches(output) {
            self.len as usize
        } else {
            0
        }
    }

    fn queue_lens_into(&self, lens: &mut [u16]) {
        lens.fill(0);
        if self.len > 0 {
            lens[self.outs[self.head as usize] as usize] = self.len;
        }
    }

    fn front(&self, output: OutputPort) -> Option<&Packet> {
        if !self.head_matches(output) {
            return None;
        }
        self.arena[self.head as usize].as_ref()
    }

    fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        if !self.head_matches(output) {
            return None;
        }
        let head = self.head as usize;
        let slots = self.entry_slots[head] as usize;
        // lint: allow — head_matches() proved the head cell holds a payload.
        let packet = self.arena[head].take().expect("head checked above");
        self.head = ((head + 1) % self.arena.len()) as u16;
        self.len -= 1;
        self.used_slots -= slots;
        // Freed slots feed deferred kills before returning to service.
        let consumed = self.pending_kills.min(slots);
        self.pending_kills -= consumed;
        self.dead += consumed;
        self.stats.record_forwarded();
        strict_audit!(self);
        Some(packet)
    }

    fn packet_count(&self) -> usize {
        self.len as usize
    }

    fn stats(&self) -> &BufferStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn kill_slot(&mut self, hint: OutputPort) -> bool {
        // A FIFO ring has no per-output partitions; the hint is irrelevant.
        let _ = hint;
        if self.dead_slots() >= self.capacity_slots() {
            return false;
        }
        if self.used_slots + self.dead < self.capacity_slots() {
            self.dead += 1;
        } else {
            self.pending_kills += 1;
        }
        strict_audit!(self);
        true
    }

    fn dead_slots(&self) -> usize {
        self.dead + self.pending_kills
    }

    fn note_hol_blocked(&mut self) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let head_out = self.outs[self.head as usize];
        let mut blocked = 0u64;
        for i in 1..self.len as usize {
            if self.outs[self.pos(i)] != head_out {
                blocked += 1;
            }
        }
        self.stats.record_hol_blocked(blocked);
        blocked
    }

    fn audit(&self) -> Result<(), AuditError> {
        let cap = self.arena.len();
        audit_ensure!(
            (self.len as usize) <= cap,
            "register-sync",
            "FIFO length register {} exceeds the {cap}-entry ring",
            self.len
        );
        let mut sum = 0usize;
        for i in 0..self.len as usize {
            let p = self.pos(i);
            let Some(packet) = self.arena[p].as_ref() else {
                return Err(AuditError::new(
                    "queue-shape",
                    format!("live ring position {p} has no payload"),
                ));
            };
            audit_ensure!(
                (self.outs[p] as usize) < self.fanout(),
                "queue-shape",
                "entry routed to nonexistent output {}",
                self.outs[p]
            );
            audit_ensure!(
                self.entry_slots[p] as usize == packet.slots_needed(self.slot_bytes()),
                "queue-shape",
                "entry slot count {} disagrees with its packet length",
                self.entry_slots[p]
            );
            sum += self.entry_slots[p] as usize;
        }
        audit_ensure!(
            sum == self.used_slots,
            "register-sync",
            "FIFO used_slots register says {} but entries sum to {sum}",
            self.used_slots
        );
        for i in self.len as usize..cap {
            let p = self.pos(i);
            audit_ensure!(
                self.arena[p].is_none(),
                "list-partition",
                "ring position {p} outside the live window holds a payload"
            );
        }
        audit_ensure!(
            self.used_slots + self.dead <= self.capacity_slots(),
            "capacity-bound",
            "FIFO holds {} live + {} dead of {} slots",
            self.used_slots,
            self.dead,
            self.capacity_slots()
        );
        audit_ensure!(
            self.dead + self.pending_kills <= self.capacity_slots(),
            "fault-ledger",
            "FIFO records {} dead + {} pending kills over {} slots",
            self.dead,
            self.pending_kills,
            self.capacity_slots()
        );
        audit_ensure!(
            self.pending_kills == 0 || self.used_slots + self.dead == self.capacity_slots(),
            "fault-ledger",
            "FIFO defers {} kills while slots are free",
            self.pending_kills
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn pkt(len: usize) -> Packet {
        Packet::builder(NodeId::new(0), NodeId::new(1))
            .length_bytes(len)
            .build()
    }

    fn buf(slots: usize) -> FifoBuffer {
        FifoBuffer::new(BufferConfig::new(4, slots)).unwrap()
    }

    #[test]
    fn accepts_until_full_then_rejects() {
        let mut b = buf(2);
        b.try_enqueue(OutputPort::new(0), pkt(8)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(8)).unwrap();
        let err = b.try_enqueue(OutputPort::new(2), pkt(8)).unwrap_err();
        assert_eq!(err.reason, RejectReason::BufferFull);
        assert_eq!(b.stats().packets_rejected(), 1);
        assert_eq!(b.used_slots(), 2);
    }

    #[test]
    fn multi_slot_packet_consumes_multiple_slots() {
        let mut b = buf(4);
        b.try_enqueue(OutputPort::new(0), pkt(32)).unwrap(); // 4 slots
        assert_eq!(b.used_slots(), 4);
        assert!(!b.can_accept(OutputPort::new(0), 1));
        let p = b.dequeue(OutputPort::new(0)).unwrap();
        assert_eq!(p.length_bytes(), 32);
        assert_eq!(b.used_slots(), 0);
    }

    #[test]
    fn oversized_packet_rejected_as_too_large() {
        let mut b = buf(2);
        let err = b.try_enqueue(OutputPort::new(0), pkt(32)).unwrap_err();
        assert_eq!(err.reason, RejectReason::PacketTooLarge);
    }

    #[test]
    fn head_of_line_blocking_semantics() {
        let mut b = buf(4);
        b.try_enqueue(OutputPort::new(3), pkt(8)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(8)).unwrap();
        // Head is for out3; out1 sees nothing.
        assert_eq!(b.queue_len(OutputPort::new(1)), 0);
        assert!(b.front(OutputPort::new(1)).is_none());
        assert!(b.dequeue(OutputPort::new(1)).is_none());
        // Draining out3 unblocks out1.
        assert!(b.dequeue(OutputPort::new(3)).is_some());
        assert_eq!(b.queue_len(OutputPort::new(1)), 1);
        assert!(b.dequeue(OutputPort::new(1)).is_some());
        assert!(b.is_empty());
    }

    #[test]
    fn hol_blocking_counts_foreign_output_residents() {
        let mut b = buf(4);
        assert_eq!(b.note_hol_blocked(), 0); // empty buffer
        b.try_enqueue(OutputPort::new(3), pkt(8)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(8)).unwrap();
        b.try_enqueue(OutputPort::new(3), pkt(8)).unwrap();
        // Head is for out3; the out1 packet is blocked, the second out3
        // packet merely queues behind its own output.
        assert_eq!(b.note_hol_blocked(), 1);
        assert_eq!(b.stats().hol_blocked(), 1);
        b.dequeue(OutputPort::new(3)).unwrap();
        // New head is the out1 packet: the trailing out3 packet is blocked.
        assert_eq!(b.note_hol_blocked(), 1);
        assert_eq!(b.stats().hol_blocked(), 2);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut b = buf(4);
        for i in 0..4 {
            let p = Packet::builder(NodeId::new(i), NodeId::new(9)).build();
            b.try_enqueue(OutputPort::new(2), p).unwrap();
        }
        for i in 0..4 {
            let p = b.dequeue(OutputPort::new(2)).unwrap();
            assert_eq!(p.source(), NodeId::new(i));
        }
    }

    #[test]
    fn ring_wraps_through_many_cycles() {
        let mut b = buf(3);
        for i in 0..40 {
            let p = Packet::builder(NodeId::new(i), NodeId::new(9)).build();
            b.try_enqueue(OutputPort::new(i % 4), p).unwrap();
            if i % 2 == 1 {
                let out = b.head_output().unwrap();
                assert_eq!(b.dequeue(out).unwrap().source(), NodeId::new(i - 1));
                let out = b.head_output().unwrap();
                assert_eq!(b.dequeue(out).unwrap().source(), NodeId::new(i));
            }
            b.check_invariants();
        }
        assert!(b.is_empty());
    }

    #[test]
    fn bad_output_port_is_rejected_without_counting() {
        let mut b = buf(2);
        let err = b.try_enqueue(OutputPort::new(4), pkt(8)).unwrap_err();
        assert_eq!(err.reason, RejectReason::NoSuchOutput);
        assert_eq!(b.stats().offered(), 0);
    }

    #[test]
    fn eligible_outputs_reports_only_head() {
        let mut b = buf(4);
        b.try_enqueue(OutputPort::new(2), pkt(8)).unwrap();
        b.try_enqueue(OutputPort::new(0), pkt(8)).unwrap();
        assert_eq!(b.eligible_outputs(), vec![OutputPort::new(2)]);
    }

    #[test]
    fn queue_lens_into_reports_only_the_head_output() {
        let mut b = buf(4);
        let mut lens = [9u16; 4];
        b.queue_lens_into(&mut lens);
        assert_eq!(lens, [0; 4]);
        b.try_enqueue(OutputPort::new(2), pkt(8)).unwrap();
        b.try_enqueue(OutputPort::new(0), pkt(8)).unwrap();
        b.queue_lens_into(&mut lens);
        assert_eq!(lens, [0, 0, 2, 0]);
    }

    #[test]
    fn invariants_hold_through_random_ops() {
        let mut b = buf(6);
        for i in 0..50 {
            let out = OutputPort::new(i % 4);
            let _ = b.try_enqueue(out, pkt(1 + (i * 7) % 32));
            if i % 3 == 0 {
                if let Some(o) = b.head_output() {
                    b.dequeue(o);
                }
            }
            b.check_invariants();
        }
    }
}
