//! Strongly-typed identifiers for ports, nodes and packets.
//!
//! Switch code juggles many small integers — input-port numbers, output-port
//! numbers, node addresses, packet serial numbers. These newtypes keep them
//! from being mixed up at compile time ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Index of an input port on a switch.
///
/// # Examples
///
/// ```
/// use damq_core::InputPort;
///
/// let p = InputPort::new(2);
/// assert_eq!(p.index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InputPort(usize);

impl InputPort {
    /// Creates an input-port identifier from its index.
    pub const fn new(index: usize) -> Self {
        InputPort(index)
    }

    /// Returns the zero-based index of this port.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for InputPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in{}", self.0)
    }
}

impl From<usize> for InputPort {
    fn from(index: usize) -> Self {
        InputPort(index)
    }
}

/// Index of an output port on a switch.
///
/// Output ports identify the per-output queues inside multi-queue buffers
/// ([`SamqBuffer`], [`SafcBuffer`], [`DamqBuffer`]).
///
/// [`SamqBuffer`]: crate::SamqBuffer
/// [`SafcBuffer`]: crate::SafcBuffer
/// [`DamqBuffer`]: crate::DamqBuffer
///
/// # Examples
///
/// ```
/// use damq_core::OutputPort;
///
/// let p = OutputPort::new(0);
/// assert_eq!(p.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OutputPort(usize);

impl OutputPort {
    /// Creates an output-port identifier from its index.
    pub const fn new(index: usize) -> Self {
        OutputPort(index)
    }

    /// Returns the zero-based index of this port.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over all output ports of a switch with `fanout` outputs.
    ///
    /// # Examples
    ///
    /// ```
    /// use damq_core::OutputPort;
    ///
    /// let all: Vec<_> = OutputPort::all(3).collect();
    /// assert_eq!(all.len(), 3);
    /// assert_eq!(all[2], OutputPort::new(2));
    /// ```
    pub fn all(fanout: usize) -> impl Iterator<Item = OutputPort> {
        (0..fanout).map(OutputPort)
    }
}

impl fmt::Display for OutputPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "out{}", self.0)
    }
}

impl From<usize> for OutputPort {
    fn from(index: usize) -> Self {
        OutputPort(index)
    }
}

/// Address of a node (source or destination) in a network.
///
/// In the Omega-network experiments nodes `0..64` are both the processor
/// (source) addresses and the memory (sink) addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node address.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the numeric address.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Extracts the base-`radix` digit of this address used for routing at
    /// `stage`, counting stages from the network input side.
    ///
    /// A packet traversing an Omega network built from `radix`×`radix`
    /// switches selects, at each stage, the output port named by one digit of
    /// its destination address, most-significant digit first.
    ///
    /// # Panics
    ///
    /// Panics if `radix < 2`.
    ///
    /// # Examples
    ///
    /// ```
    /// use damq_core::NodeId;
    ///
    /// // 0b011011 routed through 2x2 switches: digits 0,1,1,0,1,1.
    /// let n = NodeId::new(0b011011);
    /// assert_eq!(n.route_digit(0, 2, 6), 0);
    /// assert_eq!(n.route_digit(1, 2, 6), 1);
    /// assert_eq!(n.route_digit(5, 2, 6), 1);
    /// ```
    pub fn route_digit(self, stage: usize, radix: usize, stages: usize) -> usize {
        assert!(radix >= 2, "radix must be at least 2");
        let shift = stages - 1 - stage;
        (self.0 / radix.pow(shift as u32)) % radix
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

/// Unique serial number of a packet, assigned at generation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(u64);

impl PacketId {
    /// Creates a packet identifier from a raw serial number.
    pub const fn new(serial: u64) -> Self {
        PacketId(serial)
    }

    /// Returns the raw serial number.
    pub const fn serial(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

impl From<u64> for PacketId {
    fn from(serial: u64) -> Self {
        PacketId(serial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_round_trip() {
        assert_eq!(InputPort::new(3).index(), 3);
        assert_eq!(OutputPort::new(7).index(), 7);
        assert_eq!(NodeId::new(63).index(), 63);
        assert_eq!(PacketId::new(42).serial(), 42);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(InputPort::new(1).to_string(), "in1");
        assert_eq!(OutputPort::new(2).to_string(), "out2");
        assert_eq!(NodeId::new(9).to_string(), "node9");
        assert_eq!(PacketId::new(5).to_string(), "pkt#5");
    }

    #[test]
    fn output_port_all_enumerates_fanout() {
        let v: Vec<_> = OutputPort::all(4).map(OutputPort::index).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn route_digits_base_4() {
        // 27 = 1*16 + 2*4 + 3 in base 4 over 3 stages.
        let n = NodeId::new(27);
        assert_eq!(n.route_digit(0, 4, 3), 1);
        assert_eq!(n.route_digit(1, 4, 3), 2);
        assert_eq!(n.route_digit(2, 4, 3), 3);
    }

    #[test]
    fn route_digits_base_2_cover_all_bits() {
        let n = NodeId::new(0b101100);
        let digits: Vec<_> = (0..6).map(|s| n.route_digit(s, 2, 6)).collect();
        assert_eq!(digits, vec![1, 0, 1, 1, 0, 0]);
    }

    #[test]
    fn from_usize_conversions() {
        let p: InputPort = 5usize.into();
        assert_eq!(p, InputPort::new(5));
        let o: OutputPort = 6usize.into();
        assert_eq!(o, OutputPort::new(6));
        let n: NodeId = 7usize.into();
        assert_eq!(n, NodeId::new(7));
    }
}
