//! Input-port buffer structures for small n×n VLSI communication switches.
//!
//! This crate implements the four buffer designs compared in
//! *Tamir & Frazier, "High-Performance Multi-Queue Buffers for VLSI
//! Communication Switches", ISCA 1988*:
//!
//! * [`FifoBuffer`] — the classic single first-in first-out queue,
//! * [`SamqBuffer`] — statically-allocated multi-queue,
//! * [`SafcBuffer`] — statically-allocated fully-connected,
//! * [`DamqBuffer`] — the paper's **dynamically-allocated multi-queue**
//!   buffer, built on linked lists of fixed-size slots ([`SlotPool`]).
//!
//! All four implement the [`SwitchBuffer`] trait so higher layers (the
//! switch model, the network simulator, the benchmark harness) can sweep
//! designs generically via [`BufferConfig::build`] and [`BufferKind`].
//!
//! # Quick start
//!
//! ```
//! use damq_core::{BufferConfig, BufferKind, NodeId, OutputPort, Packet, SwitchBuffer};
//!
//! // A DAMQ buffer for a 4x4 switch with four 8-byte slots.
//! let mut buf = BufferConfig::new(4, 4).build(BufferKind::Damq)?;
//!
//! // The router decided this packet leaves through output 2; store it.
//! let packet = Packet::builder(NodeId::new(5), NodeId::new(42)).build();
//! buf.try_enqueue(OutputPort::new(2), packet)?;
//!
//! // The arbiter granted output 2 to this buffer; transmit.
//! let sent = buf.dequeue(OutputPort::new(2)).expect("queued above");
//! assert_eq!(sent.dest(), NodeId::new(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Which design when?
//!
//! The paper's evaluation (reproduced in the `damq-bench` crate of this
//! workspace) shows DAMQ dominating under uniform traffic: with the same
//! storage it discards fewer packets than all alternatives, and a network of
//! 4×4 DAMQ switches saturates at ~40% higher throughput than FIFO. Under
//! hot-spot traffic all designs tree-saturate identically, which is an
//! argument about networks, not buffers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod any;
mod aos;
mod audit;
mod buffer;
mod dafc;
mod damq;
mod error;
mod faults;
mod fifo;
mod ids;
mod packet;
mod safc;
mod samq;
mod slots;
mod soa;
mod static_mq;
mod stats;

pub use any::{AnyBuffer, BuildBuffer};
pub use aos::{AosDafcBuffer, AosDamqBuffer, AosFifoBuffer, AosSafcBuffer, AosSamqBuffer};
pub use audit::AuditError;
pub use buffer::{BufferConfig, BufferKind, FrontMeta, SwitchBuffer};
pub use dafc::DafcBuffer;
pub use damq::DamqBuffer;
pub use error::{ConfigError, RejectReason, Rejected};
pub use faults::{FaultEvent, FaultLedger, FaultPlan, FaultSite, FaultSpec};
pub use fifo::FifoBuffer;
pub use ids::{InputPort, NodeId, OutputPort, PacketId};
pub use packet::{Packet, PacketBuilder, PacketIdSource, DEFAULT_SLOT_BYTES, MAX_PACKET_BYTES};
pub use safc::SafcBuffer;
pub use samq::SamqBuffer;
pub use slots::{SlotId, SlotPool};
pub use soa::SoaSlots;
pub use stats::BufferStats;

#[cfg(test)]
mod trait_object_tests {
    use super::*;

    #[test]
    fn switch_buffer_is_object_safe_and_send() {
        fn assert_send<T: Send + ?Sized>() {}
        assert_send::<dyn SwitchBuffer + Send>();
        let cfg = BufferConfig::new(2, 2);
        let buffers: Vec<Box<dyn SwitchBuffer>> = BufferKind::ALL
            .iter()
            .map(|&k| cfg.build(k).unwrap())
            .collect();
        assert_eq!(buffers.len(), 4);
    }

    #[test]
    fn all_kinds_agree_on_empty_behaviour() {
        let cfg = BufferConfig::new(4, 4);
        for kind in BufferKind::ALL {
            let mut b = cfg.build(kind).unwrap();
            assert!(b.is_empty(), "{kind}");
            assert_eq!(b.free_slots(), 4, "{kind}");
            assert_eq!(b.dequeue(OutputPort::new(0)), None, "{kind}");
            assert!(b.eligible_outputs().is_empty(), "{kind}");
            b.check_invariants();
        }
    }

    #[test]
    fn all_kinds_round_trip_one_packet() {
        let cfg = BufferConfig::new(4, 4);
        for kind in BufferKind::ALL {
            let mut b = cfg.build(kind).unwrap();
            let p = Packet::builder(NodeId::new(1), NodeId::new(2)).build();
            b.try_enqueue(OutputPort::new(1), p.clone()).unwrap();
            assert_eq!(b.packet_count(), 1, "{kind}");
            assert_eq!(b.front(OutputPort::new(1)), Some(&p), "{kind}");
            assert_eq!(b.dequeue(OutputPort::new(1)), Some(p), "{kind}");
            assert!(b.is_empty(), "{kind}");
            b.check_invariants();
        }
    }
}
