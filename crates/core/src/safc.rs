//! The SAFC buffer: statically-allocated, fully-connected.
//!
//! Storage is organised exactly like [`SamqBuffer`](crate::SamqBuffer) —
//! per-output queues with static partitions — but each queue has its own
//! path to its output port (four 4×1 switches instead of one 4×4 crossbar in
//! the paper's Figure 1b). One input buffer can therefore transmit to
//! *several* outputs in the same cycle, which is reflected here by
//! [`read_ports`](damq_core::SwitchBuffer::read_ports) equalling the fanout.
//!
//! The paper's critique: the replicated connection/control hardware costs
//! silicon, flow control needs per-queue state at the upstream node, and the
//! static partition still wastes storage. The evaluation shows SAFC barely
//! beats SAMQ — full connectivity buys little.

use crate::buffer::{BufferConfig, BufferKind, SwitchBuffer};
use crate::error::{ConfigError, Rejected};
use crate::packet::Packet;
use crate::static_mq::{impl_static_switch_buffer, StaticMultiQueue};
use crate::OutputPort;

/// Statically-allocated fully-connected input buffer (one read port per
/// output).
///
/// # Examples
///
/// ```
/// use damq_core::{BufferConfig, SafcBuffer, NodeId, OutputPort, Packet, SwitchBuffer};
///
/// let mut buf = SafcBuffer::new(BufferConfig::new(4, 8))?;
/// assert_eq!(buf.read_ports(), 4); // can feed all four outputs at once
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SafcBuffer {
    inner: StaticMultiQueue,
}

impl SafcBuffer {
    /// Creates an empty SAFC buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if a dimension is zero or the capacity does
    /// not divide evenly among the output queues.
    pub fn new(config: BufferConfig) -> Result<Self, ConfigError> {
        Ok(SafcBuffer {
            inner: StaticMultiQueue::new(config, BufferKind::Safc)?,
        })
    }

    /// Slot budget statically reserved for each output's queue.
    pub fn per_queue_capacity(&self) -> usize {
        self.inner.per_queue_capacity()
    }
}

impl_static_switch_buffer!(SafcBuffer, BufferKind::Safc, |b: &SafcBuffer| b
    .inner
    .config()
    .fanout_count());

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn pkt() -> Packet {
        Packet::builder(NodeId::new(0), NodeId::new(1)).build()
    }

    fn buf() -> SafcBuffer {
        SafcBuffer::new(BufferConfig::new(4, 8)).unwrap()
    }

    #[test]
    fn read_ports_equal_fanout() {
        assert_eq!(buf().read_ports(), 4);
    }

    #[test]
    fn can_dequeue_to_multiple_outputs_in_one_cycle() {
        let mut b = buf();
        for o in 0..4 {
            b.try_enqueue(OutputPort::new(o), pkt()).unwrap();
        }
        // A fully-connected buffer drains one packet per output per cycle.
        let drained: Vec<_> = (0..4)
            .filter_map(|o| b.dequeue(OutputPort::new(o)))
            .collect();
        assert_eq!(drained.len(), 4);
        assert!(b.is_empty());
    }

    #[test]
    fn static_partition_identical_to_samq() {
        let mut b = buf();
        b.try_enqueue(OutputPort::new(2), pkt()).unwrap();
        b.try_enqueue(OutputPort::new(2), pkt()).unwrap();
        assert!(b.try_enqueue(OutputPort::new(2), pkt()).is_err());
        assert!(b.can_accept(OutputPort::new(0), 1));
    }

    #[test]
    fn rejects_uneven_capacity() {
        assert!(SafcBuffer::new(BufferConfig::new(4, 7)).is_err());
    }

    #[test]
    fn invariants_after_mixed_ops() {
        let mut b = buf();
        for i in 0..40 {
            let out = OutputPort::new((i * 3) % 4);
            let _ = b.try_enqueue(out, pkt());
            if i % 2 == 1 {
                b.dequeue(out);
            }
            b.check_invariants();
        }
    }
}
