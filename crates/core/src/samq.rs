//! The SAMQ buffer: statically-allocated multi-queue.
//!
//! One FIFO queue per output port inside a single buffer with a single read
//! port and a single write port, connected to the outputs through an
//! ordinary crossbar. Segregating packets by output removes FIFO's
//! head-of-line blocking, but the storage is *statically* partitioned: a
//! packet for output *o* can be rejected while slots reserved for other
//! outputs sit empty.

use crate::buffer::{BufferConfig, BufferKind, SwitchBuffer};
use crate::error::{ConfigError, Rejected};
use crate::packet::Packet;
use crate::static_mq::{impl_static_switch_buffer, StaticMultiQueue};
use crate::OutputPort;

/// Statically-allocated multi-queue input buffer (single read port).
///
/// # Examples
///
/// ```
/// use damq_core::{BufferConfig, SamqBuffer, NodeId, OutputPort, Packet, SwitchBuffer};
///
/// let mut buf = SamqBuffer::new(BufferConfig::new(2, 4))?; // 2 slots per queue
/// let mk = || Packet::builder(NodeId::new(0), NodeId::new(1)).build();
/// buf.try_enqueue(OutputPort::new(0), mk())?;
/// buf.try_enqueue(OutputPort::new(0), mk())?;
///
/// // Queue 0 is full even though queue 1's two slots are empty.
/// assert!(buf.try_enqueue(OutputPort::new(0), mk()).is_err());
/// assert!(buf.can_accept(OutputPort::new(1), 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SamqBuffer {
    inner: StaticMultiQueue,
}

impl SamqBuffer {
    /// Creates an empty SAMQ buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if a dimension is zero or the capacity does
    /// not divide evenly among the output queues.
    pub fn new(config: BufferConfig) -> Result<Self, ConfigError> {
        Ok(SamqBuffer {
            inner: StaticMultiQueue::new(config, BufferKind::Samq)?,
        })
    }

    /// Slot budget statically reserved for each output's queue.
    pub fn per_queue_capacity(&self) -> usize {
        self.inner.per_queue_capacity()
    }
}

impl_static_switch_buffer!(SamqBuffer, BufferKind::Samq, |_b| 1);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RejectReason;
    use crate::NodeId;

    fn pkt(len: usize) -> Packet {
        Packet::builder(NodeId::new(0), NodeId::new(1))
            .length_bytes(len)
            .build()
    }

    fn buf() -> SamqBuffer {
        // 4 outputs, 8 slots -> 2 slots per queue.
        SamqBuffer::new(BufferConfig::new(4, 8)).unwrap()
    }

    #[test]
    fn partitions_evenly() {
        assert_eq!(buf().per_queue_capacity(), 2);
    }

    #[test]
    fn rejects_uneven_capacity() {
        assert!(SamqBuffer::new(BufferConfig::new(4, 6)).is_err());
    }

    #[test]
    fn queue_full_while_buffer_has_space() {
        let mut b = buf();
        b.try_enqueue(OutputPort::new(1), pkt(8)).unwrap();
        b.try_enqueue(OutputPort::new(1), pkt(8)).unwrap();
        let err = b.try_enqueue(OutputPort::new(1), pkt(8)).unwrap_err();
        assert_eq!(err.reason, RejectReason::QueueFull);
        // Six slots remain free overall, but not for queue 1.
        assert_eq!(b.free_slots(), 6);
    }

    #[test]
    fn queues_are_independent_fifos() {
        let mut b = buf();
        let a = Packet::builder(NodeId::new(10), NodeId::new(0)).build();
        let c = Packet::builder(NodeId::new(11), NodeId::new(0)).build();
        b.try_enqueue(OutputPort::new(0), a).unwrap();
        b.try_enqueue(OutputPort::new(3), c).unwrap();
        // No head-of-line blocking: out3 is servable though out0 arrived first.
        assert_eq!(b.queue_len(OutputPort::new(3)), 1);
        assert_eq!(
            b.dequeue(OutputPort::new(3)).unwrap().source(),
            NodeId::new(11)
        );
        assert_eq!(
            b.dequeue(OutputPort::new(0)).unwrap().source(),
            NodeId::new(10)
        );
    }

    #[test]
    fn packet_larger_than_partition_is_too_large() {
        let mut b = buf();
        // 3 slots needed, partition holds 2 -- even an empty queue rejects it.
        let err = b.try_enqueue(OutputPort::new(0), pkt(24)).unwrap_err();
        assert_eq!(err.reason, RejectReason::PacketTooLarge);
    }

    #[test]
    fn single_read_port() {
        assert_eq!(buf().read_ports(), 1);
    }

    #[test]
    fn invariants_after_mixed_ops() {
        let mut b = buf();
        for i in 0..40 {
            let out = OutputPort::new(i % 4);
            let _ = b.try_enqueue(out, pkt(1 + (i % 16)));
            if i % 2 == 0 {
                b.dequeue(out);
            }
            b.check_invariants();
        }
    }
}
