//! Slotted storage managed as linked lists — the DAMQ mechanism.
//!
//! The paper's buffer (§3.1) is an array of fixed-size *slots*, each with an
//! associated **pointer register** naming the next slot of its list. The
//! pointer registers live in a separate array so they can be accessed in
//! parallel with the data. Lists are delimited by **head and tail
//! registers**; one list holds the free slots and one list exists per
//! destination queue. A packet spans one or more slots (its first slot also
//! carries length and new-header registers).
//!
//! [`SlotPool`] models exactly this: a `next` array (the pointer registers),
//! per-list head/tail registers, and per-slot content. It is the storage
//! engine of [`DamqBuffer`](crate::DamqBuffer) and is exposed so that other
//! buffer organisations (e.g. the micro-architecture model) can reuse it.

use std::fmt;

use crate::audit::{audit_ensure, strict_audit, AuditError};
use crate::packet::Packet;

/// Index of a slot within a [`SlotPool`] (the value a pointer register
/// holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(u32);

impl SlotId {
    /// Creates a slot id from a raw index.
    pub const fn new(index: u32) -> Self {
        SlotId(index)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// What a slot currently holds.
#[derive(Debug, Clone)]
enum SlotContent {
    /// On the free list.
    Free,
    /// First slot of a packet; carries the packet and its total slot count
    /// (the "length register" of the paper).
    Head { packet: Packet, slots: usize },
    /// A continuation slot of a multi-slot packet.
    Continuation,
    /// Permanently out of service (fault injection): on no list, never
    /// allocated again.
    Dead,
}

/// Head/tail registers and counters for one linked list.
#[derive(Debug, Clone, Copy, Default)]
struct ListRegs {
    head: Option<SlotId>,
    tail: Option<SlotId>,
    slot_count: usize,
    packet_count: usize,
}

/// A pool of fixed-size slots organised into a free list plus `lists`
/// packet queues, all threaded through per-slot pointer registers.
///
/// # Examples
///
/// ```
/// use damq_core::{NodeId, Packet, SlotPool};
///
/// let mut pool = SlotPool::new(4, 2); // 4 slots, 2 queues
/// let p = Packet::builder(NodeId::new(0), NodeId::new(1)).build();
/// pool.enqueue(1, p.clone(), 1).unwrap();
/// assert_eq!(pool.queue_packets(1), 1);
/// assert_eq!(pool.dequeue(1), Some(p));
/// assert_eq!(pool.free_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SlotPool {
    next: Vec<Option<SlotId>>,
    content: Vec<SlotContent>,
    free: ListRegs,
    queues: Vec<ListRegs>,
    /// Slots marked [`SlotContent::Dead`] (fault injection).
    dead: usize,
    /// Kills registered while no slot was free; the next slots returned to
    /// the free list die instead of rejoining it.
    pending_kills: usize,
}

impl SlotPool {
    /// Creates a pool of `capacity` slots and `lists` empty packet queues;
    /// every slot starts on the free list.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds `u32::MAX` slots.
    pub fn new(capacity: usize, lists: usize) -> Self {
        assert!(capacity > 0, "slot pool needs at least one slot");
        assert!(u32::try_from(capacity).is_ok(), "slot pool too large");
        let mut pool = SlotPool {
            next: vec![None; capacity],
            content: vec![SlotContent::Free; capacity],
            free: ListRegs::default(),
            queues: vec![ListRegs::default(); lists],
            dead: 0,
            pending_kills: 0,
        };
        // Thread all slots onto the free list in address order.
        for i in 0..capacity {
            pool.push_free(SlotId::new(i as u32));
        }
        pool
    }

    /// Total slots in the pool.
    pub fn capacity(&self) -> usize {
        self.next.len()
    }

    /// Number of packet queues.
    pub fn list_count(&self) -> usize {
        self.queues.len()
    }

    /// Slots currently on the free list.
    pub fn free_count(&self) -> usize {
        self.free.slot_count
    }

    /// Slots currently holding packet data.
    pub fn used_count(&self) -> usize {
        self.capacity() - self.free_count() - self.dead
    }

    /// Slots removed from service by [`SlotPool::kill_slot`], including
    /// kills still deferred until a busy slot drains.
    pub fn dead_count(&self) -> usize {
        self.dead + self.pending_kills
    }

    /// Slots the pool can still ever hold: capacity minus registered
    /// kills.
    pub fn effective_capacity(&self) -> usize {
        self.capacity() - self.dead_count()
    }

    /// Permanently removes one slot from service (fault injection).
    ///
    /// A free slot dies immediately: it is popped off the free list and
    /// marked dead, never to be allocated again. If every
    /// slot is busy holding packet data, the kill is *deferred*: the next
    /// slot returned by a dequeue dies instead of rejoining the free list,
    /// so resident packets always drain intact. Returns `false` (and
    /// registers nothing) once every slot is already dead or doomed —
    /// killing never panics and never touches the linked lists of live
    /// queues.
    pub fn kill_slot(&mut self) -> bool {
        if self.dead_count() >= self.capacity() {
            return false;
        }
        match self.pop_free() {
            Some(id) => {
                self.content[id.index()] = SlotContent::Dead;
                self.dead += 1;
            }
            None => self.pending_kills += 1,
        }
        strict_audit!(self);
        true
    }

    /// Packets waiting on queue `list`.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn queue_packets(&self, list: usize) -> usize {
        self.queues[list].packet_count
    }

    /// Slots consumed by queue `list`.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn queue_slots(&self, list: usize) -> usize {
        self.queues[list].slot_count
    }

    /// The packet at the front of queue `list`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn front(&self, list: usize) -> Option<&Packet> {
        let head = self.queues[list].head?;
        match &self.content[head.index()] {
            SlotContent::Head { packet, .. } => Some(packet),
            // lint: allow — enqueue always links a Head slot first, and
            // dequeue unlinks whole packets; a non-Head queue head is a
            // structural corruption that audit() reports precisely.
            _ => unreachable!("queue head register must point at a packet head slot"),
        }
    }

    /// Appends `packet`, which occupies `slots` slots, to queue `list`.
    ///
    /// Slots are taken from the *front* of the free list, one per stored
    /// 8-byte chunk, and linked to the queue's tail — mirroring the paper's
    /// reception sequence.
    ///
    /// # Errors
    ///
    /// Returns the packet back if fewer than `slots` slots are free. The
    /// pool is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range or `slots` is zero.
    pub fn enqueue(&mut self, list: usize, packet: Packet, slots: usize) -> Result<(), Packet> {
        assert!(slots > 0, "a packet occupies at least one slot");
        assert!(list < self.queues.len(), "queue index out of range");
        if self.free.slot_count < slots {
            return Err(packet);
        }
        // lint: allow — free.slot_count >= slots was checked just above, so
        // the free list is provably non-empty for each of the `slots` pops.
        let first = self.pop_free().expect("free count checked");
        self.content[first.index()] = SlotContent::Head { packet, slots };
        self.append_to_queue(list, first);
        for _ in 1..slots {
            // lint: allow — covered by the same free-count check.
            let s = self.pop_free().expect("free count checked");
            self.content[s.index()] = SlotContent::Continuation;
            self.append_to_queue(list, s);
        }
        self.queues[list].packet_count += 1;
        strict_audit!(self);
        Ok(())
    }

    /// Removes and returns the packet at the front of queue `list`, returning
    /// its slots to the free list.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn dequeue(&mut self, list: usize) -> Option<Packet> {
        let first = self.queues[list].head?;
        let (packet, slots) =
            match std::mem::replace(&mut self.content[first.index()], SlotContent::Free) {
                SlotContent::Head { packet, slots } => (packet, slots),
                // lint: allow — a queue head register always names a Head
                // slot (audited invariant "queue-shape").
                other => unreachable!("queue head was {other:?}, not a packet head"),
            };
        self.unlink_queue_head(list);
        self.push_free(first);
        for _ in 1..slots {
            let s = self.queues[list]
                .head
                // lint: allow — enqueue links all `slots` slots of a packet
                // atomically, so the continuations are provably present.
                .expect("multi-slot packet must have continuation slots queued");
            debug_assert!(matches!(self.content[s.index()], SlotContent::Continuation));
            self.content[s.index()] = SlotContent::Free;
            self.unlink_queue_head(list);
            self.push_free(s);
        }
        self.queues[list].packet_count -= 1;
        strict_audit!(self);
        Some(packet)
    }

    /// Appends slot `id` to the tail of queue `list` (pointer-register
    /// update of §3.2.1).
    fn append_to_queue(&mut self, list: usize, id: SlotId) {
        let regs = &mut self.queues[list];
        self.next[id.index()] = None;
        match regs.tail {
            Some(tail) => self.next[tail.index()] = Some(id),
            None => regs.head = Some(id),
        }
        regs.tail = Some(id);
        regs.slot_count += 1;
    }

    /// Advances a queue's head register past its first slot.
    fn unlink_queue_head(&mut self, list: usize) {
        let regs = &mut self.queues[list];
        // lint: allow — both callers check the head register first.
        let head = regs.head.expect("unlink from empty queue");
        regs.head = self.next[head.index()];
        if regs.head.is_none() {
            regs.tail = None;
        }
        self.next[head.index()] = None;
        regs.slot_count -= 1;
    }

    fn push_free(&mut self, id: SlotId) {
        if self.pending_kills > 0 {
            // A deferred kill claims this slot: it dies instead of
            // rejoining the free list.
            self.pending_kills -= 1;
            self.dead += 1;
            self.next[id.index()] = None;
            self.content[id.index()] = SlotContent::Dead;
            return;
        }
        self.next[id.index()] = None;
        match self.free.tail {
            Some(tail) => self.next[tail.index()] = Some(id),
            None => self.free.head = Some(id),
        }
        self.free.tail = Some(id);
        self.free.slot_count += 1;
    }

    fn pop_free(&mut self) -> Option<SlotId> {
        let head = self.free.head?;
        self.free.head = self.next[head.index()];
        if self.free.head.is_none() {
            self.free.tail = None;
        }
        self.next[head.index()] = None;
        self.free.slot_count -= 1;
        Some(head)
    }

    /// Walks one list, marking visited slots in `seen`, and verifies the
    /// list's registers against its links.
    fn audit_list(&self, regs: &ListRegs, seen: &mut [bool], label: &str) -> AuditResult {
        let mut out = Vec::new();
        let mut cur = regs.head;
        while let Some(id) = cur {
            audit_ensure!(
                !seen[id.index()],
                "list-partition",
                "{label}: slot {id} appears on two lists or in a cycle"
            );
            seen[id.index()] = true;
            out.push(id);
            cur = self.next[id.index()];
        }
        audit_ensure!(
            out.len() == regs.slot_count,
            "register-sync",
            "{label}: slot_count register says {} but the links hold {} slots",
            regs.slot_count,
            out.len()
        );
        audit_ensure!(
            out.last().copied() == regs.tail,
            "register-sync",
            "{label}: tail register disagrees with the last linked slot"
        );
        Ok(out)
    }

    /// Verifies every structural invariant of the pool — the audited form of
    /// the paper's §3.1 register contract:
    ///
    /// * every slot is on exactly one list (free or some queue), i.e. the
    ///   lists exactly partition the storage (`list-partition`),
    /// * no list contains a cycle (`list-partition`; a cycle revisits a
    ///   marked slot),
    /// * head/tail/`slot_count`/`packet_count` registers agree with the
    ///   links they summarise (`register-sync`),
    /// * queue contents are contiguous head+continuation runs consistent
    ///   with the stored packet lengths (`queue-shape`).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`AuditError`].
    pub fn audit(&self) -> Result<(), AuditError> {
        let mut seen = vec![false; self.capacity()];
        let free = self.audit_list(&self.free, &mut seen, "free list")?;
        audit_ensure!(
            self.free.packet_count == 0,
            "register-sync",
            "free list carries a nonzero packet_count register"
        );
        for id in free {
            audit_ensure!(
                matches!(self.content[id.index()], SlotContent::Free),
                "queue-shape",
                "free list holds non-free slot {id}"
            );
        }
        for (qi, regs) in self.queues.iter().enumerate() {
            let slots = self.audit_list(regs, &mut seen, &format!("queue {qi}"))?;
            let mut packets = 0;
            let mut i = 0;
            while i < slots.len() {
                match &self.content[slots[i].index()] {
                    SlotContent::Head { slots: k, .. } => {
                        audit_ensure!(
                            i + k <= slots.len(),
                            "queue-shape",
                            "queue {qi}: packet at {} claims {k} slots but the list ends",
                            slots[i]
                        );
                        for j in 1..*k {
                            audit_ensure!(
                                matches!(
                                    self.content[slots[i + j].index()],
                                    SlotContent::Continuation
                                ),
                                "queue-shape",
                                "queue {qi}: packet at {} missing continuation slot",
                                slots[i]
                            );
                        }
                        packets += 1;
                        i += k;
                    }
                    other => {
                        return Err(AuditError::new(
                            "queue-shape",
                            format!(
                                "queue {qi}: expected packet head at {}, found {other:?}",
                                slots[i]
                            ),
                        ));
                    }
                }
            }
            audit_ensure!(
                packets == regs.packet_count,
                "register-sync",
                "queue {qi}: packet_count register says {} but the list holds {packets}",
                regs.packet_count
            );
        }
        // Fault-aware partition: the lists plus the declared dead slots
        // must exactly cover the storage. A slot off every list is legal
        // only if it is marked Dead, and every Dead slot is off-list.
        let mut dead_found = 0;
        for (i, &s) in seen.iter().enumerate() {
            let is_dead = matches!(self.content[i], SlotContent::Dead);
            if !s {
                audit_ensure!(
                    is_dead,
                    "list-partition",
                    "slot slot{i} is on no list (leaked slot)"
                );
                dead_found += 1;
            } else {
                audit_ensure!(
                    !is_dead,
                    "fault-ledger",
                    "dead slot slot{i} is still linked on a list"
                );
            }
        }
        audit_ensure!(
            dead_found == self.dead,
            "fault-ledger",
            "dead register says {} but {dead_found} slots are marked dead",
            self.dead
        );
        audit_ensure!(
            self.dead + self.pending_kills <= self.capacity(),
            "fault-ledger",
            "{} kills registered against {} slots",
            self.dead + self.pending_kills,
            self.capacity()
        );
        Ok(())
    }

    /// Assert-style wrapper over [`SlotPool::audit`] for tests and debug
    /// checks.
    ///
    /// # Panics
    ///
    /// Panics with the audit's description on violation.
    pub fn check_invariants(&self) {
        if let Err(e) = self.audit() {
            // lint: allow — the panicking bridge is this method's contract.
            panic!("slot pool {e}");
        }
    }
}

/// Shorthand for the list-walk helper's return type.
type AuditResult = Result<Vec<SlotId>, AuditError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn pkt(src: usize) -> Packet {
        Packet::builder(NodeId::new(src), NodeId::new(0)).build()
    }

    #[test]
    fn new_pool_is_all_free() {
        let pool = SlotPool::new(12, 5);
        assert_eq!(pool.capacity(), 12);
        assert_eq!(pool.free_count(), 12);
        assert_eq!(pool.used_count(), 0);
        assert_eq!(pool.list_count(), 5);
        pool.check_invariants();
    }

    #[test]
    fn enqueue_dequeue_single_slot_round_trip() {
        let mut pool = SlotPool::new(4, 2);
        pool.enqueue(0, pkt(7), 1).unwrap();
        assert_eq!(pool.free_count(), 3);
        assert_eq!(pool.queue_packets(0), 1);
        assert_eq!(pool.front(0).unwrap().source(), NodeId::new(7));
        let p = pool.dequeue(0).unwrap();
        assert_eq!(p.source(), NodeId::new(7));
        assert_eq!(pool.free_count(), 4);
        pool.check_invariants();
    }

    #[test]
    fn multi_slot_packets_link_and_free_correctly() {
        let mut pool = SlotPool::new(8, 2);
        pool.enqueue(0, pkt(1), 4).unwrap();
        pool.enqueue(1, pkt(2), 3).unwrap();
        assert_eq!(pool.free_count(), 1);
        assert_eq!(pool.queue_slots(0), 4);
        assert_eq!(pool.queue_slots(1), 3);
        pool.check_invariants();
        assert_eq!(pool.dequeue(0).unwrap().source(), NodeId::new(1));
        assert_eq!(pool.free_count(), 5);
        pool.check_invariants();
        assert_eq!(pool.dequeue(1).unwrap().source(), NodeId::new(2));
        assert_eq!(pool.free_count(), 8);
        pool.check_invariants();
    }

    #[test]
    fn enqueue_fails_without_enough_free_slots_and_is_atomic() {
        let mut pool = SlotPool::new(4, 1);
        pool.enqueue(0, pkt(1), 3).unwrap();
        let p = pkt(2);
        let back = pool.enqueue(0, p.clone(), 2).unwrap_err();
        assert_eq!(back, p);
        assert_eq!(pool.free_count(), 1);
        pool.check_invariants();
    }

    #[test]
    fn queues_share_the_free_pool_dynamically() {
        // The defining DAMQ property: one queue may consume all slots.
        let mut pool = SlotPool::new(4, 4);
        for i in 0..4 {
            pool.enqueue(2, pkt(i), 1).unwrap();
        }
        assert_eq!(pool.queue_packets(2), 4);
        assert_eq!(pool.free_count(), 0);
        assert!(pool.enqueue(0, pkt(9), 1).is_err());
        pool.check_invariants();
    }

    #[test]
    fn freed_slots_are_reused_in_fifo_order() {
        let mut pool = SlotPool::new(2, 1);
        pool.enqueue(0, pkt(0), 1).unwrap();
        pool.enqueue(0, pkt(1), 1).unwrap();
        pool.dequeue(0).unwrap();
        pool.enqueue(0, pkt(2), 1).unwrap();
        assert_eq!(pool.dequeue(0).unwrap().source(), NodeId::new(1));
        assert_eq!(pool.dequeue(0).unwrap().source(), NodeId::new(2));
        pool.check_invariants();
    }

    #[test]
    fn per_queue_fifo_order_with_interleaving() {
        let mut pool = SlotPool::new(6, 2);
        pool.enqueue(0, pkt(0), 1).unwrap();
        pool.enqueue(1, pkt(1), 2).unwrap();
        pool.enqueue(0, pkt(2), 1).unwrap();
        pool.enqueue(1, pkt(3), 1).unwrap();
        assert_eq!(pool.dequeue(1).unwrap().source(), NodeId::new(1));
        assert_eq!(pool.dequeue(0).unwrap().source(), NodeId::new(0));
        assert_eq!(pool.dequeue(1).unwrap().source(), NodeId::new(3));
        assert_eq!(pool.dequeue(0).unwrap().source(), NodeId::new(2));
        assert_eq!(pool.dequeue(0), None);
        pool.check_invariants();
    }

    #[test]
    fn dequeue_empty_queue_is_none() {
        let mut pool = SlotPool::new(2, 2);
        assert_eq!(pool.dequeue(0), None);
        assert_eq!(pool.dequeue(1), None);
    }

    #[test]
    #[should_panic(expected = "queue index out of range")]
    fn enqueue_bad_list_panics() {
        let mut pool = SlotPool::new(2, 1);
        let _ = pool.enqueue(1, pkt(0), 1);
    }

    #[test]
    fn killing_a_free_slot_shrinks_capacity_immediately() {
        let mut pool = SlotPool::new(4, 2);
        assert!(pool.kill_slot());
        assert_eq!(pool.free_count(), 3);
        assert_eq!(pool.dead_count(), 1);
        assert_eq!(pool.effective_capacity(), 3);
        assert_eq!(pool.used_count(), 0);
        pool.check_invariants();
        // The remaining slots still work.
        for i in 0..3 {
            pool.enqueue(0, pkt(i), 1).unwrap();
        }
        assert!(pool.enqueue(0, pkt(9), 1).is_err());
        pool.check_invariants();
    }

    #[test]
    fn kill_on_a_full_pool_defers_until_a_dequeue() {
        let mut pool = SlotPool::new(2, 1);
        pool.enqueue(0, pkt(0), 1).unwrap();
        pool.enqueue(0, pkt(1), 1).unwrap();
        assert!(pool.kill_slot());
        // The resident packets are untouched; capacity already reports
        // the doomed slot.
        assert_eq!(pool.queue_packets(0), 2);
        assert_eq!(pool.dead_count(), 1);
        assert_eq!(pool.effective_capacity(), 1);
        pool.check_invariants();
        // The freed slot dies instead of rejoining the free list.
        assert_eq!(pool.dequeue(0).unwrap().source(), NodeId::new(0));
        assert_eq!(pool.free_count(), 0);
        pool.check_invariants();
        assert_eq!(pool.dequeue(0).unwrap().source(), NodeId::new(1));
        assert_eq!(pool.free_count(), 1);
        pool.check_invariants();
    }

    #[test]
    fn kills_beyond_capacity_are_refused_without_panicking() {
        let mut pool = SlotPool::new(3, 1);
        assert!(pool.kill_slot());
        assert!(pool.kill_slot());
        assert!(pool.kill_slot());
        assert!(!pool.kill_slot(), "no fourth slot to kill");
        assert_eq!(pool.dead_count(), 3);
        assert_eq!(pool.effective_capacity(), 0);
        // A fully-faulted pool rejects every enqueue but stays sound.
        assert!(pool.enqueue(0, pkt(0), 1).is_err());
        assert_eq!(pool.dequeue(0), None);
        pool.check_invariants();
    }

    #[test]
    fn multi_slot_dequeue_feeds_deferred_kills() {
        let mut pool = SlotPool::new(3, 1);
        pool.enqueue(0, pkt(0), 3).unwrap();
        assert!(pool.kill_slot());
        assert!(pool.kill_slot());
        assert_eq!(pool.dead_count(), 2);
        pool.check_invariants();
        assert!(pool.dequeue(0).is_some());
        // Two of the three freed slots died; one survived.
        assert_eq!(pool.free_count(), 1);
        assert_eq!(pool.dead_count(), 2);
        assert_eq!(pool.effective_capacity(), 1);
        pool.check_invariants();
    }
}
