//! Structure-of-arrays slot storage — the §3.1 register file laid out
//! for the simulator's hot path.
//!
//! [`SlotPool`](crate::SlotPool) models the paper's linked-slot buffer
//! with per-slot `enum` content: the packet payload lives *inside* the
//! slot it heads, so walking a list drags every payload through the
//! cache and each pointer step is an `Option<SlotId>` branch.
//! [`SoaSlots`] keeps the identical register semantics but splits the
//! state into parallel arrays, exactly as the hardware does:
//!
//! ```text
//!  slot      0     1     2     3     4     5          (u16 indices)
//!  next   [  1 ][ NIL ][  4 ][ NIL ][ NIL ][  3 ]     pointer registers
//!  span   [  0 ][  2  ][  0 ][  0  ][  1  ][  2 ]     length registers
//!  dest   [  0 ][ 17  ][  0 ][  0  ][  3  ][ 42 ]     destination registers
//!  state  [ FREE][ HEAD][CONT][CONT ][HEAD ][HEAD]    tag bytes
//!  arena  [  -  ][ pkt ][  - ][  -  ][ pkt ][ pkt]    out-of-line payloads
//!
//!  list registers (list 0 = free list, list 1+q = queue q):
//!  head  [ 0 ][ 5 ][ 4 ]   tail [ 0 ][ 2 ][ 4 ]
//!  slots [ 1 ][ 4 ][ 1 ]   pkts [ 0 ][ 2 ][ 1 ]
//! ```
//!
//! `NIL` (`u16::MAX`) plays the role of the null pointer register, so
//! every free-list operation is index arithmetic on `u16` words with a
//! single predictable branch (list empty / not empty). Payloads sit in
//! the `arena` column — `Option<Packet>` boxes-by-value, populated only
//! at packet-head slots — so the link-walking loops never touch packet
//! bytes. The public API mirrors [`SlotPool`](crate::SlotPool) method
//! for method and [`SoaSlots::audit`] re-derives the same named
//! invariants (`list-partition`, `register-sync`, `queue-shape`,
//! `fault-ledger`) over the new layout; the seeded differential sweep in
//! `tests/soa_equivalence.rs` pins the two implementations against each
//! other across fills, drains, kills and free-list wraparound.

use crate::audit::{audit_ensure, strict_audit, AuditError};
use crate::buffer::FrontMeta;
use crate::ids::NodeId;
use crate::packet::Packet;

/// The null pointer register: no successor / empty list.
const NIL: u16 = u16::MAX;

/// Slot tag values (one byte per slot, kept for audit and debugging).
const FREE: u8 = 0;
/// First slot of a packet; its `span` register holds the slot count and
/// its arena cell holds the payload.
const HEAD: u8 = 1;
/// Continuation slot of a multi-slot packet.
const CONT: u8 = 2;
/// Permanently out of service (fault injection): on no list.
const DEAD: u8 = 3;

/// Structure-of-arrays slot pool: the storage engine of
/// [`DamqBuffer`](crate::DamqBuffer) (and, through it,
/// [`DafcBuffer`](crate::DafcBuffer)).
///
/// Semantically identical to [`SlotPool`](crate::SlotPool) — same FIFO
/// free-list discipline, same deferred-kill fault model, same audited
/// register contract — but stored as contiguous `u16` index arrays with
/// payloads out-of-line.
///
/// # Examples
///
/// ```
/// use damq_core::{NodeId, Packet, SoaSlots};
///
/// let mut pool = SoaSlots::new(4, 2); // 4 slots, 2 queues
/// let p = Packet::builder(NodeId::new(0), NodeId::new(1)).build();
/// pool.enqueue(1, p.clone(), 1).unwrap();
/// assert_eq!(pool.queue_packets(1), 1);
/// assert_eq!(pool.dequeue(1), Some(p));
/// assert_eq!(pool.free_count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SoaSlots {
    /// Pointer registers: `next[s]` names `s`'s successor on its list.
    next: Vec<u16>,
    /// Length registers: slot count of the packet headed at `s`, else 0.
    span: Vec<u16>,
    /// Destination registers: dest node address of the packet headed at
    /// `s`, else 0. Together with `length` these let the switch's
    /// examination walk answer flow-control probes from the columns
    /// alone, never dereferencing the arena (see
    /// [`SoaSlots::front_meta`]).
    dest: Vec<u32>,
    /// Payload-length registers: length in bytes of the packet headed at
    /// `s`, else 0.
    length: Vec<u32>,
    /// Tag byte per slot (`FREE`/`HEAD`/`CONT`/`DEAD`).
    state: Vec<u8>,
    /// Out-of-line payload arena, populated exactly at `HEAD` slots.
    arena: Vec<Option<Packet>>,
    /// Per-list head registers; index 0 is the free list, `1 + q` is
    /// queue `q`.
    head: Vec<u16>,
    /// Per-list tail registers (same indexing).
    tail: Vec<u16>,
    /// Per-list slot-count registers.
    slot_count: Vec<u16>,
    /// Per-list packet-count registers (always 0 for the free list).
    packet_count: Vec<u16>,
    /// Slots marked `DEAD` (fault injection).
    dead: u16,
    /// Kills registered while no slot was free; the next slots returned
    /// to the free list die instead of rejoining it.
    pending_kills: u16,
}

impl SoaSlots {
    /// Creates a pool of `capacity` slots and `lists` empty packet
    /// queues; every slot starts on the free list, threaded in address
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or does not fit the `u16` index space
    /// (`NIL` is reserved).
    pub fn new(capacity: usize, lists: usize) -> Self {
        assert!(capacity > 0, "slot pool needs at least one slot");
        assert!(capacity < NIL as usize, "slot pool too large");
        let regs = lists + 1;
        let mut pool = SoaSlots {
            next: vec![NIL; capacity],
            span: vec![0; capacity],
            dest: vec![0; capacity],
            length: vec![0; capacity],
            state: vec![FREE; capacity],
            arena: (0..capacity).map(|_| None).collect(),
            head: vec![NIL; regs],
            tail: vec![NIL; regs],
            slot_count: vec![0; regs],
            packet_count: vec![0; regs],
            dead: 0,
            pending_kills: 0,
        };
        for s in 0..capacity as u16 {
            pool.push_free(s);
        }
        pool
    }

    /// Total slots in the pool.
    pub fn capacity(&self) -> usize {
        self.next.len()
    }

    /// Number of packet queues.
    pub fn list_count(&self) -> usize {
        self.head.len() - 1
    }

    /// Slots currently on the free list.
    pub fn free_count(&self) -> usize {
        self.slot_count[0] as usize
    }

    /// Slots currently holding packet data.
    pub fn used_count(&self) -> usize {
        self.capacity() - self.free_count() - self.dead as usize
    }

    /// Slots removed from service by [`SoaSlots::kill_slot`], including
    /// kills still deferred until a busy slot drains.
    pub fn dead_count(&self) -> usize {
        (self.dead + self.pending_kills) as usize
    }

    /// Slots the pool can still ever hold: capacity minus registered
    /// kills.
    pub fn effective_capacity(&self) -> usize {
        self.capacity() - self.dead_count()
    }

    /// Permanently removes one slot from service (fault injection).
    ///
    /// Same contract as [`SlotPool::kill_slot`](crate::SlotPool::kill_slot):
    /// a free slot dies immediately, a fully-busy pool defers the kill to
    /// the next dequeue, and `false` means every slot is already dead or
    /// doomed.
    pub fn kill_slot(&mut self) -> bool {
        if self.dead_count() >= self.capacity() {
            return false;
        }
        if self.slot_count[0] > 0 {
            let s = self.pop_free();
            self.state[s as usize] = DEAD;
            self.dead += 1;
        } else {
            self.pending_kills += 1;
        }
        strict_audit!(self);
        true
    }

    /// Packets waiting on queue `list`.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn queue_packets(&self, list: usize) -> usize {
        self.packet_count[1 + list] as usize
    }

    /// Slots consumed by queue `list`.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn queue_slots(&self, list: usize) -> usize {
        self.slot_count[1 + list] as usize
    }

    /// Copies the packet-count register of every queue into `lens`
    /// (`lens.len() == list_count()`), one contiguous register read —
    /// the batched form the switch kernel prefetches each cycle.
    pub fn queue_lens_into(&self, lens: &mut [u16]) {
        lens.copy_from_slice(&self.packet_count[1..]);
    }

    /// Routing metadata of the packet at the front of queue `list`,
    /// straight from the `dest`/`length` registers — the arena-free read
    /// the switch kernel's examination walk uses (see
    /// [`SwitchBuffer::front_meta`](crate::SwitchBuffer::front_meta)).
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn front_meta(&self, list: usize) -> Option<FrontMeta> {
        let h = self.head[1 + list];
        if h == NIL {
            return None;
        }
        Some(FrontMeta {
            dest: NodeId::new(self.dest[h as usize] as usize),
            length_bytes: self.length[h as usize],
        })
    }

    /// The packet at the front of queue `list`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn front(&self, list: usize) -> Option<&Packet> {
        let h = self.head[1 + list];
        if h == NIL {
            return None;
        }
        // A queue head register always names a HEAD slot whose arena
        // cell is populated (audited invariant "queue-shape").
        self.arena[h as usize].as_ref()
    }

    /// Appends `packet`, which occupies `slots` slots, to queue `list`.
    ///
    /// Slots are taken from the *front* of the free list and linked to
    /// the queue's tail — the paper's §3.2.1 reception sequence, now one
    /// index-register update per slot.
    ///
    /// # Errors
    ///
    /// Returns the packet back if fewer than `slots` slots are free.
    /// The pool is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range or `slots` is zero.
    pub fn enqueue(&mut self, list: usize, packet: Packet, slots: usize) -> Result<(), Packet> {
        assert!(slots > 0, "a packet occupies at least one slot");
        assert!(list < self.list_count(), "queue index out of range");
        if (self.slot_count[0] as usize) < slots {
            return Err(packet);
        }
        let q = 1 + list;
        let first = self.pop_free();
        self.state[first as usize] = HEAD;
        self.span[first as usize] = slots as u16;
        self.dest[first as usize] = packet.dest().index() as u32;
        self.length[first as usize] = packet.length_bytes() as u32;
        self.arena[first as usize] = Some(packet);
        self.append_to_list(q, first);
        for _ in 1..slots {
            let s = self.pop_free();
            self.state[s as usize] = CONT;
            self.append_to_list(q, s);
        }
        self.packet_count[q] += 1;
        strict_audit!(self);
        Ok(())
    }

    /// Removes and returns the packet at the front of queue `list`,
    /// returning its slots to the free list (head first, continuations
    /// in link order, as the hardware drains them).
    ///
    /// # Panics
    ///
    /// Panics if `list` is out of range.
    pub fn dequeue(&mut self, list: usize) -> Option<Packet> {
        let q = 1 + list;
        let first = self.head[q];
        if first == NIL {
            return None;
        }
        let packet = self.arena[first as usize]
            .take()
            // lint: allow — a queue head register always names a HEAD
            // slot with a populated arena cell (audited "queue-shape").
            .expect("queue head register must point at a packet head slot");
        let slots = self.span[first as usize];
        self.span[first as usize] = 0;
        self.dest[first as usize] = 0;
        self.length[first as usize] = 0;
        self.state[first as usize] = FREE;
        self.unlink_list_head(q);
        self.push_free(first);
        for _ in 1..slots {
            let s = self.head[q];
            debug_assert!(s != NIL, "continuation slots linked atomically");
            debug_assert_eq!(self.state[s as usize], CONT);
            self.state[s as usize] = FREE;
            self.unlink_list_head(q);
            self.push_free(s);
        }
        self.packet_count[q] -= 1;
        strict_audit!(self);
        Some(packet)
    }

    /// Appends slot `s` to the tail of list `l` (pointer-register update
    /// of §3.2.1).
    fn append_to_list(&mut self, l: usize, s: u16) {
        self.next[s as usize] = NIL;
        let t = self.tail[l];
        if t == NIL {
            self.head[l] = s;
        } else {
            self.next[t as usize] = s;
        }
        self.tail[l] = s;
        self.slot_count[l] += 1;
    }

    /// Advances list `l`'s head register past its first slot.
    fn unlink_list_head(&mut self, l: usize) {
        let h = self.head[l];
        debug_assert!(h != NIL, "unlink from empty list");
        let n = self.next[h as usize];
        self.head[l] = n;
        if n == NIL {
            self.tail[l] = NIL;
        }
        self.next[h as usize] = NIL;
        self.slot_count[l] -= 1;
    }

    /// Returns slot `s` to the free list — unless a deferred kill claims
    /// it, in which case it dies instead.
    fn push_free(&mut self, s: u16) {
        self.next[s as usize] = NIL;
        if self.pending_kills > 0 {
            self.pending_kills -= 1;
            self.dead += 1;
            self.state[s as usize] = DEAD;
            return;
        }
        self.state[s as usize] = FREE;
        self.append_to_list(0, s);
    }

    /// Pops the free-list head. Callers check `slot_count[0]` first.
    fn pop_free(&mut self) -> u16 {
        let s = self.head[0];
        debug_assert!(s != NIL, "pop from empty free list");
        self.unlink_list_head(0);
        s
    }

    /// Walks one list, marking visited slots in `seen`, and verifies the
    /// list's registers against its links.
    fn audit_list(&self, l: usize, seen: &mut [bool], label: &str) -> Result<Vec<u16>, AuditError> {
        let mut out = Vec::new();
        let mut cur = self.head[l];
        while cur != NIL {
            audit_ensure!(
                !seen[cur as usize],
                "list-partition",
                "{label}: slot slot{cur} appears on two lists or in a cycle"
            );
            seen[cur as usize] = true;
            out.push(cur);
            cur = self.next[cur as usize];
        }
        audit_ensure!(
            out.len() == self.slot_count[l] as usize,
            "register-sync",
            "{label}: slot_count register says {} but the links hold {} slots",
            self.slot_count[l],
            out.len()
        );
        let tail = if out.is_empty() {
            NIL
        } else {
            out[out.len() - 1]
        };
        audit_ensure!(
            tail == self.tail[l],
            "register-sync",
            "{label}: tail register disagrees with the last linked slot"
        );
        Ok(out)
    }

    /// Verifies every structural invariant of the pool — the same named
    /// §3.1 register contract [`SlotPool::audit`](crate::SlotPool::audit)
    /// checks, re-derived over the SoA layout:
    ///
    /// * the lists exactly partition the storage and contain no cycle
    ///   (`list-partition`),
    /// * head/tail/`slot_count`/`packet_count` registers agree with the
    ///   links they summarise (`register-sync`),
    /// * queue contents are contiguous head+continuation runs consistent
    ///   with the `span` length registers, with arena payloads exactly at
    ///   head slots (`queue-shape`),
    /// * dead slots are off-list and counted by the fault registers
    ///   (`fault-ledger`).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`AuditError`].
    pub fn audit(&self) -> Result<(), AuditError> {
        let mut seen = vec![false; self.capacity()];
        let free = self.audit_list(0, &mut seen, "free list")?;
        audit_ensure!(
            self.packet_count[0] == 0,
            "register-sync",
            "free list carries a nonzero packet_count register"
        );
        for s in free {
            audit_ensure!(
                self.state[s as usize] == FREE && self.arena[s as usize].is_none(),
                "queue-shape",
                "free list holds non-free slot slot{s}"
            );
        }
        for qi in 0..self.list_count() {
            let slots = self.audit_list(1 + qi, &mut seen, &format!("queue {qi}"))?;
            let mut packets = 0;
            let mut i = 0;
            while i < slots.len() {
                let s = slots[i] as usize;
                audit_ensure!(
                    self.state[s] == HEAD && self.arena[s].is_some(),
                    "queue-shape",
                    "queue {qi}: expected packet head at slot{}, found tag {}",
                    slots[i],
                    self.state[s]
                );
                audit_ensure!(
                    self.arena[s].as_ref().is_some_and(|p| {
                        self.dest[s] == p.dest().index() as u32
                            && self.length[s] == p.length_bytes() as u32
                    }),
                    "register-sync",
                    "queue {qi}: dest/length registers at slot{} disagree with the stored packet",
                    slots[i]
                );
                let k = self.span[s] as usize;
                audit_ensure!(
                    k >= 1 && i + k <= slots.len(),
                    "queue-shape",
                    "queue {qi}: packet at slot{} claims {k} slots but the list ends",
                    slots[i]
                );
                for j in 1..k {
                    let c = slots[i + j] as usize;
                    audit_ensure!(
                        self.state[c] == CONT
                            && self.arena[c].is_none()
                            && self.span[c] == 0
                            && self.dest[c] == 0
                            && self.length[c] == 0,
                        "queue-shape",
                        "queue {qi}: packet at slot{} missing continuation slot",
                        slots[i]
                    );
                }
                packets += 1;
                i += k;
            }
            audit_ensure!(
                packets == self.packet_count[1 + qi],
                "register-sync",
                "queue {qi}: packet_count register says {} but the list holds {packets}",
                self.packet_count[1 + qi]
            );
        }
        // Fault-aware partition: the lists plus the declared dead slots
        // must exactly cover the storage.
        let mut dead_found: u16 = 0;
        for (i, &s) in seen.iter().enumerate() {
            let is_dead = self.state[i] == DEAD;
            if !s {
                audit_ensure!(
                    is_dead,
                    "list-partition",
                    "slot slot{i} is on no list (leaked slot)"
                );
                audit_ensure!(
                    self.arena[i].is_none()
                        && self.span[i] == 0
                        && self.dest[i] == 0
                        && self.length[i] == 0,
                    "fault-ledger",
                    "dead slot slot{i} still carries payload registers"
                );
                dead_found += 1;
            } else {
                audit_ensure!(
                    !is_dead,
                    "fault-ledger",
                    "dead slot slot{i} is still linked on a list"
                );
            }
        }
        audit_ensure!(
            dead_found == self.dead,
            "fault-ledger",
            "dead register says {} but {dead_found} slots are marked dead",
            self.dead
        );
        audit_ensure!(
            self.dead_count() <= self.capacity(),
            "fault-ledger",
            "{} kills registered against {} slots",
            self.dead_count(),
            self.capacity()
        );
        Ok(())
    }

    /// Assert-style wrapper over [`SoaSlots::audit`] for tests and debug
    /// checks.
    ///
    /// # Panics
    ///
    /// Panics with the audit's description on violation.
    pub fn check_invariants(&self) {
        if let Err(e) = self.audit() {
            // lint: allow — the panicking bridge is this method's contract.
            panic!("soa slot pool {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn pkt(src: usize) -> Packet {
        Packet::builder(NodeId::new(src), NodeId::new(0)).build()
    }

    #[test]
    fn new_pool_is_all_free() {
        let pool = SoaSlots::new(12, 5);
        assert_eq!(pool.capacity(), 12);
        assert_eq!(pool.free_count(), 12);
        assert_eq!(pool.used_count(), 0);
        assert_eq!(pool.list_count(), 5);
        pool.check_invariants();
    }

    #[test]
    fn enqueue_dequeue_round_trip() {
        let mut pool = SoaSlots::new(4, 2);
        pool.enqueue(0, pkt(7), 1).unwrap();
        assert_eq!(pool.free_count(), 3);
        assert_eq!(pool.queue_packets(0), 1);
        assert_eq!(pool.front(0).unwrap().source(), NodeId::new(7));
        let p = pool.dequeue(0).unwrap();
        assert_eq!(p.source(), NodeId::new(7));
        assert_eq!(pool.free_count(), 4);
        pool.check_invariants();
    }

    #[test]
    fn multi_slot_packets_link_and_free_correctly() {
        let mut pool = SoaSlots::new(8, 2);
        pool.enqueue(0, pkt(1), 4).unwrap();
        pool.enqueue(1, pkt(2), 3).unwrap();
        assert_eq!(pool.free_count(), 1);
        assert_eq!(pool.queue_slots(0), 4);
        assert_eq!(pool.queue_slots(1), 3);
        pool.check_invariants();
        assert_eq!(pool.dequeue(0).unwrap().source(), NodeId::new(1));
        assert_eq!(pool.free_count(), 5);
        assert_eq!(pool.dequeue(1).unwrap().source(), NodeId::new(2));
        assert_eq!(pool.free_count(), 8);
        pool.check_invariants();
    }

    #[test]
    fn enqueue_fails_without_enough_free_slots_and_is_atomic() {
        let mut pool = SoaSlots::new(4, 1);
        pool.enqueue(0, pkt(1), 3).unwrap();
        let p = pkt(2);
        let back = pool.enqueue(0, p.clone(), 2).unwrap_err();
        assert_eq!(back, p);
        assert_eq!(pool.free_count(), 1);
        pool.check_invariants();
    }

    #[test]
    fn freed_slots_are_reused_in_fifo_order() {
        let mut pool = SoaSlots::new(2, 1);
        pool.enqueue(0, pkt(0), 1).unwrap();
        pool.enqueue(0, pkt(1), 1).unwrap();
        pool.dequeue(0).unwrap();
        pool.enqueue(0, pkt(2), 1).unwrap();
        assert_eq!(pool.dequeue(0).unwrap().source(), NodeId::new(1));
        assert_eq!(pool.dequeue(0).unwrap().source(), NodeId::new(2));
        pool.check_invariants();
    }

    #[test]
    fn queue_lens_into_mirrors_packet_counts() {
        let mut pool = SoaSlots::new(8, 4);
        pool.enqueue(2, pkt(0), 1).unwrap();
        pool.enqueue(2, pkt(1), 2).unwrap();
        pool.enqueue(0, pkt(2), 1).unwrap();
        let mut lens = [9u16; 4];
        pool.queue_lens_into(&mut lens);
        assert_eq!(lens, [1, 0, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "queue index out of range")]
    fn enqueue_bad_list_panics() {
        let mut pool = SoaSlots::new(2, 1);
        let _ = pool.enqueue(1, pkt(0), 1);
    }

    #[test]
    fn kill_semantics_match_the_linked_pool_contract() {
        // Free slot dies immediately.
        let mut pool = SoaSlots::new(4, 2);
        assert!(pool.kill_slot());
        assert_eq!(pool.free_count(), 3);
        assert_eq!(pool.effective_capacity(), 3);
        pool.check_invariants();
        // Full pool defers; the freed slot dies instead of rejoining.
        let mut pool = SoaSlots::new(2, 1);
        pool.enqueue(0, pkt(0), 1).unwrap();
        pool.enqueue(0, pkt(1), 1).unwrap();
        assert!(pool.kill_slot());
        assert_eq!(pool.effective_capacity(), 1);
        pool.check_invariants();
        assert_eq!(pool.dequeue(0).unwrap().source(), NodeId::new(0));
        assert_eq!(pool.free_count(), 0);
        pool.check_invariants();
        // Kills beyond capacity are refused without panicking.
        let mut pool = SoaSlots::new(2, 1);
        assert!(pool.kill_slot() && pool.kill_slot());
        assert!(!pool.kill_slot());
        assert_eq!(pool.effective_capacity(), 0);
        assert!(pool.enqueue(0, pkt(0), 1).is_err());
        pool.check_invariants();
    }

    #[test]
    fn multi_slot_dequeue_feeds_deferred_kills() {
        let mut pool = SoaSlots::new(3, 1);
        pool.enqueue(0, pkt(0), 3).unwrap();
        assert!(pool.kill_slot());
        assert!(pool.kill_slot());
        pool.check_invariants();
        assert!(pool.dequeue(0).is_some());
        assert_eq!(pool.free_count(), 1);
        assert_eq!(pool.dead_count(), 2);
        pool.check_invariants();
    }

    #[test]
    fn audit_reports_corruption_by_invariant_name() {
        let mut pool = SoaSlots::new(4, 1);
        pool.enqueue(0, pkt(0), 1).unwrap();
        // Desynchronise a register: the slot-count says one thing, the
        // links another.
        pool.slot_count[1] = 3;
        let err = pool.audit().unwrap_err();
        assert_eq!(err.invariant(), "register-sync");
        // A leaked slot (off every list, not dead) is a partition error.
        let mut pool = SoaSlots::new(4, 1);
        pool.enqueue(0, pkt(0), 1).unwrap();
        pool.head[1] = NIL;
        pool.tail[1] = NIL;
        pool.slot_count[1] = 0;
        pool.packet_count[1] = 0;
        let err = pool.audit().unwrap_err();
        assert_eq!(err.invariant(), "list-partition");
        // A queue head without its arena payload breaks queue-shape.
        let mut pool = SoaSlots::new(4, 1);
        pool.enqueue(0, pkt(0), 1).unwrap();
        let h = pool.head[1] as usize;
        pool.arena[h] = None;
        let err = pool.audit().unwrap_err();
        assert_eq!(err.invariant(), "queue-shape");
        // A dead register that disagrees with the tags is a fault-ledger
        // error.
        let mut pool = SoaSlots::new(4, 1);
        assert!(pool.kill_slot());
        pool.dead = 0;
        pool.pending_kills = 1; // keep dead_count stable for the count check
        let err = pool.audit().unwrap_err();
        assert_eq!(err.invariant(), "fault-ledger");
    }
}
