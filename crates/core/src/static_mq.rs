//! Shared implementation of the statically-allocated multi-queue designs.
//!
//! SAMQ and SAFC organise storage identically — the input buffer is split
//! into `fanout` equal partitions, one FIFO queue per output port — and
//! differ only in the read fabric (single read port vs. one per output),
//! which is a property of the *switch* side. The common storage lives here.

use std::collections::VecDeque;

use crate::audit::{audit_ensure, strict_audit, AuditError};
use crate::buffer::{BufferConfig, BufferKind};
use crate::error::{ConfigError, RejectReason, Rejected};
use crate::packet::Packet;
use crate::stats::BufferStats;
use crate::OutputPort;

#[derive(Debug, Clone)]
struct Entry {
    slots: usize,
    packet: Packet,
}

/// Storage common to [`SamqBuffer`](crate::SamqBuffer) and
/// [`SafcBuffer`](crate::SafcBuffer): per-output queues with statically
/// partitioned slot budgets.
#[derive(Debug)]
pub(crate) struct StaticMultiQueue {
    config: BufferConfig,
    per_queue_capacity: usize,
    queues: Vec<VecDeque<Entry>>,
    queue_used: Vec<usize>,
    /// Per-queue slots permanently removed by fault injection.
    dead: Vec<usize>,
    /// Per-queue kills issued while the partition was full; converted to
    /// `dead` slots as dequeues free storage.
    pending_kills: Vec<usize>,
    stats: BufferStats,
}

impl StaticMultiQueue {
    pub(crate) fn new(config: BufferConfig, kind: BufferKind) -> Result<Self, ConfigError> {
        debug_assert!(kind.is_statically_allocated());
        config.validate(kind)?;
        let fanout = config.fanout_count();
        Ok(StaticMultiQueue {
            config,
            per_queue_capacity: config.capacity() / fanout,
            queues: (0..fanout).map(|_| VecDeque::new()).collect(),
            queue_used: vec![0; fanout],
            dead: vec![0; fanout],
            pending_kills: vec![0; fanout],
            stats: BufferStats::new(),
        })
    }

    /// Slot budget of each per-output partition.
    pub(crate) fn per_queue_capacity(&self) -> usize {
        self.per_queue_capacity
    }

    pub(crate) fn config(&self) -> &BufferConfig {
        &self.config
    }

    pub(crate) fn used_slots(&self) -> usize {
        self.queue_used.iter().sum()
    }

    /// Slots removed by fault injection, including kills still pending on
    /// full partitions.
    pub(crate) fn dead_slots(&self) -> usize {
        self.dead.iter().sum::<usize>() + self.pending_kills.iter().sum::<usize>()
    }

    /// Permanently disables one slot, preferring the partition for `hint`.
    ///
    /// If the hinted partition is already fully dead the kill falls over to
    /// the first partition with a live slot left; `false` means every slot
    /// in the buffer is already dead. A kill on a full partition is
    /// deferred: the next dequeue donates a freed slot instead of returning
    /// it to service.
    pub(crate) fn kill_slot(&mut self, hint: OutputPort) -> bool {
        let fanout = self.queues.len();
        let start = if hint.index() < fanout {
            hint.index()
        } else {
            0
        };
        let target = (0..fanout)
            .map(|off| (start + off) % fanout)
            .find(|&q| self.dead[q] + self.pending_kills[q] < self.per_queue_capacity);
        let Some(q) = target else {
            return false;
        };
        if self.queue_used[q] + self.dead[q] < self.per_queue_capacity {
            self.dead[q] += 1;
        } else {
            self.pending_kills[q] += 1;
        }
        strict_audit!(self);
        true
    }

    /// Slots of `output`'s partition unavailable to packets: killed plus
    /// kill-pending.
    fn faulted_slots(&self, q: usize) -> usize {
        self.dead[q] + self.pending_kills[q]
    }

    pub(crate) fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        output.index() < self.queues.len()
            && self.queue_used[output.index()] + slots + self.faulted_slots(output.index())
                <= self.per_queue_capacity
    }

    pub(crate) fn try_enqueue(
        &mut self,
        output: OutputPort,
        packet: Packet,
    ) -> Result<(), Rejected> {
        if output.index() >= self.queues.len() {
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::NoSuchOutput,
            });
        }
        let slots = packet.slots_needed(self.config.slot_size());
        if slots > self.per_queue_capacity {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::PacketTooLarge,
            });
        }
        if slots + self.faulted_slots(output.index()) > self.per_queue_capacity {
            // The packet fits a healthy partition but dead slots have shrunk
            // this one below its size: it can never be accepted here.
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::Faulted,
            });
        }
        if self.queue_used[output.index()] + slots + self.faulted_slots(output.index())
            > self.per_queue_capacity
        {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::QueueFull,
            });
        }
        self.queue_used[output.index()] += slots;
        self.stats.record_accepted(slots);
        let used = self.used_slots();
        self.stats.observe_used_slots(used);
        self.queues[output.index()].push_back(Entry { slots, packet });
        strict_audit!(self);
        Ok(())
    }

    pub(crate) fn queue_len(&self, output: OutputPort) -> usize {
        self.queues.get(output.index()).map_or(0, VecDeque::len)
    }

    pub(crate) fn front(&self, output: OutputPort) -> Option<&Packet> {
        self.queues.get(output.index())?.front().map(|e| &e.packet)
    }

    pub(crate) fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        let entry = self.queues.get_mut(output.index())?.pop_front()?;
        let q = output.index();
        self.queue_used[q] -= entry.slots;
        // Freed slots feed deferred kills before returning to service.
        let consumed = self.pending_kills[q].min(entry.slots);
        self.pending_kills[q] -= consumed;
        self.dead[q] += consumed;
        self.stats.record_forwarded();
        strict_audit!(self);
        Some(entry.packet)
    }

    pub(crate) fn packet_count(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    pub(crate) fn stats(&self) -> &BufferStats {
        &self.stats
    }

    pub(crate) fn reset_stats(&mut self) {
        self.stats.reset();
    }

    pub(crate) fn audit(&self) -> Result<(), AuditError> {
        for (i, q) in self.queues.iter().enumerate() {
            let sum: usize = q.iter().map(|e| e.slots).sum();
            audit_ensure!(
                sum == self.queue_used[i],
                "register-sync",
                "queue {i}: used-slot register says {} but entries sum to {sum}",
                self.queue_used[i]
            );
            audit_ensure!(
                self.queue_used[i] + self.dead[i] <= self.per_queue_capacity,
                "capacity-bound",
                "queue {i} holds {} live + {} dead of its {} statically-partitioned slots",
                self.queue_used[i],
                self.dead[i],
                self.per_queue_capacity
            );
            audit_ensure!(
                self.dead[i] + self.pending_kills[i] <= self.per_queue_capacity,
                "fault-ledger",
                "queue {i} records {} dead + {} pending kills over {} slots",
                self.dead[i],
                self.pending_kills[i],
                self.per_queue_capacity
            );
            audit_ensure!(
                self.pending_kills[i] == 0
                    || self.queue_used[i] + self.dead[i] == self.per_queue_capacity,
                "fault-ledger",
                "queue {i} defers {} kills while {} of {} slots are free",
                self.pending_kills[i],
                self.per_queue_capacity - self.queue_used[i] - self.dead[i],
                self.per_queue_capacity
            );
            for e in q {
                audit_ensure!(
                    e.slots == e.packet.slots_needed(self.config.slot_size()),
                    "queue-shape",
                    "queue {i}: entry slot count {} disagrees with its packet length",
                    e.slots
                );
            }
        }
        Ok(())
    }
}

/// Implements `SwitchBuffer` for a newtype wrapping `StaticMultiQueue`.
macro_rules! impl_static_switch_buffer {
    ($ty:ty, $kind:expr, $read_ports:expr) => {
        impl SwitchBuffer for $ty {
            fn kind(&self) -> BufferKind {
                $kind
            }

            fn fanout(&self) -> usize {
                self.inner.config().fanout_count()
            }

            fn capacity_slots(&self) -> usize {
                self.inner.config().capacity()
            }

            fn used_slots(&self) -> usize {
                self.inner.used_slots()
            }

            fn slot_bytes(&self) -> usize {
                self.inner.config().slot_size()
            }

            fn read_ports(&self) -> usize {
                let f: fn(&$ty) -> usize = $read_ports;
                f(self)
            }

            fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
                self.inner.can_accept(output, slots)
            }

            fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
                self.inner.try_enqueue(output, packet)
            }

            fn queue_len(&self, output: OutputPort) -> usize {
                self.inner.queue_len(output)
            }

            fn front(&self, output: OutputPort) -> Option<&Packet> {
                self.inner.front(output)
            }

            fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
                self.inner.dequeue(output)
            }

            fn packet_count(&self) -> usize {
                self.inner.packet_count()
            }

            fn stats(&self) -> &crate::stats::BufferStats {
                self.inner.stats()
            }

            fn reset_stats(&mut self) {
                self.inner.reset_stats()
            }

            fn kill_slot(&mut self, hint: OutputPort) -> bool {
                self.inner.kill_slot(hint)
            }

            fn dead_slots(&self) -> usize {
                self.inner.dead_slots()
            }

            fn audit(&self) -> Result<(), crate::audit::AuditError> {
                self.inner.audit()
            }
        }
    };
}

pub(crate) use impl_static_switch_buffer;
