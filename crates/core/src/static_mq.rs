//! Shared implementation of the statically-allocated multi-queue designs.
//!
//! SAMQ and SAFC organise storage identically — the input buffer is split
//! into `fanout` equal partitions, one FIFO queue per output port — and
//! differ only in the read fabric (single read port vs. one per output),
//! which is a property of the *switch* side. The common storage lives here.

use std::collections::VecDeque;

use crate::audit::{audit_ensure, strict_audit, AuditError};
use crate::buffer::{BufferConfig, BufferKind};
use crate::error::{ConfigError, RejectReason, Rejected};
use crate::packet::Packet;
use crate::stats::BufferStats;
use crate::OutputPort;

#[derive(Debug, Clone)]
struct Entry {
    slots: usize,
    packet: Packet,
}

/// Storage common to [`SamqBuffer`](crate::SamqBuffer) and
/// [`SafcBuffer`](crate::SafcBuffer): per-output queues with statically
/// partitioned slot budgets.
#[derive(Debug)]
pub(crate) struct StaticMultiQueue {
    config: BufferConfig,
    per_queue_capacity: usize,
    queues: Vec<VecDeque<Entry>>,
    queue_used: Vec<usize>,
    stats: BufferStats,
}

impl StaticMultiQueue {
    pub(crate) fn new(config: BufferConfig, kind: BufferKind) -> Result<Self, ConfigError> {
        debug_assert!(kind.is_statically_allocated());
        config.validate(kind)?;
        let fanout = config.fanout_count();
        Ok(StaticMultiQueue {
            config,
            per_queue_capacity: config.capacity() / fanout,
            queues: (0..fanout).map(|_| VecDeque::new()).collect(),
            queue_used: vec![0; fanout],
            stats: BufferStats::new(),
        })
    }

    /// Slot budget of each per-output partition.
    pub(crate) fn per_queue_capacity(&self) -> usize {
        self.per_queue_capacity
    }

    pub(crate) fn config(&self) -> &BufferConfig {
        &self.config
    }

    pub(crate) fn used_slots(&self) -> usize {
        self.queue_used.iter().sum()
    }

    pub(crate) fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        output.index() < self.queues.len()
            && self.queue_used[output.index()] + slots <= self.per_queue_capacity
    }

    pub(crate) fn try_enqueue(
        &mut self,
        output: OutputPort,
        packet: Packet,
    ) -> Result<(), Rejected> {
        if output.index() >= self.queues.len() {
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::NoSuchOutput,
            });
        }
        let slots = packet.slots_needed(self.config.slot_size());
        if slots > self.per_queue_capacity {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::PacketTooLarge,
            });
        }
        if self.queue_used[output.index()] + slots > self.per_queue_capacity {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::QueueFull,
            });
        }
        self.queue_used[output.index()] += slots;
        self.stats.record_accepted(slots);
        let used = self.used_slots();
        self.stats.observe_used_slots(used);
        self.queues[output.index()].push_back(Entry { slots, packet });
        strict_audit!(self);
        Ok(())
    }

    pub(crate) fn queue_len(&self, output: OutputPort) -> usize {
        self.queues.get(output.index()).map_or(0, VecDeque::len)
    }

    pub(crate) fn front(&self, output: OutputPort) -> Option<&Packet> {
        self.queues.get(output.index())?.front().map(|e| &e.packet)
    }

    pub(crate) fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        let entry = self.queues.get_mut(output.index())?.pop_front()?;
        self.queue_used[output.index()] -= entry.slots;
        self.stats.record_forwarded();
        strict_audit!(self);
        Some(entry.packet)
    }

    pub(crate) fn packet_count(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    pub(crate) fn stats(&self) -> &BufferStats {
        &self.stats
    }

    pub(crate) fn reset_stats(&mut self) {
        self.stats.reset();
    }

    pub(crate) fn audit(&self) -> Result<(), AuditError> {
        for (i, q) in self.queues.iter().enumerate() {
            let sum: usize = q.iter().map(|e| e.slots).sum();
            audit_ensure!(
                sum == self.queue_used[i],
                "register-sync",
                "queue {i}: used-slot register says {} but entries sum to {sum}",
                self.queue_used[i]
            );
            audit_ensure!(
                self.queue_used[i] <= self.per_queue_capacity,
                "capacity-bound",
                "queue {i} holds {} of its {} statically-partitioned slots",
                self.queue_used[i],
                self.per_queue_capacity
            );
            for e in q {
                audit_ensure!(
                    e.slots == e.packet.slots_needed(self.config.slot_size()),
                    "queue-shape",
                    "queue {i}: entry slot count {} disagrees with its packet length",
                    e.slots
                );
            }
        }
        Ok(())
    }
}

/// Implements `SwitchBuffer` for a newtype wrapping `StaticMultiQueue`.
macro_rules! impl_static_switch_buffer {
    ($ty:ty, $kind:expr, $read_ports:expr) => {
        impl SwitchBuffer for $ty {
            fn kind(&self) -> BufferKind {
                $kind
            }

            fn fanout(&self) -> usize {
                self.inner.config().fanout_count()
            }

            fn capacity_slots(&self) -> usize {
                self.inner.config().capacity()
            }

            fn used_slots(&self) -> usize {
                self.inner.used_slots()
            }

            fn slot_bytes(&self) -> usize {
                self.inner.config().slot_size()
            }

            fn read_ports(&self) -> usize {
                let f: fn(&$ty) -> usize = $read_ports;
                f(self)
            }

            fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
                self.inner.can_accept(output, slots)
            }

            fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
                self.inner.try_enqueue(output, packet)
            }

            fn queue_len(&self, output: OutputPort) -> usize {
                self.inner.queue_len(output)
            }

            fn front(&self, output: OutputPort) -> Option<&Packet> {
                self.inner.front(output)
            }

            fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
                self.inner.dequeue(output)
            }

            fn packet_count(&self) -> usize {
                self.inner.packet_count()
            }

            fn stats(&self) -> &crate::stats::BufferStats {
                self.inner.stats()
            }

            fn reset_stats(&mut self) {
                self.inner.reset_stats()
            }

            fn audit(&self) -> Result<(), crate::audit::AuditError> {
                self.inner.audit()
            }
        }
    };
}

pub(crate) use impl_static_switch_buffer;
