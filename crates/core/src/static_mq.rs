//! Shared implementation of the statically-allocated multi-queue designs.
//!
//! SAMQ and SAFC organise storage identically — the input buffer is split
//! into `fanout` equal partitions, one FIFO queue per output port — and
//! differ only in the read fabric (single read port vs. one per output),
//! which is a property of the *switch* side. The common storage lives here.
//!
//! # Storage layout
//!
//! Like [`SoaSlots`](crate::SoaSlots), the storage is structure-of-arrays:
//! queue `q` owns the contiguous ring segment
//! `[q * per_queue_capacity, (q + 1) * per_queue_capacity)` of two parallel
//! arrays — `entry_slots` (slot count per resident packet) and the
//! out-of-line payload `arena` — addressed by per-queue `head`/`len` ring
//! registers. A packet always occupies at least one slot, so a partition can
//! never hold more entries than its slot budget and the ring cannot
//! overflow. The pre-SoA `VecDeque` implementation survives verbatim in
//! `aos.rs` as the differential reference.

use crate::audit::{audit_ensure, strict_audit, AuditError};
use crate::buffer::{BufferConfig, BufferKind};
use crate::error::{ConfigError, RejectReason, Rejected};
use crate::packet::Packet;
use crate::stats::BufferStats;
use crate::OutputPort;

/// Storage common to [`SamqBuffer`](crate::SamqBuffer) and
/// [`SafcBuffer`](crate::SafcBuffer): per-output ring queues with
/// statically partitioned slot budgets.
#[derive(Debug)]
pub(crate) struct StaticMultiQueue {
    config: BufferConfig,
    per_queue_capacity: usize,
    /// Slot count of the resident packet at each ring position (parallel to
    /// `arena`; stale outside each queue's live window).
    entry_slots: Vec<u16>,
    /// Out-of-line payloads; `Some` exactly inside each queue's live window.
    arena: Vec<Option<Packet>>,
    /// Per-queue ring head offset within the queue's segment.
    head: Vec<u16>,
    /// Per-queue resident-entry count.
    len: Vec<u16>,
    /// Per-queue slots consumed by resident packets.
    queue_used: Vec<u16>,
    /// Per-queue slots permanently removed by fault injection.
    dead: Vec<u16>,
    /// Per-queue kills issued while the partition was full; converted to
    /// `dead` slots as dequeues free storage.
    pending_kills: Vec<u16>,
    stats: BufferStats,
}

impl StaticMultiQueue {
    pub(crate) fn new(config: BufferConfig, kind: BufferKind) -> Result<Self, ConfigError> {
        debug_assert!(kind.is_statically_allocated());
        config.validate(kind)?;
        let fanout = config.fanout_count();
        let per_queue_capacity = config.capacity() / fanout;
        assert!(
            config.capacity() < u16::MAX as usize,
            "u16 ring registers cap the capacity"
        );
        Ok(StaticMultiQueue {
            config,
            per_queue_capacity,
            entry_slots: vec![0; per_queue_capacity * fanout],
            arena: (0..per_queue_capacity * fanout).map(|_| None).collect(),
            head: vec![0; fanout],
            len: vec![0; fanout],
            queue_used: vec![0; fanout],
            dead: vec![0; fanout],
            pending_kills: vec![0; fanout],
            stats: BufferStats::new(),
        })
    }

    /// Slot budget of each per-output partition.
    pub(crate) fn per_queue_capacity(&self) -> usize {
        self.per_queue_capacity
    }

    pub(crate) fn config(&self) -> &BufferConfig {
        &self.config
    }

    fn fanout(&self) -> usize {
        self.head.len()
    }

    /// Ring position of entry `i` (0 = head) in queue `q`'s segment.
    fn pos(&self, q: usize, i: usize) -> usize {
        q * self.per_queue_capacity + (self.head[q] as usize + i) % self.per_queue_capacity
    }

    pub(crate) fn used_slots(&self) -> usize {
        self.queue_used.iter().map(|&u| u as usize).sum()
    }

    /// Slots removed by fault injection, including kills still pending on
    /// full partitions.
    pub(crate) fn dead_slots(&self) -> usize {
        self.dead.iter().map(|&d| d as usize).sum::<usize>()
            + self
                .pending_kills
                .iter()
                .map(|&p| p as usize)
                .sum::<usize>()
    }

    /// Permanently disables one slot, preferring the partition for `hint`.
    ///
    /// If the hinted partition is already fully dead the kill falls over to
    /// the first partition with a live slot left; `false` means every slot
    /// in the buffer is already dead. A kill on a full partition is
    /// deferred: the next dequeue donates a freed slot instead of returning
    /// it to service.
    pub(crate) fn kill_slot(&mut self, hint: OutputPort) -> bool {
        let fanout = self.fanout();
        let start = if hint.index() < fanout {
            hint.index()
        } else {
            0
        };
        let cap = self.per_queue_capacity as u16;
        let target = (0..fanout)
            .map(|off| (start + off) % fanout)
            .find(|&q| self.dead[q] + self.pending_kills[q] < cap);
        let Some(q) = target else {
            return false;
        };
        if self.queue_used[q] + self.dead[q] < cap {
            self.dead[q] += 1;
        } else {
            self.pending_kills[q] += 1;
        }
        strict_audit!(self);
        true
    }

    /// Slots of `output`'s partition unavailable to packets: killed plus
    /// kill-pending.
    fn faulted_slots(&self, q: usize) -> usize {
        (self.dead[q] + self.pending_kills[q]) as usize
    }

    pub(crate) fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
        output.index() < self.fanout()
            && self.queue_used[output.index()] as usize + slots + self.faulted_slots(output.index())
                <= self.per_queue_capacity
    }

    pub(crate) fn accept_capacity(&self, output: OutputPort) -> usize {
        let q = output.index();
        if q < self.fanout() {
            self.per_queue_capacity
                .saturating_sub(self.queue_used[q] as usize + self.faulted_slots(q))
        } else {
            0
        }
    }

    pub(crate) fn try_enqueue(
        &mut self,
        output: OutputPort,
        packet: Packet,
    ) -> Result<(), Rejected> {
        let q = output.index();
        if q >= self.fanout() {
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::NoSuchOutput,
            });
        }
        let slots = packet.slots_needed(self.config.slot_size());
        if slots > self.per_queue_capacity {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::PacketTooLarge,
            });
        }
        if slots + self.faulted_slots(q) > self.per_queue_capacity {
            // The packet fits a healthy partition but dead slots have shrunk
            // this one below its size: it can never be accepted here.
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::Faulted,
            });
        }
        if self.queue_used[q] as usize + slots + self.faulted_slots(q) > self.per_queue_capacity {
            self.stats.record_rejected();
            return Err(Rejected {
                packet,
                output,
                reason: RejectReason::QueueFull,
            });
        }
        self.queue_used[q] += slots as u16;
        self.stats.record_accepted(slots);
        let used = self.used_slots();
        self.stats.observe_used_slots(used);
        let tail = self.pos(q, self.len[q] as usize);
        self.entry_slots[tail] = slots as u16;
        self.arena[tail] = Some(packet);
        self.len[q] += 1;
        strict_audit!(self);
        Ok(())
    }

    pub(crate) fn queue_len(&self, output: OutputPort) -> usize {
        self.len.get(output.index()).map_or(0, |&l| l as usize)
    }

    /// Batched copy of every per-queue packet count (see
    /// [`SwitchBuffer::queue_lens_into`](crate::SwitchBuffer::queue_lens_into)).
    pub(crate) fn queue_lens_into(&self, lens: &mut [u16]) {
        lens.copy_from_slice(&self.len);
    }

    pub(crate) fn front(&self, output: OutputPort) -> Option<&Packet> {
        let q = output.index();
        if q >= self.fanout() || self.len[q] == 0 {
            return None;
        }
        self.arena[self.pos(q, 0)].as_ref()
    }

    pub(crate) fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
        let q = output.index();
        if q >= self.fanout() || self.len[q] == 0 {
            return None;
        }
        let head = self.pos(q, 0);
        let slots = self.entry_slots[head];
        // lint: allow — the arena cell inside the live window is always Some.
        let packet = self.arena[head].take().expect("live ring entry");
        self.head[q] = ((self.head[q] as usize + 1) % self.per_queue_capacity) as u16;
        self.len[q] -= 1;
        self.queue_used[q] -= slots;
        // Freed slots feed deferred kills before returning to service.
        let consumed = self.pending_kills[q].min(slots);
        self.pending_kills[q] -= consumed;
        self.dead[q] += consumed;
        self.stats.record_forwarded();
        strict_audit!(self);
        Some(packet)
    }

    pub(crate) fn packet_count(&self) -> usize {
        self.len.iter().map(|&l| l as usize).sum()
    }

    pub(crate) fn stats(&self) -> &BufferStats {
        &self.stats
    }

    pub(crate) fn reset_stats(&mut self) {
        self.stats.reset();
    }

    pub(crate) fn audit(&self) -> Result<(), AuditError> {
        let cap = self.per_queue_capacity;
        for q in 0..self.fanout() {
            audit_ensure!(
                (self.len[q] as usize) <= cap,
                "register-sync",
                "queue {q}: length register {} exceeds the {cap}-entry ring",
                self.len[q]
            );
            let mut sum = 0usize;
            for i in 0..self.len[q] as usize {
                let p = self.pos(q, i);
                let Some(packet) = self.arena[p].as_ref() else {
                    return Err(AuditError::new(
                        "queue-shape",
                        format!("queue {q}: live ring position {p} has no payload"),
                    ));
                };
                audit_ensure!(
                    self.entry_slots[p] as usize == packet.slots_needed(self.config.slot_size()),
                    "queue-shape",
                    "queue {q}: entry slot count {} disagrees with its packet length",
                    self.entry_slots[p]
                );
                sum += self.entry_slots[p] as usize;
            }
            audit_ensure!(
                sum == self.queue_used[q] as usize,
                "register-sync",
                "queue {q}: used-slot register says {} but entries sum to {sum}",
                self.queue_used[q]
            );
            for i in self.len[q] as usize..cap {
                let p = self.pos(q, i);
                audit_ensure!(
                    self.arena[p].is_none(),
                    "list-partition",
                    "queue {q}: ring position {p} outside the live window holds a payload"
                );
            }
            audit_ensure!(
                (self.queue_used[q] + self.dead[q]) as usize <= cap,
                "capacity-bound",
                "queue {q} holds {} live + {} dead of its {cap} statically-partitioned slots",
                self.queue_used[q],
                self.dead[q]
            );
            audit_ensure!(
                (self.dead[q] + self.pending_kills[q]) as usize <= cap,
                "fault-ledger",
                "queue {q} records {} dead + {} pending kills over {cap} slots",
                self.dead[q],
                self.pending_kills[q]
            );
            audit_ensure!(
                self.pending_kills[q] == 0 || (self.queue_used[q] + self.dead[q]) as usize == cap,
                "fault-ledger",
                "queue {q} defers {} kills while {} of {cap} slots are free",
                self.pending_kills[q],
                cap - (self.queue_used[q] + self.dead[q]) as usize
            );
        }
        Ok(())
    }
}

/// Implements `SwitchBuffer` for a newtype wrapping `StaticMultiQueue`.
macro_rules! impl_static_switch_buffer {
    ($ty:ty, $kind:expr, $read_ports:expr) => {
        impl SwitchBuffer for $ty {
            fn kind(&self) -> BufferKind {
                $kind
            }

            fn fanout(&self) -> usize {
                self.inner.config().fanout_count()
            }

            fn capacity_slots(&self) -> usize {
                self.inner.config().capacity()
            }

            fn used_slots(&self) -> usize {
                self.inner.used_slots()
            }

            fn slot_bytes(&self) -> usize {
                self.inner.config().slot_size()
            }

            fn read_ports(&self) -> usize {
                let f: fn(&$ty) -> usize = $read_ports;
                f(self)
            }

            fn can_accept(&self, output: OutputPort, slots: usize) -> bool {
                self.inner.can_accept(output, slots)
            }

            fn accept_capacity(&self, output: OutputPort) -> usize {
                self.inner.accept_capacity(output)
            }

            fn try_enqueue(&mut self, output: OutputPort, packet: Packet) -> Result<(), Rejected> {
                self.inner.try_enqueue(output, packet)
            }

            fn queue_len(&self, output: OutputPort) -> usize {
                self.inner.queue_len(output)
            }

            fn queue_lens_into(&self, lens: &mut [u16]) {
                self.inner.queue_lens_into(lens)
            }

            fn front(&self, output: OutputPort) -> Option<&Packet> {
                self.inner.front(output)
            }

            fn dequeue(&mut self, output: OutputPort) -> Option<Packet> {
                self.inner.dequeue(output)
            }

            fn packet_count(&self) -> usize {
                self.inner.packet_count()
            }

            fn stats(&self) -> &crate::stats::BufferStats {
                self.inner.stats()
            }

            fn reset_stats(&mut self) {
                self.inner.reset_stats()
            }

            fn kill_slot(&mut self, hint: OutputPort) -> bool {
                self.inner.kill_slot(hint)
            }

            fn dead_slots(&self) -> usize {
                self.inner.dead_slots()
            }

            fn audit(&self) -> Result<(), crate::audit::AuditError> {
                self.inner.audit()
            }
        }
    };
}

pub(crate) use impl_static_switch_buffer;
