//! Per-buffer operation counters.

use std::fmt;

/// Running counters kept by every buffer implementation.
///
/// Counters are cumulative since construction (or the last
/// [`BufferStats::reset`]); simulators read them to compute discard rates and
/// utilisation.
///
/// # Examples
///
/// ```
/// use damq_core::BufferStats;
///
/// let mut s = BufferStats::new();
/// s.record_accepted(2);
/// s.record_rejected();
/// assert_eq!(s.offered(), 2);
/// assert!((s.reject_fraction() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BufferStats {
    packets_accepted: u64,
    packets_rejected: u64,
    packets_forwarded: u64,
    slots_accepted: u64,
    peak_used_slots: usize,
    hol_blocked: u64,
}

impl BufferStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records acceptance of a packet occupying `slots` slots.
    pub fn record_accepted(&mut self, slots: usize) {
        self.packets_accepted += 1;
        self.slots_accepted += slots as u64;
    }

    /// Records a packet bounced for lack of space.
    pub fn record_rejected(&mut self) {
        self.packets_rejected += 1;
    }

    /// Records a packet leaving through the crossbar.
    pub fn record_forwarded(&mut self) {
        self.packets_forwarded += 1;
    }

    /// Records `n` packet-cycles of head-of-line blocking: resident
    /// packets that could not even be considered for transmission this
    /// cycle because a packet bound for a *different* output sat ahead of
    /// them. Only FIFO buffers exhibit this; per-output designs always
    /// record zero.
    pub fn record_hol_blocked(&mut self, n: u64) {
        self.hol_blocked += n;
    }

    /// Tracks the high-water mark of slot occupancy.
    pub fn observe_used_slots(&mut self, used: usize) {
        if used > self.peak_used_slots {
            self.peak_used_slots = used;
        }
    }

    /// Packets stored successfully.
    pub fn packets_accepted(&self) -> u64 {
        self.packets_accepted
    }

    /// Packets that could not be stored.
    pub fn packets_rejected(&self) -> u64 {
        self.packets_rejected
    }

    /// Packets dequeued for transmission.
    pub fn packets_forwarded(&self) -> u64 {
        self.packets_forwarded
    }

    /// Total slots consumed by accepted packets.
    pub fn slots_accepted(&self) -> u64 {
        self.slots_accepted
    }

    /// Highest simultaneous slot occupancy seen.
    pub fn peak_used_slots(&self) -> usize {
        self.peak_used_slots
    }

    /// Accumulated packet-cycles of head-of-line blocking.
    pub fn hol_blocked(&self) -> u64 {
        self.hol_blocked
    }

    /// Packets that arrived at this buffer (accepted + rejected).
    pub fn offered(&self) -> u64 {
        self.packets_accepted + self.packets_rejected
    }

    /// Fraction of offered packets that were rejected; 0 if none offered.
    pub fn reject_fraction(&self) -> f64 {
        if self.offered() == 0 {
            0.0
        } else {
            self.packets_rejected as f64 / self.offered() as f64
        }
    }

    /// Zeroes all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Adds another set of counters into this one (for aggregating a whole
    /// switch or network).
    pub fn merge(&mut self, other: &BufferStats) {
        self.packets_accepted += other.packets_accepted;
        self.packets_rejected += other.packets_rejected;
        self.packets_forwarded += other.packets_forwarded;
        self.slots_accepted += other.slots_accepted;
        self.peak_used_slots = self.peak_used_slots.max(other.peak_used_slots);
        self.hol_blocked += other.hol_blocked;
    }
}

impl fmt::Display for BufferStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accepted {} / rejected {} / forwarded {} (peak {} slots, hol {})",
            self.packets_accepted,
            self.packets_rejected,
            self.packets_forwarded,
            self.peak_used_slots,
            self.hol_blocked
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = BufferStats::new();
        s.record_accepted(3);
        s.record_accepted(1);
        s.record_rejected();
        s.record_forwarded();
        assert_eq!(s.packets_accepted(), 2);
        assert_eq!(s.slots_accepted(), 4);
        assert_eq!(s.packets_rejected(), 1);
        assert_eq!(s.packets_forwarded(), 1);
        assert_eq!(s.offered(), 3);
    }

    #[test]
    fn reject_fraction_handles_zero_offered() {
        assert_eq!(BufferStats::new().reject_fraction(), 0.0);
    }

    #[test]
    fn peak_tracks_maximum_only() {
        let mut s = BufferStats::new();
        s.observe_used_slots(3);
        s.observe_used_slots(1);
        assert_eq!(s.peak_used_slots(), 3);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = BufferStats::new();
        a.record_accepted(2);
        a.observe_used_slots(2);
        a.record_hol_blocked(3);
        let mut b = BufferStats::new();
        b.record_rejected();
        b.observe_used_slots(5);
        b.record_hol_blocked(1);
        a.merge(&b);
        assert_eq!(a.offered(), 2);
        assert_eq!(a.peak_used_slots(), 5);
        assert_eq!(a.hol_blocked(), 4);
    }

    #[test]
    fn hol_blocking_accumulates() {
        let mut s = BufferStats::new();
        s.record_hol_blocked(2);
        s.record_hol_blocked(0);
        s.record_hol_blocked(1);
        assert_eq!(s.hol_blocked(), 3);
        s.reset();
        assert_eq!(s.hol_blocked(), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = BufferStats::new();
        s.record_accepted(1);
        s.reset();
        assert_eq!(s, BufferStats::new());
    }
}
