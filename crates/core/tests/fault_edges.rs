//! Fault-injection edge cases across all five buffer designs: degenerate
//! configurations, fully-faulted buffers, and random kill/op interleavings.
//! The contract under test: every degraded state yields a **typed error or
//! a refusal**, never a panic, and the structural audits stay clean.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use damq_core::{
    BufferConfig, BufferKind, ConfigError, NodeId, OutputPort, Packet, PacketId, RejectReason,
};

fn packet(serial: u64, length: usize) -> Packet {
    Packet::builder(NodeId::new(0), NodeId::new(1))
        .id(PacketId::new(serial))
        .length_bytes(length)
        .build()
}

#[test]
fn zero_capacity_is_a_typed_config_error_for_every_design() {
    for kind in BufferKind::EXTENDED {
        assert!(
            matches!(
                BufferConfig::new(4, 0).build(kind),
                Err(ConfigError::ZeroCapacity)
            ),
            "{kind}"
        );
        assert!(
            matches!(
                BufferConfig::new(0, 4).build(kind),
                Err(ConfigError::ZeroFanout)
            ),
            "{kind}"
        );
    }
}

#[test]
fn single_slot_buffers_round_trip_then_die_gracefully() {
    for kind in BufferKind::EXTENDED {
        // Fanout 1 keeps capacity 1 divisible for the static designs.
        let mut buf = BufferConfig::new(1, 1).build(kind).unwrap();
        let out = OutputPort::new(0);
        buf.try_enqueue(out, packet(1, 4)).unwrap();
        assert_eq!(buf.dequeue(out).unwrap().id(), PacketId::new(1));

        // Kill the only slot: the buffer is still alive, just useless.
        assert!(buf.kill_slot(out), "{kind}: free slot must be killable");
        assert_eq!(buf.dead_slots(), 1, "{kind}");
        assert_eq!(buf.free_slots(), 0, "{kind}");
        assert!(!buf.kill_slot(out), "{kind}: nothing left to kill");
        let err = buf.try_enqueue(out, packet(2, 4)).unwrap_err();
        assert_eq!(err.reason, RejectReason::Faulted, "{kind}");
        assert_eq!(buf.dequeue(out), None, "{kind}");
        buf.audit().unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn fully_faulted_buffers_reject_everything_with_faulted() {
    for kind in BufferKind::EXTENDED {
        let mut buf = BufferConfig::new(4, 8).build(kind).unwrap();
        for i in 0..8 {
            assert!(
                buf.kill_slot(OutputPort::new(i % 4)),
                "{kind}: kill {i} of 8"
            );
        }
        assert_eq!(buf.dead_slots(), 8, "{kind}");
        assert!(!buf.kill_slot(OutputPort::new(0)), "{kind}: all dead");
        for q in 0..4 {
            let out = OutputPort::new(q);
            assert!(!buf.can_accept(out, 1), "{kind} queue {q}");
            let err = buf.try_enqueue(out, packet(q as u64, 1)).unwrap_err();
            assert_eq!(err.reason, RejectReason::Faulted, "{kind} queue {q}");
            assert_eq!(buf.dequeue(out), None, "{kind} queue {q}");
        }
        assert!(buf.is_empty(), "{kind}");
        assert_eq!(buf.free_slots(), 0, "{kind}");
        buf.audit().unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

#[test]
fn kills_on_occupied_buffers_defer_until_dequeue() {
    for kind in BufferKind::EXTENDED {
        let mut buf = BufferConfig::new(4, 4).build(kind).unwrap();
        // One packet per output fills every design to the brim (static
        // partitions hold one slot each; shared pools hold four).
        for i in 0..4u64 {
            buf.try_enqueue(OutputPort::new(i as usize), packet(i, 4))
                .unwrap();
        }
        assert_eq!(buf.free_slots(), 0, "{kind}");
        // All slots occupied: the kill must be accepted (deferred), not
        // refused — a fault does not wait for the buffer's convenience.
        assert!(buf.kill_slot(OutputPort::new(2)), "{kind}: deferred kill");
        assert_eq!(buf.dead_slots(), 1, "{kind}");
        // Draining converts the pending kill into a dead slot.
        for _ in 0..8 {
            for q in 0..4 {
                let _ = buf.dequeue(OutputPort::new(q));
            }
            if buf.is_empty() {
                break;
            }
        }
        assert!(buf.is_empty(), "{kind}");
        assert_eq!(buf.dead_slots(), 1, "{kind}");
        assert_eq!(buf.free_slots(), 3, "{kind}");
        buf.audit().unwrap_or_else(|e| panic!("{kind}: {e}"));
    }
}

/// Random interleavings of enqueue/dequeue/kill across every design:
/// nothing panics, audits stay clean, and the fault ledger never exceeds
/// capacity. Each case reproduces from the printed seed.
#[test]
fn random_kill_sequences_never_panic_and_audit_clean() {
    const CASES: u64 = 48;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xFA17 ^ seed);
        let fanout = rng.random_range(1..=4usize);
        let capacity = rng.random_range(1..=12usize) * fanout;
        let ops = rng.random_range(20..160usize);
        for kind in BufferKind::EXTENDED {
            let mut buf = BufferConfig::new(fanout, capacity).build(kind).unwrap();
            let mut serial = 0u64;
            for _ in 0..ops {
                let output = OutputPort::new(rng.random_range(0..fanout));
                match rng.random_range(0..10usize) {
                    0..=4 => {
                        let length = rng.random_range(1..=24usize);
                        let _ = buf.try_enqueue(output, packet(serial, length));
                        serial += 1;
                    }
                    5..=7 => {
                        let _ = buf.dequeue(output);
                    }
                    _ => {
                        let _ = buf.kill_slot(output);
                    }
                }
                assert!(buf.dead_slots() <= capacity, "{kind} seed {seed}");
                buf.audit()
                    .unwrap_or_else(|e| panic!("{kind} seed {seed}: {e}"));
            }
        }
    }
}
