//! Property-based tests over arbitrary operation sequences on all four
//! buffer designs.

use proptest::prelude::*;

use damq_core::{
    BufferConfig, BufferKind, NodeId, OutputPort, Packet, PacketId,
};

#[derive(Debug, Clone)]
enum Op {
    Enqueue { output: usize, length: usize },
    Dequeue { output: usize },
}

fn op_strategy(fanout: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..fanout, 1usize..=32).prop_map(|(output, length)| Op::Enqueue { output, length }),
        2 => (0..fanout).prop_map(|output| Op::Dequeue { output }),
    ]
}

fn packet(serial: u64, length: usize) -> Packet {
    Packet::builder(NodeId::new(0), NodeId::new(1))
        .id(PacketId::new(serial))
        .length_bytes(length)
        .build()
}

proptest! {
    /// Invariants hold and bookkeeping balances under arbitrary op mixes,
    /// for every design.
    #[test]
    fn random_ops_preserve_invariants(
        ops in prop::collection::vec(op_strategy(4), 1..200),
        capacity in 1usize..=16,
    ) {
        for kind in BufferKind::ALL {
            let capacity = if kind.is_statically_allocated() {
                capacity.div_ceil(4) * 4 // round up to divisible
            } else {
                capacity
            };
            let mut buf = BufferConfig::new(4, capacity).build(kind).unwrap();
            let mut serial = 0u64;
            for op in &ops {
                match *op {
                    Op::Enqueue { output, length } => {
                        let _ = buf.try_enqueue(OutputPort::new(output), packet(serial, length));
                        serial += 1;
                    }
                    Op::Dequeue { output } => {
                        let _ = buf.dequeue(OutputPort::new(output));
                    }
                }
                buf.check_invariants();
                prop_assert!(buf.used_slots() <= buf.capacity_slots(), "{kind}");
            }
            let s = buf.stats();
            prop_assert_eq!(
                s.packets_accepted() - s.packets_forwarded(),
                buf.packet_count() as u64,
                "{} accounting", kind
            );
        }
    }

    /// `can_accept` tells the truth: enqueue succeeds iff it said yes.
    #[test]
    fn can_accept_is_accurate(
        ops in prop::collection::vec(op_strategy(4), 1..150),
        capacity in 1usize..=12,
    ) {
        for kind in BufferKind::ALL {
            let capacity = if kind.is_statically_allocated() {
                capacity.div_ceil(4) * 4
            } else {
                capacity
            };
            let mut buf = BufferConfig::new(4, capacity).build(kind).unwrap();
            let mut serial = 0;
            for op in &ops {
                match *op {
                    Op::Enqueue { output, length } => {
                        let p = packet(serial, length);
                        serial += 1;
                        let slots = p.slots_needed(buf.slot_bytes());
                        let promised = buf.can_accept(OutputPort::new(output), slots);
                        let accepted = buf.try_enqueue(OutputPort::new(output), p).is_ok();
                        prop_assert_eq!(promised, accepted, "{} lied", kind);
                    }
                    Op::Dequeue { output } => {
                        let _ = buf.dequeue(OutputPort::new(output));
                    }
                }
            }
        }
    }

    /// Per-output dequeue order matches enqueue order (FIFO within queue)
    /// for the multi-queue designs; global FIFO order for the FIFO design.
    #[test]
    fn fifo_order_per_queue(
        ops in prop::collection::vec(op_strategy(3), 1..150),
    ) {
        for kind in BufferKind::ALL {
            let mut buf = BufferConfig::new(3, 12).build(kind).unwrap();
            let mut serial = 0u64;
            let mut expected: Vec<std::collections::VecDeque<u64>> =
                vec![Default::default(); 3];
            let mut global: std::collections::VecDeque<(usize, u64)> = Default::default();
            for op in &ops {
                match *op {
                    Op::Enqueue { output, length } => {
                        let p = packet(serial, length);
                        if buf.try_enqueue(OutputPort::new(output), p).is_ok() {
                            expected[output].push_back(serial);
                            global.push_back((output, serial));
                        }
                        serial += 1;
                    }
                    Op::Dequeue { output } => {
                        if let Some(p) = buf.dequeue(OutputPort::new(output)) {
                            match kind {
                                BufferKind::Fifo => {
                                    let (o, s) = global.pop_front().unwrap();
                                    prop_assert_eq!(o, output);
                                    prop_assert_eq!(p.id().serial(), s);
                                }
                                _ => {
                                    let s = expected[output].pop_front().unwrap();
                                    prop_assert_eq!(p.id().serial(), s, "{}", kind);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The DAMQ acceptance rule is exactly "enough free slots in the shared
    /// pool", never per-queue.
    #[test]
    fn damq_shares_all_storage(
        fills in prop::collection::vec((0usize..4, 1usize..=32), 1..40),
    ) {
        let mut buf = BufferConfig::new(4, 12).build(BufferKind::Damq).unwrap();
        let mut serial = 0;
        for (output, length) in fills {
            let p = packet(serial, length);
            serial += 1;
            let need = p.slots_needed(buf.slot_bytes());
            let fits = need <= buf.free_slots();
            let accepted = buf.try_enqueue(OutputPort::new(output), p).is_ok();
            prop_assert_eq!(fits, accepted);
        }
    }

    /// SAMQ/SAFC never let one queue exceed its static partition.
    #[test]
    fn static_designs_respect_partitions(
        ops in prop::collection::vec(op_strategy(4), 1..150),
    ) {
        for kind in [BufferKind::Samq, BufferKind::Safc] {
            let mut buf = BufferConfig::new(4, 8).build(kind).unwrap();
            let mut serial = 0;
            let mut per_queue_slots = [0usize; 4];
            for op in &ops {
                match *op {
                    Op::Enqueue { output, length } => {
                        let p = packet(serial, length);
                        serial += 1;
                        let need = p.slots_needed(buf.slot_bytes());
                        if buf.try_enqueue(OutputPort::new(output), p).is_ok() {
                            per_queue_slots[output] += need;
                        }
                    }
                    Op::Dequeue { output } => {
                        if let Some(p) = buf.dequeue(OutputPort::new(output)) {
                            per_queue_slots[output] -= p.slots_needed(buf.slot_bytes());
                        }
                    }
                }
                for (q, &used) in per_queue_slots.iter().enumerate() {
                    prop_assert!(used <= 2, "{kind} queue {q} used {used} of 2 slots");
                }
            }
        }
    }
}
