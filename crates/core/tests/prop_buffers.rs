//! Randomized property tests over arbitrary operation sequences on all
//! five buffer designs, with a full structural audit after every op.
//!
//! Formerly written against `proptest`; now driven by the workspace's own
//! deterministic generator (the registry is unreachable offline), which
//! keeps the same invariants under the same kind of random exploration —
//! every case is reproducible from the printed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use damq_core::{BufferConfig, BufferKind, NodeId, OutputPort, Packet, PacketId};

const CASES: u64 = 64;

#[derive(Debug, Clone)]
enum Op {
    Enqueue { output: usize, length: usize },
    Dequeue { output: usize },
}

/// Weighted op mix matching the old proptest strategy: 3 enqueues to 2
/// dequeues, payloads of 1–32 bytes.
fn random_ops(rng: &mut StdRng, fanout: usize, count: usize) -> Vec<Op> {
    (0..count)
        .map(|_| {
            if rng.random_range(0..5usize) < 3 {
                Op::Enqueue {
                    output: rng.random_range(0..fanout),
                    length: rng.random_range(1..=32usize),
                }
            } else {
                Op::Dequeue {
                    output: rng.random_range(0..fanout),
                }
            }
        })
        .collect()
}

fn packet(serial: u64, length: usize) -> Packet {
    Packet::builder(NodeId::new(0), NodeId::new(1))
        .id(PacketId::new(serial))
        .length_bytes(length)
        .build()
}

/// Invariants hold and bookkeeping balances under arbitrary op mixes, for
/// every design.
#[test]
fn random_ops_preserve_invariants() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.random_range(1..200usize);
        let ops = random_ops(&mut rng, 4, count);
        let capacity = rng.random_range(1..=16usize);
        for kind in BufferKind::EXTENDED {
            let capacity = if kind.is_statically_allocated() {
                capacity.div_ceil(4) * 4 // round up to divisible
            } else {
                capacity
            };
            let mut buf = BufferConfig::new(4, capacity).build(kind).unwrap();
            let mut serial = 0u64;
            for op in &ops {
                match *op {
                    Op::Enqueue { output, length } => {
                        let _ = buf.try_enqueue(OutputPort::new(output), packet(serial, length));
                        serial += 1;
                    }
                    Op::Dequeue { output } => {
                        let _ = buf.dequeue(OutputPort::new(output));
                    }
                }
                // The full structural audit (not just the panic bridge), so
                // the violated invariant is named in the failure message.
                if let Err(e) = buf.audit() {
                    panic!("{kind} audit after op, seed {seed}: {e}");
                }
                assert!(
                    buf.used_slots() <= buf.capacity_slots(),
                    "{kind} seed {seed}"
                );
            }
            let s = buf.stats();
            assert_eq!(
                s.packets_accepted() - s.packets_forwarded(),
                buf.packet_count() as u64,
                "{kind} accounting, seed {seed}"
            );
        }
    }
}

/// `can_accept` tells the truth: enqueue succeeds iff it said yes.
#[test]
fn can_accept_is_accurate() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1_000 + seed);
        let count = rng.random_range(1..150usize);
        let ops = random_ops(&mut rng, 4, count);
        let capacity = rng.random_range(1..=12usize);
        for kind in BufferKind::EXTENDED {
            let capacity = if kind.is_statically_allocated() {
                capacity.div_ceil(4) * 4
            } else {
                capacity
            };
            let mut buf = BufferConfig::new(4, capacity).build(kind).unwrap();
            let mut serial = 0;
            for op in &ops {
                match *op {
                    Op::Enqueue { output, length } => {
                        let p = packet(serial, length);
                        serial += 1;
                        let slots = p.slots_needed(buf.slot_bytes());
                        let promised = buf.can_accept(OutputPort::new(output), slots);
                        let accepted = buf.try_enqueue(OutputPort::new(output), p).is_ok();
                        assert_eq!(promised, accepted, "{kind} lied, seed {seed}");
                    }
                    Op::Dequeue { output } => {
                        let _ = buf.dequeue(OutputPort::new(output));
                    }
                }
            }
        }
    }
}

/// Per-output dequeue order matches enqueue order (FIFO within queue) for
/// the multi-queue designs; global FIFO order for the FIFO design.
#[test]
fn fifo_order_per_queue() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2_000 + seed);
        let count = rng.random_range(1..150usize);
        let ops = random_ops(&mut rng, 3, count);
        for kind in BufferKind::EXTENDED {
            let mut buf = BufferConfig::new(3, 12).build(kind).unwrap();
            let mut serial = 0u64;
            let mut expected: Vec<std::collections::VecDeque<u64>> = vec![Default::default(); 3];
            let mut global: std::collections::VecDeque<(usize, u64)> = Default::default();
            for op in &ops {
                match *op {
                    Op::Enqueue { output, length } => {
                        let p = packet(serial, length);
                        if buf.try_enqueue(OutputPort::new(output), p).is_ok() {
                            expected[output].push_back(serial);
                            global.push_back((output, serial));
                        }
                        serial += 1;
                    }
                    Op::Dequeue { output } => {
                        if let Some(p) = buf.dequeue(OutputPort::new(output)) {
                            match kind {
                                BufferKind::Fifo => {
                                    let (o, s) = global.pop_front().unwrap();
                                    assert_eq!(o, output, "seed {seed}");
                                    assert_eq!(p.id().serial(), s, "seed {seed}");
                                }
                                _ => {
                                    let s = expected[output].pop_front().unwrap();
                                    assert_eq!(p.id().serial(), s, "{kind} seed {seed}");
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The DAMQ acceptance rule is exactly "enough free slots in the shared
/// pool", never per-queue.
#[test]
fn damq_shares_all_storage() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3_000 + seed);
        let fills: Vec<(usize, usize)> = (0..rng.random_range(1..40usize))
            .map(|_| (rng.random_range(0..4usize), rng.random_range(1..=32usize)))
            .collect();
        let mut buf = BufferConfig::new(4, 12).build(BufferKind::Damq).unwrap();
        for (serial, (output, length)) in fills.into_iter().enumerate() {
            let p = packet(serial as u64, length);
            let need = p.slots_needed(buf.slot_bytes());
            let fits = need <= buf.free_slots();
            let accepted = buf.try_enqueue(OutputPort::new(output), p).is_ok();
            assert_eq!(fits, accepted, "seed {seed}");
        }
    }
}

/// `peak_used_slots` is exactly the high-water mark of `used_slots`
/// across arbitrary op sequences, for every design.
#[test]
fn peak_used_slots_is_the_high_water_mark() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5_000 + seed);
        let count = rng.random_range(1..200usize);
        let ops = random_ops(&mut rng, 4, count);
        for kind in BufferKind::EXTENDED {
            let mut buf = BufferConfig::new(4, 12).build(kind).unwrap();
            let mut serial = 0u64;
            let mut high_water = 0usize;
            for op in &ops {
                match *op {
                    Op::Enqueue { output, length } => {
                        let _ = buf.try_enqueue(OutputPort::new(output), packet(serial, length));
                        serial += 1;
                    }
                    Op::Dequeue { output } => {
                        let _ = buf.dequeue(OutputPort::new(output));
                    }
                }
                high_water = high_water.max(buf.used_slots());
                assert_eq!(
                    buf.stats().peak_used_slots(),
                    high_water,
                    "{kind} peak drifted from the observed maximum, seed {seed}"
                );
            }
        }
    }
}

/// `packets_forwarded` counts packets (not slots), including multi-slot
/// packets, for every design; accepted − forwarded always equals the
/// resident packet count.
#[test]
fn forwarded_counts_multislot_packets_once() {
    for kind in BufferKind::EXTENDED {
        let mut buf = BufferConfig::new(4, 16).build(kind).unwrap();
        // Packets spanning 1, 2 and 3 slots (slot size is DEFAULT_SLOT_BYTES
        // bytes), one per queue so the static partitions (4 slots each)
        // also fit, and so FIFO's global dequeue order matches.
        let slot = buf.slot_bytes();
        let lengths = [1, slot + 1, 2 * slot + 1, 1];
        for (queue, &len) in lengths.iter().enumerate() {
            buf.try_enqueue(OutputPort::new(queue), packet(queue as u64, len))
                .unwrap_or_else(|_| panic!("{kind} must accept within capacity"));
        }
        assert_eq!(buf.stats().packets_accepted(), lengths.len() as u64);
        assert_eq!(
            buf.stats().slots_accepted(),
            1 + 2 + 3 + 1,
            "{kind} slot accounting"
        );
        for (queue, _) in lengths.iter().enumerate() {
            let p = buf
                .dequeue(OutputPort::new(queue))
                .unwrap_or_else(|| panic!("{kind} queue {queue} holds a packet"));
            assert_eq!(p.id().serial(), queue as u64, "{kind} dequeue order");
            assert_eq!(
                buf.stats().packets_forwarded(),
                queue as u64 + 1,
                "{kind} forwarded a multi-slot packet more or less than once"
            );
            assert_eq!(
                buf.stats().packets_accepted() - buf.stats().packets_forwarded(),
                buf.packet_count() as u64,
                "{kind} resident-count balance"
            );
        }
        assert_eq!(buf.used_slots(), 0, "{kind} released all slots");
    }
}

/// SAMQ/SAFC never let one queue exceed its static partition.
#[test]
fn static_designs_respect_partitions() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4_000 + seed);
        let count = rng.random_range(1..150usize);
        let ops = random_ops(&mut rng, 4, count);
        for kind in [BufferKind::Samq, BufferKind::Safc] {
            let mut buf = BufferConfig::new(4, 8).build(kind).unwrap();
            let mut serial = 0;
            let mut per_queue_slots = [0usize; 4];
            for op in &ops {
                match *op {
                    Op::Enqueue { output, length } => {
                        let p = packet(serial, length);
                        serial += 1;
                        let need = p.slots_needed(buf.slot_bytes());
                        if buf.try_enqueue(OutputPort::new(output), p).is_ok() {
                            per_queue_slots[output] += need;
                        }
                    }
                    Op::Dequeue { output } => {
                        if let Some(p) = buf.dequeue(OutputPort::new(output)) {
                            per_queue_slots[output] -= p.slots_needed(buf.slot_bytes());
                        }
                    }
                }
                for (q, &used) in per_queue_slots.iter().enumerate() {
                    assert!(
                        used <= 2,
                        "{kind} queue {q} used {used} of 2 slots, seed {seed}"
                    );
                }
            }
        }
    }
}
