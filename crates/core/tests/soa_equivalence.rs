//! Differential tests pinning the SoA storage rewrite to the frozen AoS
//! reference implementations.
//!
//! Two layers of evidence:
//!
//! 1. a seeded 48-shape property sweep driving [`SoaSlots`] and the old
//!    linked-node [`SlotPool`] through identical fill/drain/`kill_slot`/
//!    wraparound op streams, comparing every observable after every op;
//! 2. the same idea one level up — each of the five live (SoA) designs
//!    against its frozen `Aos*` twin under identical op streams, including
//!    fault injection, comparing results, registers and statistics.
//!
//! The network-level counterpart (whole-simulation fingerprints) lives in
//! `crates/net/tests/dispatch_equivalence.rs`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use damq_core::{
    AosDafcBuffer, AosDamqBuffer, AosFifoBuffer, AosSafcBuffer, AosSamqBuffer, BufferConfig,
    BufferKind, DafcBuffer, DamqBuffer, FifoBuffer, NodeId, OutputPort, Packet, PacketId,
    SafcBuffer, SamqBuffer, SlotPool, SoaSlots, SwitchBuffer,
};

/// The satellite-task contract: 48 seeded pool shapes.
const POOL_SHAPES: u64 = 48;

fn packet(serial: u64, length: usize) -> Packet {
    Packet::builder(NodeId::new(0), NodeId::new(1))
        .id(PacketId::new(serial))
        .length_bytes(length)
        .build()
}

/// One op against the raw slot-storage layer.
#[derive(Debug, Clone, Copy)]
enum PoolOp {
    Enqueue { list: usize, slots: usize },
    Dequeue { list: usize },
    Kill,
}

/// Compares every observable the two pools expose.
fn assert_pools_agree(soa: &SoaSlots, aos: &SlotPool, lists: usize, ctx: &str) {
    assert_eq!(soa.capacity(), aos.capacity(), "capacity {ctx}");
    assert_eq!(soa.free_count(), aos.free_count(), "free_count {ctx}");
    assert_eq!(soa.used_count(), aos.used_count(), "used_count {ctx}");
    assert_eq!(soa.dead_count(), aos.dead_count(), "dead_count {ctx}");
    assert_eq!(
        soa.effective_capacity(),
        aos.effective_capacity(),
        "effective_capacity {ctx}"
    );
    let mut lens = vec![0u16; lists];
    soa.queue_lens_into(&mut lens);
    for (l, &len) in lens.iter().enumerate() {
        assert_eq!(
            soa.queue_packets(l),
            aos.queue_packets(l),
            "queue_packets({l}) {ctx}"
        );
        assert_eq!(
            len as usize,
            aos.queue_packets(l),
            "queue_lens_into[{l}] {ctx}"
        );
        assert_eq!(
            soa.queue_slots(l),
            aos.queue_slots(l),
            "queue_slots({l}) {ctx}"
        );
        assert_eq!(soa.front(l), aos.front(l), "front({l}) {ctx}");
    }
    soa.check_invariants();
    aos.check_invariants();
}

/// The 48-shape sweep: every seed picks a pool shape (capacity, list count,
/// op mix) and drives both layouts through the same stream of enqueue,
/// dequeue and kill operations — enough enqueue/dequeue churn that the SoA
/// free list recycles indices (wraparound) many times per case.
#[test]
fn soa_slots_match_linked_slot_pool_across_48_shapes() {
    for seed in 0..POOL_SHAPES {
        let mut rng = StdRng::seed_from_u64(0x50A0 + seed);
        let capacity = rng.random_range(1..=24usize);
        let lists = rng.random_range(1..=6usize);
        let ops = rng.random_range(50..400usize);
        let max_span = capacity.clamp(1, 4);

        let mut soa = SoaSlots::new(capacity, lists);
        let mut aos = SlotPool::new(capacity, lists);
        let mut serial = 0u64;

        for op_no in 0..ops {
            let op = match rng.random_range(0..10usize) {
                // Enqueue-heavy mix keeps the pools near full so both the
                // full-rejection path and deferred kills get exercised.
                0..=4 => PoolOp::Enqueue {
                    list: rng.random_range(0..lists),
                    slots: rng.random_range(1..=max_span),
                },
                5..=8 => PoolOp::Dequeue {
                    list: rng.random_range(0..lists),
                },
                _ => PoolOp::Kill,
            };
            let ctx = format!("seed {seed} op {op_no} {op:?}");
            match op {
                PoolOp::Enqueue { list, slots } => {
                    let p = packet(serial, 1);
                    serial += 1;
                    let a = soa.enqueue(list, p.clone(), slots);
                    let b = aos.enqueue(list, p, slots);
                    assert_eq!(a.is_ok(), b.is_ok(), "enqueue outcome {ctx}");
                    if let (Err(pa), Err(pb)) = (a, b) {
                        assert_eq!(pa, pb, "rejected packet {ctx}");
                    }
                }
                PoolOp::Dequeue { list } => {
                    assert_eq!(soa.dequeue(list), aos.dequeue(list), "dequeue {ctx}");
                }
                PoolOp::Kill => {
                    assert_eq!(soa.kill_slot(), aos.kill_slot(), "kill_slot {ctx}");
                }
            }
            assert_pools_agree(&soa, &aos, lists, &ctx);
        }
    }
}

/// Deterministic fill-to-capacity / drain-to-empty cycles: the strongest
/// wraparound stress, because every slot index is recycled every round and
/// the free lists of both layouts must stay in the same FIFO order.
#[test]
fn soa_slots_survive_full_fill_drain_wraparound() {
    for round_shape in [(1usize, 1usize), (3, 2), (8, 4), (16, 3)] {
        let (capacity, lists) = round_shape;
        let mut soa = SoaSlots::new(capacity, lists);
        let mut aos = SlotPool::new(capacity, lists);
        let mut serial = 0u64;
        for round in 0..12 {
            // Fill completely with single-slot packets round-robined over
            // the lists, then drain completely.
            for i in 0..capacity {
                let p = packet(serial, 1);
                serial += 1;
                soa.enqueue(i % lists, p.clone(), 1).unwrap();
                aos.enqueue(i % lists, p, 1).unwrap();
            }
            let overflow = packet(serial, 1);
            serial += 1;
            assert!(soa.enqueue(0, overflow.clone(), 1).is_err());
            assert!(aos.enqueue(0, overflow, 1).is_err());
            for l in 0..lists {
                while let Some(p) = aos.dequeue(l) {
                    assert_eq!(soa.dequeue(l), Some(p), "round {round} list {l}");
                }
                assert_eq!(soa.dequeue(l), None);
            }
            assert_pools_agree(&soa, &aos, lists, &format!("round {round}"));
        }
    }
}

/// Kills eventually consume the whole pool in both layouts, through the
/// same sequence of immediate and dequeue-deferred deaths.
#[test]
fn soa_slots_kill_until_everything_is_dead() {
    let capacity = 6;
    let lists = 2;
    let mut soa = SoaSlots::new(capacity, lists);
    let mut aos = SlotPool::new(capacity, lists);
    // Occupy half the pool so half the kills defer.
    for s in 0..3u64 {
        let p = packet(s, 1);
        soa.enqueue((s % 2) as usize, p.clone(), 1).unwrap();
        aos.enqueue((s % 2) as usize, p, 1).unwrap();
    }
    for k in 0..capacity {
        assert_eq!(soa.kill_slot(), aos.kill_slot(), "kill {k}");
        assert_pools_agree(&soa, &aos, lists, &format!("kill {k}"));
    }
    // Every further kill is refused by both.
    assert!(!soa.kill_slot());
    assert!(!aos.kill_slot());
    // Draining converts the deferred kills identically.
    for l in 0..lists {
        while let Some(p) = aos.dequeue(l) {
            assert_eq!(soa.dequeue(l), Some(p));
        }
        assert_eq!(soa.dequeue(l), None);
    }
    assert_pools_agree(&soa, &aos, lists, "after drain");
    assert_eq!(soa.dead_count(), capacity);
    assert_eq!(soa.effective_capacity(), 0);
}

/// One op against a full buffer design.
#[derive(Debug, Clone, Copy)]
enum BufOp {
    Enqueue { output: usize, length: usize },
    Dequeue { output: usize },
    Kill { hint: usize },
    NoteHol,
}

/// Drives a live (SoA) design and its frozen AoS twin through the same op
/// stream and compares every observable after every op.
fn diff_designs<S: SwitchBuffer, A: SwitchBuffer>(mut soa: S, mut aos: A, seed: u64) {
    assert_eq!(soa.fanout(), aos.fanout());
    let fanout = soa.fanout();
    let mut rng = StdRng::seed_from_u64(seed);
    let ops = rng.random_range(100..300usize);
    let mut serial = 0u64;
    let mut lens = vec![0u16; fanout];
    for op_no in 0..ops {
        let op = match rng.random_range(0..12usize) {
            0..=5 => BufOp::Enqueue {
                output: rng.random_range(0..fanout + 1), // +1 hits NoSuchOutput
                length: rng.random_range(1..=32usize),
            },
            6..=9 => BufOp::Dequeue {
                output: rng.random_range(0..fanout),
            },
            10 => BufOp::Kill {
                hint: rng.random_range(0..fanout + 1),
            },
            _ => BufOp::NoteHol,
        };
        let kind = soa.kind();
        let ctx = format!("{kind} seed {seed} op {op_no} {op:?}");
        match op {
            BufOp::Enqueue { output, length } => {
                let p = packet(serial, length);
                serial += 1;
                let out = OutputPort::new(output);
                let slots = p.slots_needed(soa.slot_bytes());
                assert_eq!(
                    soa.can_accept(out, slots),
                    aos.can_accept(out, slots),
                    "can_accept {ctx}"
                );
                let a = soa.try_enqueue(out, p.clone());
                let b = aos.try_enqueue(out, p);
                match (a, b) {
                    (Ok(()), Ok(())) => {}
                    (Err(ra), Err(rb)) => {
                        assert_eq!(ra.reason, rb.reason, "reject reason {ctx}");
                        assert_eq!(ra.packet, rb.packet, "rejected packet {ctx}");
                    }
                    (a, b) => panic!("outcomes diverged ({a:?} vs {b:?}) {ctx}"),
                }
            }
            BufOp::Dequeue { output } => {
                let out = OutputPort::new(output);
                assert_eq!(soa.front(out), aos.front(out), "front {ctx}");
                assert_eq!(soa.dequeue(out), aos.dequeue(out), "dequeue {ctx}");
            }
            BufOp::Kill { hint } => {
                let h = OutputPort::new(hint);
                assert_eq!(soa.kill_slot(h), aos.kill_slot(h), "kill_slot {ctx}");
            }
            BufOp::NoteHol => {
                assert_eq!(
                    soa.note_hol_blocked(),
                    aos.note_hol_blocked(),
                    "note_hol_blocked {ctx}"
                );
            }
        }
        assert_eq!(soa.used_slots(), aos.used_slots(), "used_slots {ctx}");
        assert_eq!(soa.dead_slots(), aos.dead_slots(), "dead_slots {ctx}");
        assert_eq!(soa.free_slots(), aos.free_slots(), "free_slots {ctx}");
        assert_eq!(soa.packet_count(), aos.packet_count(), "packet_count {ctx}");
        assert_eq!(
            soa.eligible_outputs(),
            aos.eligible_outputs(),
            "eligible_outputs {ctx}"
        );
        soa.queue_lens_into(&mut lens);
        for (o, &len) in lens.iter().enumerate().take(fanout) {
            let out = OutputPort::new(o);
            assert_eq!(
                soa.queue_len(out),
                aos.queue_len(out),
                "queue_len({o}) {ctx}"
            );
            assert_eq!(
                len as usize,
                aos.queue_len(out),
                "queue_lens_into[{o}] {ctx}"
            );
        }
        assert_eq!(soa.stats(), aos.stats(), "stats {ctx}");
        if let Err(e) = soa.audit() {
            panic!("SoA audit failed: {e} {ctx}");
        }
        if let Err(e) = aos.audit() {
            panic!("AoS audit failed: {e} {ctx}");
        }
    }
}

/// All five designs match their frozen AoS references under randomized op
/// streams including fault injection, across many seeds and capacities.
#[test]
fn all_five_designs_match_their_aos_references() {
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0xA05 + seed);
        let dynamic_capacity = rng.random_range(1..=16usize);
        let static_capacity = rng.random_range(1..=4usize) * 4;
        let dyn_cfg = BufferConfig::new(4, dynamic_capacity);
        let static_cfg = BufferConfig::new(4, static_capacity);
        diff_designs(
            FifoBuffer::new(dyn_cfg).unwrap(),
            AosFifoBuffer::new(dyn_cfg).unwrap(),
            seed,
        );
        diff_designs(
            SamqBuffer::new(static_cfg).unwrap(),
            AosSamqBuffer::new(static_cfg).unwrap(),
            seed,
        );
        diff_designs(
            SafcBuffer::new(static_cfg).unwrap(),
            AosSafcBuffer::new(static_cfg).unwrap(),
            seed,
        );
        diff_designs(
            DamqBuffer::new(dyn_cfg).unwrap(),
            AosDamqBuffer::new(dyn_cfg).unwrap(),
            seed,
        );
        diff_designs(
            DafcBuffer::new(dyn_cfg).unwrap(),
            AosDafcBuffer::new(dyn_cfg).unwrap(),
            seed,
        );
    }
}

/// The AoS twins advertise the same kinds and read-port fabric as the live
/// designs, so network-level fingerprint runs label themselves identically.
#[test]
fn aos_twins_mirror_design_metadata() {
    let dyn_cfg = BufferConfig::new(4, 8);
    let pairs: [(Box<dyn SwitchBuffer>, Box<dyn SwitchBuffer>); 5] = [
        (
            Box::new(FifoBuffer::new(dyn_cfg).unwrap()),
            Box::new(AosFifoBuffer::new(dyn_cfg).unwrap()),
        ),
        (
            Box::new(SamqBuffer::new(dyn_cfg).unwrap()),
            Box::new(AosSamqBuffer::new(dyn_cfg).unwrap()),
        ),
        (
            Box::new(SafcBuffer::new(dyn_cfg).unwrap()),
            Box::new(AosSafcBuffer::new(dyn_cfg).unwrap()),
        ),
        (
            Box::new(DamqBuffer::new(dyn_cfg).unwrap()),
            Box::new(AosDamqBuffer::new(dyn_cfg).unwrap()),
        ),
        (
            Box::new(DafcBuffer::new(dyn_cfg).unwrap()),
            Box::new(AosDafcBuffer::new(dyn_cfg).unwrap()),
        ),
    ];
    for (soa, aos) in &pairs {
        assert_eq!(soa.kind(), aos.kind());
        assert_eq!(soa.read_ports(), aos.read_ports());
        assert_eq!(soa.capacity_slots(), aos.capacity_slots());
        assert_eq!(soa.fanout(), aos.fanout());
    }
    assert_eq!(BufferKind::EXTENDED.len(), pairs.len());
}
