//! Generic discrete-time Markov chain construction by state-space
//! exploration.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::{Add, Mul};

/// A fast non-cryptographic hasher (the Fx/rustc multiply-rotate scheme).
///
/// State-space exploration performs tens of millions of small-key hash
/// lookups; SipHash's DoS resistance is wasted there, so chains use this
/// instead. Exposed for the k×k model's transition merging.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_word(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_word(value as u64);
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add_word(u64::from(value));
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

use crate::solve::{steady_state, SolveError, SolveOptions, SteadyState};
use crate::sparse::CsrMatrix;

/// Per-transition expected quantities, accumulated into per-state rewards.
///
/// The discard analysis needs, for every state, the expected number of
/// packet arrivals, discards and departures during one cycle spent in that
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Reward {
    /// Packets offered to the switch on this branch.
    pub arrivals: f64,
    /// Packets discarded for lack of space.
    pub discards: f64,
    /// Packets transmitted out of the switch.
    pub departures: f64,
}

impl Add for Reward {
    type Output = Reward;

    fn add(self, rhs: Reward) -> Reward {
        Reward {
            arrivals: self.arrivals + rhs.arrivals,
            discards: self.discards + rhs.discards,
            departures: self.departures + rhs.departures,
        }
    }
}

impl Mul<f64> for Reward {
    type Output = Reward;

    fn mul(self, p: f64) -> Reward {
        Reward {
            arrivals: self.arrivals * p,
            discards: self.discards * p,
            departures: self.departures * p,
        }
    }
}

/// One probabilistic branch out of a state.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition<S> {
    /// The state reached.
    pub next: S,
    /// Probability of this branch (branches from one state sum to 1).
    pub probability: f64,
    /// Quantities accrued on this branch.
    pub reward: Reward,
}

/// A model that can enumerate its transitions; the chain is built by
/// exploring from [`MarkovModel::initial`].
pub trait MarkovModel {
    /// State type. Must be hashable for deduplication during exploration.
    type State: Clone + Eq + Hash + Debug;

    /// The exploration root (for the switch models: the empty switch).
    fn initial(&self) -> Self::State;

    /// All branches out of `state`. Probabilities must sum to 1.
    fn transitions(&self, state: &Self::State) -> Vec<Transition<Self::State>>;
}

/// A fully-enumerated chain: indexed states, transition matrix and expected
/// per-state rewards.
#[derive(Debug, Clone)]
pub struct Chain<S> {
    states: Vec<S>,
    matrix: CsrMatrix,
    rewards: Vec<Reward>,
}

impl<S: Clone + Eq + Hash + Debug> Chain<S> {
    /// Builds the chain reachable from `model.initial()`.
    ///
    /// # Panics
    ///
    /// Panics if some state's branch probabilities do not sum to 1 (within
    /// 1e-9) — that is a bug in the model.
    pub fn explore<M: MarkovModel<State = S>>(model: &M) -> Self {
        let mut index: FxHashMap<S, usize> = FxHashMap::default();
        let mut states: Vec<S> = Vec::new();
        let mut frontier: Vec<usize> = Vec::new();

        let root = model.initial();
        index.insert(root.clone(), 0);
        states.push(root);
        frontier.push(0);

        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        let mut rewards: Vec<Reward> = Vec::new();

        while let Some(from) = frontier.pop() {
            let branches = model.transitions(&states[from]);
            let total: f64 = branches.iter().map(|t| t.probability).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "branch probabilities from {:?} sum to {total}",
                states[from]
            );
            let mut reward = Reward::default();
            for t in branches {
                reward = reward + t.reward * t.probability;
                let to = *index.entry(t.next.clone()).or_insert_with(|| {
                    states.push(t.next.clone());
                    frontier.push(states.len() - 1);
                    states.len() - 1
                });
                triplets.push((from, to, t.probability));
            }
            if rewards.len() <= from {
                rewards.resize(states.len(), Reward::default());
            }
            rewards[from] = reward;
        }
        rewards.resize(states.len(), Reward::default());

        let n = states.len();
        Chain {
            states,
            matrix: CsrMatrix::from_triplet_vec(n, n, triplets),
            rewards,
        }
    }

    /// Number of reachable states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The state with index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn state(&self, i: usize) -> &S {
        &self.states[i]
    }

    /// The transition matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// Expected per-cycle reward in state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn reward(&self, i: usize) -> Reward {
        self.rewards[i]
    }

    /// Solves for the stationary distribution by damped power iteration.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the power iteration.
    pub fn steady_state(&self, options: SolveOptions) -> Result<SteadyState, SolveError> {
        steady_state(&self.matrix, options)
    }

    /// Solves for the stationary distribution by Gauss–Seidel sweeps
    /// (fewer iterations on slowly-mixing chains; see
    /// [`steady_state_gauss_seidel`](crate::steady_state_gauss_seidel)).
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the solver.
    pub fn steady_state_gauss_seidel(
        &self,
        options: SolveOptions,
    ) -> Result<SteadyState, SolveError> {
        crate::solve::steady_state_gauss_seidel(&self.matrix, options)
    }

    /// Long-run expected rewards per cycle under the stationary
    /// distribution `ss`.
    pub fn stationary_reward(&self, ss: &SteadyState) -> Reward {
        let mut total = Reward::default();
        for (i, &p) in ss.pi.iter().enumerate() {
            total = total + self.rewards[i] * p;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A queue of capacity 2: arrival w.p. `a` (discarded when full),
    /// departure w.p. 1 if nonempty after arrival.
    struct TinyQueue {
        arrival: f64,
    }

    impl MarkovModel for TinyQueue {
        type State = u8;

        fn initial(&self) -> u8 {
            0
        }

        fn transitions(&self, &s: &u8) -> Vec<Transition<u8>> {
            let mut out = Vec::new();
            for (arrived, p) in [(true, self.arrival), (false, 1.0 - self.arrival)] {
                if p == 0.0 {
                    continue;
                }
                let mut level = s;
                let mut discards = 0.0;
                let arrivals = if arrived { 1.0 } else { 0.0 };
                if arrived {
                    if level < 2 {
                        level += 1;
                    } else {
                        discards = 1.0;
                    }
                }
                let departures = if level > 0 {
                    level -= 1;
                    1.0
                } else {
                    0.0
                };
                out.push(Transition {
                    next: level,
                    probability: p,
                    reward: Reward {
                        arrivals,
                        discards,
                        departures,
                    },
                });
            }
            out
        }
    }

    #[test]
    fn explores_reachable_states_only() {
        // With service every cycle, occupancy never exceeds 1 after service:
        // states {0} reachable... arrival -> 1 -> serve -> 0. So only {0}.
        let chain = Chain::explore(&TinyQueue { arrival: 0.5 });
        assert_eq!(chain.state_count(), 1);
        assert_eq!(chain.state(0), &0);
    }

    #[test]
    fn rewards_average_over_branches() {
        let chain = Chain::explore(&TinyQueue { arrival: 0.5 });
        let r = chain.reward(0);
        assert!((r.arrivals - 0.5).abs() < 1e-12);
        assert!((r.departures - 0.5).abs() < 1e-12);
        assert_eq!(r.discards, 0.0);
    }

    #[test]
    fn stationary_reward_of_single_state_chain() {
        let chain = Chain::explore(&TinyQueue { arrival: 0.3 });
        let ss = chain.steady_state(SolveOptions::default()).unwrap();
        let r = chain.stationary_reward(&ss);
        assert!((r.arrivals - 0.3).abs() < 1e-12);
    }

    /// Arrival-after-service variant so the queue actually builds up.
    struct LazyQueue {
        arrival: f64,
        capacity: u8,
        service: f64,
    }

    impl MarkovModel for LazyQueue {
        type State = u8;

        fn initial(&self) -> u8 {
            0
        }

        fn transitions(&self, &s: &u8) -> Vec<Transition<u8>> {
            let mut out = Vec::new();
            for (arrived, pa) in [(true, self.arrival), (false, 1.0 - self.arrival)] {
                for (served, ps) in [(true, self.service), (false, 1.0 - self.service)] {
                    let p = pa * ps;
                    if p == 0.0 {
                        continue;
                    }
                    let mut level = s;
                    let mut discards = 0.0;
                    if served && level > 0 {
                        level -= 1;
                    }
                    if arrived {
                        if level < self.capacity {
                            level += 1;
                        } else {
                            discards = 1.0;
                        }
                    }
                    out.push(Transition {
                        next: level,
                        probability: p,
                        reward: Reward {
                            arrivals: if arrived { 1.0 } else { 0.0 },
                            discards,
                            departures: 0.0,
                        },
                    });
                }
            }
            out
        }
    }

    #[test]
    fn explores_full_capacity_range() {
        let chain = Chain::explore(&LazyQueue {
            arrival: 0.5,
            capacity: 3,
            service: 0.5,
        });
        assert_eq!(chain.state_count(), 4); // 0..=3
    }

    #[test]
    fn loss_probability_matches_analytic_geom_queue() {
        // Symmetric random walk on 0..=c with arrival=service=0.5:
        // stationary distribution is uniform-ish; just sanity check discard
        // rate is strictly between 0 and arrival rate.
        let chain = Chain::explore(&LazyQueue {
            arrival: 0.5,
            capacity: 2,
            service: 0.5,
        });
        let ss = chain.steady_state(SolveOptions::default()).unwrap();
        let r = chain.stationary_reward(&ss);
        assert!(r.discards > 0.0 && r.discards < 0.5);
        // Flow conservation: arrivals = discards + throughput in steady
        // state; throughput here equals served fraction which we did not
        // track, so just check arrival accounting.
        assert!((r.arrivals - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn bad_probabilities_are_caught() {
        struct Broken;
        impl MarkovModel for Broken {
            type State = u8;
            fn initial(&self) -> u8 {
                0
            }
            fn transitions(&self, _: &u8) -> Vec<Transition<u8>> {
                vec![Transition {
                    next: 0,
                    probability: 0.5,
                    reward: Reward::default(),
                }]
            }
        }
        let _ = Chain::explore(&Broken);
    }
}
