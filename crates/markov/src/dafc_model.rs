//! DAFC buffer behaviour inside the 2×2 long-clock switch (ablation).
//!
//! Dynamic shared storage (like [`DamqModel`](crate::DamqModel)) combined
//! with a read port per output (like [`SafcModel`](crate::SafcModel)):
//! the fourth corner of the allocation × connectivity design matrix, used
//! to measure how much read bandwidth matters once storage is shared.

use crate::switch2x2::{apply_moves, fully_connected_moves, BufferModel2x2, Counts};

/// DAFC buffers of `capacity` shared packet slots per input, fully
/// connected to the outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DafcModel {
    capacity: u8,
}

impl DafcModel {
    /// Creates the model with `capacity` packet slots per input buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds 255.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let capacity = u8::try_from(capacity).expect("capacity fits in u8");
        DafcModel { capacity }
    }

    /// Packet slots per input buffer.
    pub fn capacity(&self) -> usize {
        usize::from(self.capacity)
    }
}

impl BufferModel2x2 for DafcModel {
    type State = Counts;

    fn empty(&self) -> Counts {
        [[0, 0], [0, 0]]
    }

    fn occupancy(&self, state: &Counts) -> u32 {
        state.iter().flatten().map(|&c| u32::from(c)).sum()
    }

    fn accept(&self, state: &mut Counts, input: usize, output: usize) -> bool {
        if state[input][0] + state[input][1] < self.capacity {
            state[input][output] += 1;
            true
        } else {
            false
        }
    }

    fn departures(&self, state: &Counts) -> Vec<(Counts, f64, u32)> {
        fully_connected_moves(state)
            .into_iter()
            .map(|(moves, p)| {
                let (next, sent) = apply_moves(state, &moves);
                (next, p, sent)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_acceptance_like_damq() {
        let m = DafcModel::new(2);
        let mut s = m.empty();
        assert!(m.accept(&mut s, 0, 1));
        assert!(m.accept(&mut s, 0, 1));
        assert!(!m.accept(&mut s, 0, 0), "shared pool exhausted");
    }

    #[test]
    fn fully_connected_departures_like_safc() {
        let m = DafcModel::new(4);
        let s: Counts = [[2, 1], [0, 0]];
        let branches = m.departures(&s);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].2, 2, "one input feeds both outputs");
    }
}
