//! DAMQ buffer behaviour inside the 2×2 long-clock switch.
//!
//! Per-output queues with a **shared** slot pool: the state per input is
//! just the pair of queue lengths, constrained by their *sum* (dynamic
//! allocation). The order of packets within a queue is immaterial because
//! any queued packet for output *o* is interchangeable under fixed-length,
//! single-destination semantics.

use crate::switch2x2::{apply_moves, single_read_port_moves, BufferModel2x2, Counts};

/// DAMQ buffers of `capacity` shared packet slots per input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DamqModel {
    capacity: u8,
}

impl DamqModel {
    /// Creates the model with `capacity` packet slots per input buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds 255.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let capacity = u8::try_from(capacity).expect("capacity fits in u8");
        DamqModel { capacity }
    }

    /// Packet slots per input buffer.
    pub fn capacity(&self) -> usize {
        usize::from(self.capacity)
    }
}

impl BufferModel2x2 for DamqModel {
    type State = Counts;

    fn empty(&self) -> Counts {
        [[0, 0], [0, 0]]
    }

    fn occupancy(&self, state: &Counts) -> u32 {
        state.iter().flatten().map(|&c| u32::from(c)).sum()
    }

    fn accept(&self, state: &mut Counts, input: usize, output: usize) -> bool {
        if state[input][0] + state[input][1] < self.capacity {
            state[input][output] += 1;
            true
        } else {
            false
        }
    }

    fn departures(&self, state: &Counts) -> Vec<(Counts, f64, u32)> {
        single_read_port_moves(state)
            .into_iter()
            .map(|(moves, p)| {
                let (next, sent) = apply_moves(state, &moves);
                (next, p, sent)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_pool_accepts_any_mix_up_to_capacity() {
        let m = DamqModel::new(3);
        let mut s = m.empty();
        assert!(m.accept(&mut s, 0, 0));
        assert!(m.accept(&mut s, 0, 0));
        assert!(m.accept(&mut s, 0, 1));
        // Pool exhausted for input 0, regardless of output.
        assert!(!m.accept(&mut s, 0, 0));
        assert!(!m.accept(&mut s, 0, 1));
        assert_eq!(s[0], [2, 1]);
    }

    #[test]
    fn no_head_of_line_blocking_in_departures() {
        // Input 0 holds packets for both outputs; input 1 for out0 only.
        // Two packets depart (crossed assignment), unlike the FIFO model.
        let m = DamqModel::new(4);
        let s: Counts = [[1, 1], [1, 0]];
        let branches = m.departures(&s);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].2, 2);
        assert_eq!(branches[0].0, [[1, 0], [0, 0]]);
    }

    #[test]
    fn conflict_only_case_sends_one_from_longest() {
        let m = DamqModel::new(4);
        let s: Counts = [[3, 0], [1, 0]];
        let branches = m.departures(&s);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].0, [[2, 0], [1, 0]]);
        assert_eq!(branches[0].2, 1);
    }

    #[test]
    fn empty_buffers_idle() {
        let m = DamqModel::new(2);
        let branches = m.departures(&m.empty());
        assert_eq!(branches, vec![([[0, 0], [0, 0]], 1.0, 0)]);
    }
}
