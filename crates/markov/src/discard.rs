//! Discard-probability analysis: the computation behind the paper's
//! Table 2.

use std::error::Error;
use std::fmt;

use damq_core::BufferKind;

use crate::chain::{Chain, MarkovModel};
use crate::dafc_model::DafcModel;
use crate::damq_model::DamqModel;
use crate::fifo_model::FifoModel;
use crate::safc_model::SafcModel;
use crate::samq_model::SamqModel;
use crate::solve::{SolveError, SolveOptions};
use crate::switch2x2::{BufferModel2x2, CycleOrder, Switch2x2};

/// Result of analysing one (buffer kind, capacity, traffic) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscardPoint {
    /// Probability that an arriving packet is discarded.
    pub discard_probability: f64,
    /// Mean packets transmitted per cycle (out of a maximum of 2).
    pub throughput: f64,
    /// Mean packets resident in the switch's two buffers.
    pub mean_occupancy: f64,
    /// Mean buffering delay of an accepted packet, in long-clock cycles
    /// (Little's law: occupancy / throughput).
    pub mean_wait_cycles: f64,
    /// Number of states in the underlying chain.
    pub states: usize,
    /// Solver iterations used.
    pub iterations: usize,
}

/// Failure of a discard analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// SAMQ/SAFC need an even capacity for the 2×2 static split.
    OddStaticCapacity {
        /// The buffer design requested.
        kind: BufferKind,
        /// The capacity requested.
        capacity: usize,
    },
    /// The steady-state solver failed.
    Solve(SolveError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::OddStaticCapacity { kind, capacity } => write!(
                f,
                "{kind} buffers statically split storage and need an even capacity, got {capacity}"
            ),
            AnalysisError::Solve(e) => write!(f, "steady-state solve failed: {e}"),
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Solve(e) => Some(e),
            AnalysisError::OddStaticCapacity { .. } => None,
        }
    }
}

impl From<SolveError> for AnalysisError {
    fn from(e: SolveError) -> Self {
        AnalysisError::Solve(e)
    }
}

fn analyze_model<M>(
    model: M,
    traffic: f64,
    order: CycleOrder,
    options: SolveOptions,
) -> Result<DiscardPoint, AnalysisError>
where
    M: BufferModel2x2,
    Switch2x2<M>: MarkovModel<State = M::State>,
{
    let switch = Switch2x2::new(model, traffic, order);
    let chain = Chain::explore(&switch);
    let ss = chain.steady_state(options)?;
    let reward = chain.stationary_reward(&ss);
    let discard_probability = if reward.arrivals > 0.0 {
        reward.discards / reward.arrivals
    } else {
        0.0
    };
    let mean_occupancy: f64 = ss
        .pi
        .iter()
        .enumerate()
        .map(|(i, p)| p * f64::from(switch.model().occupancy(chain.state(i))))
        .sum();
    let mean_wait_cycles = if reward.departures > 0.0 {
        mean_occupancy / reward.departures
    } else {
        0.0
    };
    Ok(DiscardPoint {
        discard_probability,
        throughput: reward.departures,
        mean_occupancy,
        mean_wait_cycles,
        states: chain.state_count(),
        iterations: ss.iterations,
    })
}

/// Computes the steady-state discard probability of a 2×2 discarding switch
/// with the given buffer design, per-input `capacity` (in packets) and
/// per-input arrival probability `traffic`.
///
/// This is one cell of the paper's Table 2.
///
/// # Errors
///
/// Returns [`AnalysisError::OddStaticCapacity`] for SAMQ/SAFC with odd
/// capacity, or a wrapped [`SolveError`] if the chain does not converge.
///
/// # Examples
///
/// ```
/// use damq_core::BufferKind;
/// use damq_markov::{discard_probability, CycleOrder, SolveOptions};
///
/// let damq = discard_probability(
///     BufferKind::Damq, 3, 0.9, CycleOrder::default(), SolveOptions::default())?;
/// let fifo = discard_probability(
///     BufferKind::Fifo, 3, 0.9, CycleOrder::default(), SolveOptions::default())?;
/// assert!(damq.discard_probability < fifo.discard_probability);
/// # Ok::<(), damq_markov::AnalysisError>(())
/// ```
pub fn discard_probability(
    kind: BufferKind,
    capacity: usize,
    traffic: f64,
    order: CycleOrder,
    options: SolveOptions,
) -> Result<DiscardPoint, AnalysisError> {
    if kind.is_statically_allocated() && !capacity.is_multiple_of(2) {
        return Err(AnalysisError::OddStaticCapacity { kind, capacity });
    }
    match kind {
        BufferKind::Fifo => analyze_model(FifoModel::new(capacity), traffic, order, options),
        BufferKind::Damq => analyze_model(DamqModel::new(capacity), traffic, order, options),
        BufferKind::Samq => analyze_model(SamqModel::new(capacity), traffic, order, options),
        BufferKind::Safc => analyze_model(SafcModel::new(capacity), traffic, order, options),
        BufferKind::Dafc => analyze_model(DafcModel::new(capacity), traffic, order, options),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(kind: BufferKind, cap: usize, traffic: f64) -> DiscardPoint {
        discard_probability(
            kind,
            cap,
            traffic,
            CycleOrder::ArrivalsFirst,
            SolveOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn zero_traffic_never_discards() {
        for kind in BufferKind::ALL {
            let p = point(kind, 2, 0.0);
            assert_eq!(p.discard_probability, 0.0, "{kind}");
            assert_eq!(p.throughput, 0.0, "{kind}");
        }
    }

    #[test]
    fn flow_conservation_arrivals_equal_throughput_plus_discards() {
        for kind in BufferKind::ALL {
            let traffic = 0.8;
            let p = point(kind, 2, traffic);
            let arrivals = 2.0 * traffic;
            let lost = arrivals * p.discard_probability;
            assert!(
                (p.throughput + lost - arrivals).abs() < 1e-7,
                "{kind}: thr {} + lost {} != arr {}",
                p.throughput,
                lost,
                arrivals
            );
        }
    }

    #[test]
    fn damq_beats_fifo_at_high_traffic() {
        let damq = point(BufferKind::Damq, 4, 0.9);
        let fifo = point(BufferKind::Fifo, 4, 0.9);
        assert!(damq.discard_probability < fifo.discard_probability);
    }

    #[test]
    fn safc_at_least_as_good_as_samq() {
        for traffic in [0.5, 0.75, 0.95] {
            let safc = point(BufferKind::Safc, 4, traffic);
            let samq = point(BufferKind::Samq, 4, traffic);
            assert!(
                safc.discard_probability <= samq.discard_probability + 1e-9,
                "traffic {traffic}"
            );
        }
    }

    #[test]
    fn more_buffer_space_never_hurts() {
        for kind in [BufferKind::Fifo, BufferKind::Damq] {
            let small = point(kind, 2, 0.85);
            let large = point(kind, 5, 0.85);
            assert!(
                large.discard_probability <= small.discard_probability + 1e-9,
                "{kind}"
            );
        }
    }

    #[test]
    fn occupancy_and_wait_are_consistent() {
        // Little's law is applied by construction; check the pieces are
        // sane: occupancy within capacity, wait at least the service floor.
        for kind in BufferKind::ALL {
            let p = point(kind, 4, 0.8);
            assert!(p.mean_occupancy > 0.0, "{kind}");
            assert!(p.mean_occupancy <= 8.0, "{kind}: two 4-slot buffers");
            assert!(p.mean_wait_cycles > 0.0, "{kind}");
            assert!(
                (p.mean_wait_cycles - p.mean_occupancy / p.throughput).abs() < 1e-12,
                "{kind}"
            );
        }
    }

    #[test]
    fn fifo_waits_longer_than_damq_under_load() {
        // Head-of-line blocking shows up as queueing delay, not just loss.
        let fifo = point(BufferKind::Fifo, 4, 0.9);
        let damq = point(BufferKind::Damq, 4, 0.9);
        assert!(
            fifo.mean_wait_cycles > damq.mean_wait_cycles,
            "FIFO {} vs DAMQ {}",
            fifo.mean_wait_cycles,
            damq.mean_wait_cycles
        );
    }

    #[test]
    fn occupancy_grows_with_traffic() {
        for kind in BufferKind::ALL {
            let lo = point(kind, 4, 0.3);
            let hi = point(kind, 4, 0.9);
            assert!(hi.mean_occupancy > lo.mean_occupancy, "{kind}");
        }
    }

    #[test]
    fn odd_capacity_static_designs_rejected() {
        for kind in [BufferKind::Samq, BufferKind::Safc] {
            let err = discard_probability(
                kind,
                3,
                0.5,
                CycleOrder::ArrivalsFirst,
                SolveOptions::default(),
            )
            .unwrap_err();
            assert!(matches!(err, AnalysisError::OddStaticCapacity { .. }));
        }
    }

    #[test]
    fn fifo_beats_static_designs_at_low_traffic_small_buffers() {
        // The paper's observation: at 2 slots and light traffic the FIFO's
        // pooled storage beats the static split.
        let fifo = point(BufferKind::Fifo, 2, 0.25);
        let samq = point(BufferKind::Samq, 2, 0.25);
        let safc = point(BufferKind::Safc, 2, 0.25);
        assert!(fifo.discard_probability < samq.discard_probability);
        assert!(fifo.discard_probability < safc.discard_probability);
    }

    #[test]
    fn departures_first_orders_are_also_solvable() {
        let p = discard_probability(
            BufferKind::Damq,
            2,
            0.7,
            CycleOrder::DeparturesFirst,
            SolveOptions::default(),
        )
        .unwrap();
        assert!(p.discard_probability > 0.0 && p.discard_probability < 1.0);
    }
}
