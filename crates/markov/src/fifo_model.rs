//! FIFO buffer behaviour inside the 2×2 long-clock switch.
//!
//! A FIFO's state cannot be summarised by per-output counts: the *order* of
//! destinations in the queue matters, because only the head packet is ever
//! transmittable. The state is therefore the exact sequence of destination
//! outputs in each input queue.

use crate::switch2x2::BufferModel2x2;

/// FIFO buffers of `capacity` packets each, for the 2×2 Markov model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoModel {
    capacity: usize,
}

/// Joint state: the destination sequence of each input queue, head first.
pub type FifoState = [Vec<u8>; 2];

impl FifoModel {
    /// Creates the model with `capacity` packet slots per input buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        FifoModel { capacity }
    }

    /// Packet slots per input buffer.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl BufferModel2x2 for FifoModel {
    type State = FifoState;

    fn empty(&self) -> FifoState {
        [Vec::new(), Vec::new()]
    }

    fn occupancy(&self, state: &FifoState) -> u32 {
        (state[0].len() + state[1].len()) as u32
    }

    fn accept(&self, state: &mut FifoState, input: usize, output: usize) -> bool {
        if state[input].len() < self.capacity {
            state[input].push(output as u8);
            true
        } else {
            false
        }
    }

    fn departures(&self, state: &FifoState) -> Vec<(FifoState, f64, u32)> {
        let head0 = state[0].first().copied();
        let head1 = state[1].first().copied();
        let pop = |state: &FifoState, which: &[usize]| {
            let mut next = state.clone();
            for &i in which {
                next[i].remove(0);
            }
            (next, which.len() as u32)
        };
        match (head0, head1) {
            (None, None) => vec![(state.clone(), 1.0, 0)],
            (Some(_), None) => {
                let (next, sent) = pop(state, &[0]);
                vec![(next, 1.0, sent)]
            }
            (None, Some(_)) => {
                let (next, sent) = pop(state, &[1]);
                vec![(next, 1.0, sent)]
            }
            (Some(h0), Some(h1)) if h0 != h1 => {
                let (next, sent) = pop(state, &[0, 1]);
                vec![(next, 1.0, sent)]
            }
            (Some(_), Some(_)) => {
                // Head-of-line conflict: one of the two heads goes, from the
                // longest queue, ties split evenly.
                match state[0].len().cmp(&state[1].len()) {
                    std::cmp::Ordering::Greater => {
                        let (next, sent) = pop(state, &[0]);
                        vec![(next, 1.0, sent)]
                    }
                    std::cmp::Ordering::Less => {
                        let (next, sent) = pop(state, &[1]);
                        vec![(next, 1.0, sent)]
                    }
                    std::cmp::Ordering::Equal => {
                        let (a, sa) = pop(state, &[0]);
                        let (b, sb) = pop(state, &[1]);
                        vec![(a, 0.5, sa), (b, 0.5, sb)]
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_respects_capacity() {
        let m = FifoModel::new(2);
        let mut s = m.empty();
        assert!(m.accept(&mut s, 0, 1));
        assert!(m.accept(&mut s, 0, 0));
        assert!(!m.accept(&mut s, 0, 1));
        assert_eq!(s[0], vec![1, 0]);
        assert!(m.accept(&mut s, 1, 1), "other input unaffected");
    }

    #[test]
    fn distinct_heads_both_depart() {
        let m = FifoModel::new(3);
        let s: FifoState = [vec![0, 1], vec![1]];
        let branches = m.departures(&s);
        assert_eq!(branches.len(), 1);
        let (next, p, sent) = &branches[0];
        assert_eq!(*p, 1.0);
        assert_eq!(*sent, 2);
        assert_eq!(next[0], vec![1]);
        assert!(next[1].is_empty());
    }

    #[test]
    fn conflicting_heads_longest_queue_wins() {
        let m = FifoModel::new(3);
        let s: FifoState = [vec![0], vec![0, 1]];
        let branches = m.departures(&s);
        assert_eq!(branches.len(), 1);
        let (next, _, sent) = &branches[0];
        assert_eq!(*sent, 1);
        assert_eq!(next[0], vec![0], "shorter queue kept its head");
        assert_eq!(next[1], vec![1]);
    }

    #[test]
    fn conflicting_heads_tie_splits() {
        let m = FifoModel::new(3);
        let s: FifoState = [vec![1, 0], vec![1, 1]];
        let branches = m.departures(&s);
        assert_eq!(branches.len(), 2);
        let total: f64 = branches.iter().map(|(_, p, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-15);
        for (_, _, sent) in branches {
            assert_eq!(sent, 1);
        }
    }

    #[test]
    fn head_of_line_blocking_visible_in_model() {
        // Input 0's second packet wants the idle output 1, but its head
        // conflicts with input 1's head on output 0: only 1 packet departs
        // on the conflict branch involving input 1.
        let m = FifoModel::new(3);
        let s: FifoState = [vec![0, 1], vec![0]];
        let branches = m.departures(&s);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].2, 1, "HOL blocking: out1 stays idle");
    }

    #[test]
    fn single_nonempty_queue_departs_one() {
        let m = FifoModel::new(2);
        let s: FifoState = [vec![], vec![0, 0]];
        let branches = m.departures(&s);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].2, 1);
        assert_eq!(branches[0].0[1], vec![0]);
    }
}
