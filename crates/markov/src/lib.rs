//! Markov-chain analysis of 2×2 discarding switches (paper §4.1).
//!
//! This crate contains a small, self-contained discrete-time Markov chain
//! engine — state-space exploration ([`Chain`]), CSR sparse matrices
//! ([`CsrMatrix`]) and a damped power-iteration steady-state solver
//! ([`steady_state`]) — plus models of a 2×2 discarding switch for each of
//! the four buffer designs of [`damq_core`].
//!
//! The headline API is [`discard_probability`], which computes one cell of
//! the paper's Table 2: the probability that a packet arriving at a 2×2
//! switch with the given buffer design, buffer size and traffic level is
//! discarded.
//!
//! # Examples
//!
//! DAMQ with 3 slots discards no more than FIFO with 6 (one of the paper's
//! headline claims):
//!
//! ```
//! use damq_core::BufferKind;
//! use damq_markov::{discard_probability, CycleOrder, SolveOptions};
//!
//! let damq3 = discard_probability(
//!     BufferKind::Damq, 3, 0.95, CycleOrder::default(), SolveOptions::default())?;
//! let fifo6 = discard_probability(
//!     BufferKind::Fifo, 6, 0.95, CycleOrder::default(), SolveOptions::default())?;
//! assert!(damq3.discard_probability <= fifo6.discard_probability);
//! # Ok::<(), damq_markov::AnalysisError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod chain;
mod dafc_model;
mod damq_model;
mod discard;
mod fifo_model;
mod safc_model;
mod samq_model;
mod solve;
mod sparse;
mod switch2x2;
mod switch_kxk;

pub use chain::{Chain, FxHashMap, FxHasher, MarkovModel, Reward, Transition};
pub use dafc_model::DafcModel;
pub use damq_model::DamqModel;
pub use discard::{discard_probability, AnalysisError, DiscardPoint};
pub use fifo_model::{FifoModel, FifoState};
pub use safc_model::SafcModel;
pub use samq_model::SamqModel;
pub use solve::{steady_state, steady_state_gauss_seidel, SolveError, SolveOptions, SteadyState};
pub use sparse::CsrMatrix;
pub use switch2x2::{BufferModel2x2, CycleOrder, Switch2x2};
pub use switch_kxk::{discard_probability_kxk, kxk_supported_kinds, SwitchKxK};
