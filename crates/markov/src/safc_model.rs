//! SAFC buffer behaviour inside the 2×2 long-clock switch.
//!
//! Storage is statically split exactly like SAMQ, but the fully-connected
//! read fabric lets one input buffer feed **both** outputs in the same
//! cycle. Each output independently serves the input with the longer queue
//! for it.

use crate::switch2x2::{apply_moves, fully_connected_moves, BufferModel2x2, Counts};

/// SAFC buffers with `capacity / 2` packet slots statically reserved per
/// output queue and one read port per output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafcModel {
    per_queue: u8,
}

impl SafcModel {
    /// Creates the model with `capacity` total slots per input buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, odd, or exceeds 510.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            capacity.is_multiple_of(2),
            "statically-allocated 2x2 buffers need an even capacity, got {capacity}"
        );
        let per_queue = u8::try_from(capacity / 2).expect("capacity fits");
        SafcModel { per_queue }
    }

    /// Total slots per input buffer.
    pub fn capacity(&self) -> usize {
        usize::from(self.per_queue) * 2
    }

    /// Slots reserved for each output's queue.
    pub fn per_queue_capacity(&self) -> usize {
        usize::from(self.per_queue)
    }
}

impl BufferModel2x2 for SafcModel {
    type State = Counts;

    fn empty(&self) -> Counts {
        [[0, 0], [0, 0]]
    }

    fn occupancy(&self, state: &Counts) -> u32 {
        state.iter().flatten().map(|&c| u32::from(c)).sum()
    }

    fn accept(&self, state: &mut Counts, input: usize, output: usize) -> bool {
        if state[input][output] < self.per_queue {
            state[input][output] += 1;
            true
        } else {
            false
        }
    }

    fn departures(&self, state: &Counts) -> Vec<(Counts, f64, u32)> {
        fully_connected_moves(state)
            .into_iter()
            .map(|(moves, p)| {
                let (next, sent) = apply_moves(state, &moves);
                (next, p, sent)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_input_can_feed_both_outputs() {
        let m = SafcModel::new(4);
        let s: Counts = [[1, 1], [0, 0]];
        let branches = m.departures(&s);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].2, 2, "fully connected sends both");
        assert_eq!(branches[0].0, [[0, 0], [0, 0]]);
    }

    #[test]
    fn samq_cannot_do_what_safc_does_here() {
        // Contrast with the single-read-port logic on the same state.
        let samq = crate::samq_model::SamqModel::new(4);
        let s: Counts = [[1, 1], [0, 0]];
        let branches = samq.departures(&s);
        for (_, _, sent) in branches {
            assert_eq!(sent, 1, "single read port sends only one");
        }
    }

    #[test]
    fn per_output_conflicts_resolve_independently() {
        let m = SafcModel::new(6);
        // out0 contested (input1 longer); out1 contested (tie -> branches).
        let s: Counts = [[1, 2], [3, 2]];
        let branches = m.departures(&s);
        assert_eq!(branches.len(), 2);
        for (next, p, sent) in branches {
            assert_eq!(sent, 2);
            assert!((p - 0.5).abs() < 1e-15);
            // input1 always serves out0.
            assert_eq!(next[1][0], 2);
        }
    }

    #[test]
    fn acceptance_is_static_like_samq() {
        let m = SafcModel::new(2); // one slot per queue
        let mut s = m.empty();
        assert!(m.accept(&mut s, 1, 0));
        assert!(!m.accept(&mut s, 1, 0));
        assert!(m.accept(&mut s, 1, 1));
    }
}
