//! SAMQ buffer behaviour inside the 2×2 long-clock switch.
//!
//! Identical departure behaviour to DAMQ (per-output queues behind a single
//! read port) but the storage is **statically split**: each of the two
//! queues owns `capacity / 2` slots, so a packet can be discarded while the
//! other queue's slots sit empty. The paper's Table 2 only lists even buffer
//! sizes for SAMQ/SAFC for exactly this reason.

use crate::switch2x2::{apply_moves, single_read_port_moves, BufferModel2x2, Counts};

/// SAMQ buffers with `capacity / 2` packet slots statically reserved per
/// output queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamqModel {
    per_queue: u8,
}

impl SamqModel {
    /// Creates the model with `capacity` total slots per input buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, odd, or exceeds 510 (the static split
    /// of a 2×2 switch requires an even capacity).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            capacity.is_multiple_of(2),
            "statically-allocated 2x2 buffers need an even capacity, got {capacity}"
        );
        let per_queue = u8::try_from(capacity / 2).expect("capacity fits");
        SamqModel { per_queue }
    }

    /// Total slots per input buffer.
    pub fn capacity(&self) -> usize {
        usize::from(self.per_queue) * 2
    }

    /// Slots reserved for each output's queue.
    pub fn per_queue_capacity(&self) -> usize {
        usize::from(self.per_queue)
    }
}

impl BufferModel2x2 for SamqModel {
    type State = Counts;

    fn empty(&self) -> Counts {
        [[0, 0], [0, 0]]
    }

    fn occupancy(&self, state: &Counts) -> u32 {
        state.iter().flatten().map(|&c| u32::from(c)).sum()
    }

    fn accept(&self, state: &mut Counts, input: usize, output: usize) -> bool {
        if state[input][output] < self.per_queue {
            state[input][output] += 1;
            true
        } else {
            false
        }
    }

    fn departures(&self, state: &Counts) -> Vec<(Counts, f64, u32)> {
        single_read_port_moves(state)
            .into_iter()
            .map(|(moves, p)| {
                let (next, sent) = apply_moves(state, &moves);
                (next, p, sent)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_partition_rejects_despite_free_space() {
        let m = SamqModel::new(4); // 2 slots per queue
        let mut s = m.empty();
        assert!(m.accept(&mut s, 0, 1));
        assert!(m.accept(&mut s, 0, 1));
        // Queue for out1 full; out0's two slots are empty but unusable.
        assert!(!m.accept(&mut s, 0, 1));
        assert!(m.accept(&mut s, 0, 0));
    }

    #[test]
    #[should_panic(expected = "even capacity")]
    fn odd_capacity_panics() {
        let _ = SamqModel::new(3);
    }

    #[test]
    fn departures_match_damq_logic() {
        let samq = SamqModel::new(4);
        let damq = crate::damq_model::DamqModel::new(4);
        let s: Counts = [[2, 1], [0, 2]];
        assert_eq!(samq.departures(&s), damq.departures(&s));
    }
}
