//! Steady-state solvers for discrete-time Markov chains.

use std::error::Error;
use std::fmt;

use crate::sparse::CsrMatrix;

/// Convergence controls for [`steady_state`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Stop when the L1 change between iterates falls below this.
    pub tolerance: f64,
    /// Give up after this many iterations.
    pub max_iterations: usize,
    /// Damping factor `d`: the iterate is `d·πP + (1-d)·π`. Values below 1
    /// break the oscillation of periodic chains; 0.75 is a good default.
    pub damping: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tolerance: 1e-13,
            max_iterations: 2_000_000,
            damping: 0.75,
        }
    }
}

/// The stationary distribution of a chain, with solver diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyState {
    /// Stationary probability of each state.
    pub pi: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final L1 residual `‖πP − π‖₁`.
    pub residual: f64,
}

impl SteadyState {
    /// Expected value of a per-state quantity under the stationary
    /// distribution.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != pi.len()`.
    pub fn expectation(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.pi.len(), "value vector length");
        self.pi.iter().zip(values).map(|(p, v)| p * v).sum()
    }
}

/// Failure of the steady-state solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// A row of the transition matrix does not sum to 1.
    NotStochastic {
        /// The offending row.
        row: usize,
        /// Its sum.
        sum: f64,
    },
    /// The power iteration did not reach the tolerance.
    NotConverged {
        /// Residual when the iteration limit was hit.
        residual: f64,
        /// The iteration limit.
        iterations: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NotStochastic { row, sum } => {
                write!(f, "transition matrix row {row} sums to {sum}, not 1")
            }
            SolveError::NotConverged {
                residual,
                iterations,
            } => write!(
                f,
                "power iteration residual {residual:e} after {iterations} iterations"
            ),
        }
    }
}

impl Error for SolveError {}

/// Computes the stationary distribution `π = πP` of a row-stochastic matrix
/// by damped power iteration.
///
/// # Errors
///
/// Returns [`SolveError::NotStochastic`] if a row sum deviates from 1 by
/// more than 1e-9, or [`SolveError::NotConverged`] if the tolerance is not
/// met within the iteration budget.
///
/// # Examples
///
/// ```
/// use damq_markov::{steady_state, CsrMatrix, SolveOptions};
///
/// // Two-state chain: stay with 0.9 / 0.6, switch otherwise.
/// let p = CsrMatrix::from_triplets(
///     2,
///     2,
///     &[(0, 0, 0.9), (0, 1, 0.1), (1, 0, 0.4), (1, 1, 0.6)],
/// );
/// let ss = steady_state(&p, SolveOptions::default())?;
/// assert!((ss.pi[0] - 0.8).abs() < 1e-9);
/// assert!((ss.pi[1] - 0.2).abs() < 1e-9);
/// # Ok::<(), damq_markov::SolveError>(())
/// ```
pub fn steady_state(matrix: &CsrMatrix, options: SolveOptions) -> Result<SteadyState, SolveError> {
    assert_eq!(matrix.rows(), matrix.cols(), "transition matrix is square");
    for (row, sum) in matrix.row_sums().into_iter().enumerate() {
        if (sum - 1.0).abs() > 1e-9 {
            return Err(SolveError::NotStochastic { row, sum });
        }
    }

    let n = matrix.rows();
    let mut pi = vec![1.0 / n as f64; n];
    let d = options.damping;
    for iteration in 1..=options.max_iterations {
        let next = matrix.left_multiply(&pi);
        let mut diff = 0.0;
        let mut norm = 0.0;
        for i in 0..n {
            let blended = d * next[i] + (1.0 - d) * pi[i];
            diff += (blended - pi[i]).abs();
            pi[i] = blended;
            norm += blended;
        }
        // Renormalise to counter floating-point drift.
        for v in &mut pi {
            *v /= norm;
        }
        // `diff` is scaled by the damping factor; compare like with like.
        if diff / d <= options.tolerance {
            let check = matrix.left_multiply(&pi);
            let residual: f64 = check.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
            return Ok(SteadyState {
                pi,
                iterations: iteration,
                residual,
            });
        }
    }
    let check = matrix.left_multiply(&pi);
    let residual: f64 = check.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
    Err(SolveError::NotConverged {
        residual,
        iterations: options.max_iterations,
    })
}

/// Computes the stationary distribution by **Gauss–Seidel** sweeps on
/// `π = πP`: each sweep updates `π_j ← Σ_i π_i P_ij / (1 − P_jj)` in
/// place, using already-updated values — typically converging in far
/// fewer iterations than power iteration on slowly-mixing chains, at the
/// cost of a column-oriented copy of the matrix.
///
/// # Errors
///
/// Same contract as [`steady_state`].
///
/// # Examples
///
/// ```
/// use damq_markov::{steady_state, steady_state_gauss_seidel, CsrMatrix, SolveOptions};
///
/// let p = CsrMatrix::from_triplets(
///     2,
///     2,
///     &[(0, 0, 0.9), (0, 1, 0.1), (1, 0, 0.4), (1, 1, 0.6)],
/// );
/// let gs = steady_state_gauss_seidel(&p, SolveOptions::default())?;
/// let pi = steady_state(&p, SolveOptions::default())?;
/// assert!((gs.pi[0] - pi.pi[0]).abs() < 1e-9);
/// # Ok::<(), damq_markov::SolveError>(())
/// ```
pub fn steady_state_gauss_seidel(
    matrix: &CsrMatrix,
    options: SolveOptions,
) -> Result<SteadyState, SolveError> {
    assert_eq!(matrix.rows(), matrix.cols(), "transition matrix is square");
    for (row, sum) in matrix.row_sums().into_iter().enumerate() {
        if (sum - 1.0).abs() > 1e-9 {
            return Err(SolveError::NotStochastic { row, sum });
        }
    }
    let n = matrix.rows();
    let columns = matrix.to_columns();
    // Self-loop probability per state, for the (1 - P_jj) denominator.
    let self_loop: Vec<f64> = (0..n)
        .map(|j| {
            columns[j]
                .iter()
                .find(|&&(i, _)| i as usize == j)
                .map_or(0.0, |&(_, v)| v)
        })
        .collect();

    let mut pi = vec![1.0 / n as f64; n];
    for iteration in 1..=options.max_iterations {
        let mut diff = 0.0;
        for j in 0..n {
            let incoming: f64 = columns[j]
                .iter()
                .filter(|&&(i, _)| i as usize != j)
                .map(|&(i, v)| pi[i as usize] * v)
                .sum();
            let denom = 1.0 - self_loop[j];
            let updated = if denom > 1e-15 {
                incoming / denom
            } else {
                pi[j]
            };
            diff += (updated - pi[j]).abs();
            pi[j] = updated;
        }
        let norm: f64 = pi.iter().sum();
        if norm > 0.0 {
            for v in &mut pi {
                *v /= norm;
            }
        }
        if diff <= options.tolerance * norm.max(1.0) {
            let check = matrix.left_multiply(&pi);
            let residual: f64 = check.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
            return Ok(SteadyState {
                pi,
                iterations: iteration,
                residual,
            });
        }
    }
    let check = matrix.left_multiply(&pi);
    let residual: f64 = check.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
    Err(SolveError::NotConverged {
        residual,
        iterations: options.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauss_seidel_matches_power_iteration() {
        // A 4-state chain with uneven structure.
        let p = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 0.5),
                (0, 1, 0.5),
                (1, 2, 0.7),
                (1, 0, 0.3),
                (2, 3, 1.0),
                (3, 0, 0.2),
                (3, 3, 0.8),
            ],
        );
        let gs = steady_state_gauss_seidel(&p, SolveOptions::default()).unwrap();
        let pw = steady_state(&p, SolveOptions::default()).unwrap();
        for (a, b) in gs.pi.iter().zip(&pw.pi) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        assert!(gs.residual < 1e-9);
    }

    #[test]
    fn gauss_seidel_converges_in_fewer_iterations() {
        // Slowly-mixing birth-death chain.
        let mut t = Vec::new();
        let up = 0.49;
        let down = 0.51;
        let n = 30usize;
        for s in 0..n {
            if s + 1 < n {
                t.push((s, s + 1, up));
            } else {
                t.push((s, s, up));
            }
            if s > 0 {
                t.push((s, s - 1, down));
            } else {
                t.push((s, s, down));
            }
        }
        let p = CsrMatrix::from_triplets(n, n, &t);
        let gs = steady_state_gauss_seidel(&p, SolveOptions::default()).unwrap();
        let pw = steady_state(&p, SolveOptions::default()).unwrap();
        assert!(
            gs.iterations < pw.iterations,
            "GS {} vs power {}",
            gs.iterations,
            pw.iterations
        );
        for (a, b) in gs.pi.iter().zip(&pw.pi) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn gauss_seidel_rejects_non_stochastic() {
        let p = CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.9), (1, 1, 1.0)]);
        assert!(matches!(
            steady_state_gauss_seidel(&p, SolveOptions::default()),
            Err(SolveError::NotStochastic { row: 0, .. })
        ));
    }

    #[test]
    fn identity_chain_is_uniform_start() {
        let p = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let ss = steady_state(&p, SolveOptions::default()).unwrap();
        for v in ss.pi {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn periodic_chain_converges_thanks_to_damping() {
        // Pure swap has period 2; undamped power iteration oscillates.
        let p = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let ss = steady_state(&p, SolveOptions::default()).unwrap();
        assert!((ss.pi[0] - 0.5).abs() < 1e-9);
        assert!(ss.residual < 1e-9);
    }

    #[test]
    fn birth_death_chain_matches_closed_form() {
        // States 0..3, up with 0.3, down with 0.7 (reflecting ends).
        let mut t = Vec::new();
        let up = 0.3;
        let down = 0.7;
        for s in 0..4usize {
            if s < 3 {
                t.push((s, s + 1, up));
            } else {
                t.push((s, s, up));
            }
            if s > 0 {
                t.push((s, s - 1, down));
            } else {
                t.push((s, s, down));
            }
        }
        let p = CsrMatrix::from_triplets(4, 4, &t);
        let ss = steady_state(&p, SolveOptions::default()).unwrap();
        // Geometric with ratio up/down.
        let r: f64 = up / down;
        let z: f64 = (0..4).map(|k| r.powi(k)).sum();
        for k in 0..4 {
            assert!((ss.pi[k] - r.powi(k as i32) / z).abs() < 1e-9, "state {k}");
        }
    }

    #[test]
    fn non_stochastic_matrix_is_rejected() {
        let p = CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.9), (1, 1, 1.0)]);
        match steady_state(&p, SolveOptions::default()) {
            Err(SolveError::NotStochastic { row: 0, .. }) => {}
            other => panic!("expected NotStochastic, got {other:?}"),
        }
    }

    #[test]
    fn iteration_budget_is_respected() {
        let p = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let err = steady_state(
            &p,
            SolveOptions {
                // Unreachable tolerance forces the budget to bind.
                tolerance: -1.0,
                max_iterations: 3,
                damping: 0.75,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SolveError::NotConverged { iterations: 3, .. }
        ));
    }

    #[test]
    fn expectation_weights_by_pi() {
        let ss = SteadyState {
            pi: vec![0.25, 0.75],
            iterations: 1,
            residual: 0.0,
        };
        assert!((ss.expectation(&[4.0, 0.0]) - 1.0).abs() < 1e-15);
    }
}
