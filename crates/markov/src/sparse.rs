//! Compressed sparse row matrices for transition probabilities.

use std::fmt;

/// A sparse matrix in compressed-sparse-row form.
///
/// Used to hold row-stochastic transition matrices: entry `(i, j)` is the
/// probability of moving from state `i` to state `j` in one step.
///
/// # Examples
///
/// ```
/// use damq_markov::CsrMatrix;
///
/// // A 2-state chain that flips state with probability 1.
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
/// let out = m.left_multiply(&[0.25, 0.75]);
/// assert_eq!(out, vec![0.75, 0.25]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate positions are summed. Triplets need not be sorted.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `cols` exceeds `u32::MAX`.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        Self::from_triplet_vec(rows, cols, triplets.to_vec())
    }

    /// Like [`CsrMatrix::from_triplets`] but takes ownership, avoiding a
    /// copy of what can be tens of millions of entries for large chains.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `cols` exceeds `u32::MAX`.
    pub fn from_triplet_vec(
        rows: usize,
        cols: usize,
        mut sorted: Vec<(usize, usize, f64)>,
    ) -> Self {
        assert!(u32::try_from(cols).is_ok(), "too many columns");
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        row_ptr.push(0);
        let mut current_row = 0;
        for (r, c, v) in sorted {
            assert!(r < rows, "row index {r} out of range");
            assert!(c < cols, "column index {c} out of range");
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if col_idx.len() > row_ptr[current_row] && *col_idx.last().unwrap() == c as u32 {
                *values.last_mut().unwrap() += v;
            } else {
                col_idx.push(c as u32);
                values.push(v);
            }
        }
        while current_row < rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the stored entries of row `i` as `(col, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Sum of each row's stored values (should be 1.0 for a stochastic
    /// matrix).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| self.row(i).map(|(_, v)| v).sum())
            .collect()
    }

    /// Converts to compressed-sparse-column form: for each column `j`, the
    /// list of `(row, value)` entries. This is the access pattern
    /// Gauss–Seidel needs (`π_j` depends on all incoming transitions).
    pub fn to_columns(&self) -> Vec<Vec<(u32, f64)>> {
        let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); self.cols];
        for i in 0..self.rows {
            for (j, v) in self.row(i) {
                cols[j].push((i as u32, v));
            }
        }
        cols
    }

    /// Computes the row-vector product `x · M`.
    ///
    /// This is one step of a Markov chain: if `x` is a distribution over
    /// states, the result is the distribution after one transition.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn left_multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "vector length must equal row count");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for k in lo..hi {
                out[self.col_idx[k] as usize] += xi * self.values[k];
            }
        }
        out
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} sparse matrix, {} nonzeros",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_unsorted_triplets() {
        let m = CsrMatrix::from_triplets(3, 3, &[(2, 0, 0.5), (0, 1, 1.0), (2, 2, 0.5)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(1, 1.0)]);
        assert!(m.row(1).next().is_none());
        assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(0, 0.5), (2, 0.5)]);
    }

    #[test]
    fn duplicate_entries_are_summed() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 1, 0.25), (0, 1, 0.25), (0, 0, 0.5)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 0.5), (1, 0.5)]);
    }

    #[test]
    fn left_multiply_matches_hand_computation() {
        // P = [[0.9, 0.1], [0.4, 0.6]]
        let m =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.9), (0, 1, 0.1), (1, 0, 0.4), (1, 1, 0.6)]);
        let out = m.left_multiply(&[0.5, 0.5]);
        assert!((out[0] - 0.65).abs() < 1e-15);
        assert!((out[1] - 0.35).abs() < 1e-15);
    }

    #[test]
    fn row_sums_detect_stochasticity() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 0.3), (1, 1, 0.7)]);
        for s in m.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0)]);
        assert_eq!(m.row_sums(), vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn to_columns_transposes_correctly() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 0.5), (0, 2, 0.5), (1, 0, 1.0)]);
        let cols = m.to_columns();
        assert_eq!(cols[0], vec![(0, 0.5), (1, 1.0)]);
        assert!(cols[1].is_empty());
        assert_eq!(cols[2], vec![(0, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }
}
