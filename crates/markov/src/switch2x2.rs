//! Long-clock semantics of a 2×2 discarding switch (paper §4.1).
//!
//! The Markov analysis models a *single* 2×2 switch with fixed-length
//! packets and a "long clock": per cycle, each input port receives a packet
//! with probability *p* (the traffic level), destined to each output with
//! probability ½, and the arbiter transmits "two packets if at all
//! possible, or a packet from the longest queue if not". Packets that find
//! no space are discarded.
//!
//! The four buffer designs plug into this cycle structure through
//! [`BufferModel2x2`]; [`Switch2x2`] lifts any such model to a
//! [`MarkovModel`] whose states are joint buffer occupancies.

use std::fmt::Debug;
use std::hash::Hash;

use crate::chain::{MarkovModel, Reward, Transition};

/// Whether arrivals are applied before or after departures within one long
/// clock cycle.
///
/// `ArrivalsFirst` lets a packet that arrives at an empty queue leave in the
/// same cycle (the cut-through-style behaviour of the paper's switches);
/// `DeparturesFirst` is classic store-and-forward, where a packet stays at
/// least one cycle. Both are offered because the paper does not spell the
/// ordering out; `ArrivalsFirst` reproduces Table 2 far more closely and is
/// the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CycleOrder {
    /// Arrivals join queues (or are discarded), then the arbiter transmits.
    #[default]
    ArrivalsFirst,
    /// The arbiter transmits from the old state, then arrivals join.
    DeparturesFirst,
}

/// Buffer-design-specific behaviour inside the 2×2 long-clock switch.
pub trait BufferModel2x2 {
    /// Joint occupancy of the two input buffers.
    type State: Clone + Eq + Hash + Debug;

    /// Both buffers empty.
    fn empty(&self) -> Self::State;

    /// Total packets resident in `state` (for mean-occupancy and, via
    /// Little's law, waiting-time analysis).
    fn occupancy(&self, state: &Self::State) -> u32;

    /// Offers a packet for `output` to the buffer at `input` (0 or 1).
    /// Returns `false` — leaving the state untouched — if it must be
    /// discarded.
    fn accept(&self, state: &mut Self::State, input: usize, output: usize) -> bool;

    /// Enumerates the arbiter's possible outcomes from `state`: each branch
    /// is (post-departure state, probability, packets transmitted).
    /// Branch probabilities must sum to 1.
    fn departures(&self, state: &Self::State) -> Vec<(Self::State, f64, u32)>;
}

/// A [`MarkovModel`] of one 2×2 discarding switch with buffer behaviour `M`.
#[derive(Debug, Clone)]
pub struct Switch2x2<M> {
    model: M,
    traffic: f64,
    order: CycleOrder,
}

impl<M: BufferModel2x2> Switch2x2<M> {
    /// Wraps `model` with per-input arrival probability `traffic`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= traffic <= 1.0`.
    pub fn new(model: M, traffic: f64, order: CycleOrder) -> Self {
        assert!(
            (0.0..=1.0).contains(&traffic),
            "traffic must be a probability, got {traffic}"
        );
        Switch2x2 {
            model,
            traffic,
            order,
        }
    }

    /// The wrapped buffer model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The per-input arrival probability.
    pub fn traffic(&self) -> f64 {
        self.traffic
    }

    /// The configured intra-cycle ordering.
    pub fn order(&self) -> CycleOrder {
        self.order
    }

    fn arrival_options(&self) -> [(Option<usize>, f64); 3] {
        let p = self.traffic;
        [(None, 1.0 - p), (Some(0), p / 2.0), (Some(1), p / 2.0)]
    }
}

impl<M: BufferModel2x2> MarkovModel for Switch2x2<M> {
    type State = M::State;

    fn initial(&self) -> Self::State {
        self.model.empty()
    }

    fn transitions(&self, state: &Self::State) -> Vec<Transition<Self::State>> {
        let mut out = Vec::new();
        for (a0, p0) in self.arrival_options() {
            if p0 == 0.0 {
                continue;
            }
            for (a1, p1) in self.arrival_options() {
                let prob = p0 * p1;
                if prob == 0.0 {
                    continue;
                }
                let arrivals = a0.map_or(0.0, |_| 1.0) + a1.map_or(0.0, |_| 1.0);
                match self.order {
                    CycleOrder::ArrivalsFirst => {
                        let mut st = state.clone();
                        let mut discards = 0.0;
                        for (input, arrival) in [(0, a0), (1, a1)] {
                            if let Some(output) = arrival {
                                if !self.model.accept(&mut st, input, output) {
                                    discards += 1.0;
                                }
                            }
                        }
                        for (next, dp, sent) in self.model.departures(&st) {
                            out.push(Transition {
                                next,
                                probability: prob * dp,
                                reward: Reward {
                                    arrivals,
                                    discards,
                                    departures: f64::from(sent),
                                },
                            });
                        }
                    }
                    CycleOrder::DeparturesFirst => {
                        for (mut next, dp, sent) in self.model.departures(state) {
                            let mut discards = 0.0;
                            for (input, arrival) in [(0, a0), (1, a1)] {
                                if let Some(output) = arrival {
                                    if !self.model.accept(&mut next, input, output) {
                                        discards += 1.0;
                                    }
                                }
                            }
                            out.push(Transition {
                                next,
                                probability: prob * dp,
                                reward: Reward {
                                    arrivals,
                                    discards,
                                    departures: f64::from(sent),
                                },
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// Per-(input, output) packet counts for the count-based models
/// (DAMQ/SAMQ/SAFC).
pub(crate) type Counts = [[u8; 2]; 2];

/// Departure outcomes for buffers with a **single read port** per input
/// (DAMQ and SAMQ): the arbiter sends two packets when inputs can cover
/// distinct outputs, otherwise one from the longest queue.
///
/// Returns branches of (packets to remove as `(input, output)` moves,
/// probability).
pub(crate) fn single_read_port_moves(counts: &Counts) -> Vec<(Vec<(usize, usize)>, f64)> {
    // Exactly two ways to send two packets through a 2x2 crossbar.
    let straight = counts[0][0] > 0 && counts[1][1] > 0;
    let crossed = counts[0][1] > 0 && counts[1][0] > 0;
    match (straight, crossed) {
        (true, true) => vec![(vec![(0, 0), (1, 1)], 0.5), (vec![(0, 1), (1, 0)], 0.5)],
        (true, false) => vec![(vec![(0, 0), (1, 1)], 1.0)],
        (false, true) => vec![(vec![(0, 1), (1, 0)], 1.0)],
        (false, false) => {
            // At most one packet can go: pick from the longest queue,
            // breaking ties uniformly.
            let mut best = 0;
            let mut candidates: Vec<(usize, usize)> = Vec::new();
            for (input, row) in counts.iter().enumerate() {
                for (output, &c) in row.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    match c.cmp(&best) {
                        std::cmp::Ordering::Greater => {
                            best = c;
                            candidates = vec![(input, output)];
                        }
                        std::cmp::Ordering::Equal => candidates.push((input, output)),
                        std::cmp::Ordering::Less => {}
                    }
                }
            }
            if candidates.is_empty() {
                vec![(Vec::new(), 1.0)]
            } else {
                let p = 1.0 / candidates.len() as f64;
                candidates.into_iter().map(|m| (vec![m], p)).collect()
            }
        }
    }
}

/// Departure outcomes for the **fully-connected** SAFC buffer: every output
/// independently picks the input with the longer queue for it (ties
/// uniform), and one input may feed both outputs at once.
pub(crate) fn fully_connected_moves(counts: &Counts) -> Vec<(Vec<(usize, usize)>, f64)> {
    // Per output: list of (chosen input, probability).
    let choose = |output: usize| -> Vec<(Option<usize>, f64)> {
        let c0 = counts[0][output];
        let c1 = counts[1][output];
        match (c0 > 0, c1 > 0) {
            (false, false) => vec![(None, 1.0)],
            (true, false) => vec![(Some(0), 1.0)],
            (false, true) => vec![(Some(1), 1.0)],
            (true, true) => match c0.cmp(&c1) {
                std::cmp::Ordering::Greater => vec![(Some(0), 1.0)],
                std::cmp::Ordering::Less => vec![(Some(1), 1.0)],
                std::cmp::Ordering::Equal => vec![(Some(0), 0.5), (Some(1), 0.5)],
            },
        }
    };
    let mut out = Vec::new();
    for (i0, p0) in choose(0) {
        for (i1, p1) in choose(1) {
            let mut moves = Vec::new();
            if let Some(i) = i0 {
                moves.push((i, 0));
            }
            if let Some(i) = i1 {
                moves.push((i, 1));
            }
            out.push((moves, p0 * p1));
        }
    }
    out
}

/// Applies `moves` to a count matrix, returning the new counts and the
/// number of packets sent.
pub(crate) fn apply_moves(counts: &Counts, moves: &[(usize, usize)]) -> (Counts, u32) {
    let mut next = *counts;
    for &(input, output) in moves {
        debug_assert!(next[input][output] > 0, "move from empty queue");
        next[input][output] -= 1;
    }
    (next, moves.len() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_port_sends_two_when_outputs_differ() {
        let counts = [[1, 0], [0, 1]];
        let moves = single_read_port_moves(&counts);
        assert_eq!(moves, vec![(vec![(0, 0), (1, 1)], 1.0)]);
    }

    #[test]
    fn single_port_conflict_serves_longest_queue() {
        // Both inputs only have out0 packets; input 1 has more.
        let counts = [[1, 0], [3, 0]];
        let moves = single_read_port_moves(&counts);
        assert_eq!(moves, vec![(vec![(1, 0)], 1.0)]);
    }

    #[test]
    fn single_port_conflict_tie_is_uniform() {
        let counts = [[2, 0], [2, 0]];
        let moves = single_read_port_moves(&counts);
        assert_eq!(moves.len(), 2);
        for (m, p) in moves {
            assert_eq!(m.len(), 1);
            assert!((p - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn single_port_prefers_sending_two() {
        // Input 0 could serve either output; input 1 only out0. The arbiter
        // must pick the crossed assignment to move two packets.
        let counts = [[5, 1], [1, 0]];
        let moves = single_read_port_moves(&counts);
        assert_eq!(moves, vec![(vec![(0, 1), (1, 0)], 1.0)]);
    }

    #[test]
    fn single_port_two_valid_assignments_split_evenly() {
        let counts = [[1, 1], [1, 1]];
        let moves = single_read_port_moves(&counts);
        assert_eq!(moves.len(), 2);
        let total: f64 = moves.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-15);
        for (m, _) in moves {
            assert_eq!(m.len(), 2);
        }
    }

    #[test]
    fn empty_state_has_single_idle_branch() {
        let counts = [[0, 0], [0, 0]];
        assert_eq!(single_read_port_moves(&counts), vec![(Vec::new(), 1.0)]);
        assert_eq!(fully_connected_moves(&counts), vec![(Vec::new(), 1.0)]);
    }

    #[test]
    fn fully_connected_can_send_two_from_one_input() {
        let counts = [[2, 3], [0, 0]];
        let moves = fully_connected_moves(&counts);
        assert_eq!(moves, vec![(vec![(0, 0), (0, 1)], 1.0)]);
    }

    #[test]
    fn fully_connected_resolves_per_output_conflicts_by_length() {
        let counts = [[2, 0], [1, 2]];
        let moves = fully_connected_moves(&counts);
        // out0: input0 wins (2 > 1); out1: only input1.
        assert_eq!(moves, vec![(vec![(0, 0), (1, 1)], 1.0)]);
    }

    #[test]
    fn fully_connected_tie_branches() {
        let counts = [[1, 0], [1, 0]];
        let moves = fully_connected_moves(&counts);
        assert_eq!(moves.len(), 2);
        let total: f64 = moves.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-15);
    }

    #[test]
    fn apply_moves_decrements_and_counts() {
        let counts = [[2, 1], [0, 1]];
        let (next, sent) = apply_moves(&counts, &[(0, 0), (1, 1)]);
        assert_eq!(next, [[1, 1], [0, 0]]);
        assert_eq!(sent, 2);
    }
}
