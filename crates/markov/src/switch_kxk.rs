//! Markov analysis of k×k discarding switches (beyond the paper).
//!
//! The paper analyses 2×2 switches and resorts to simulation for 4×4
//! because "the state space was too large for Markov modeling" (§4).
//! Four decades later it is tractable for the buffer sizes of interest:
//! the count-based designs (SAMQ/SAFC/DAMQ/DAFC) need only per-(input,
//! output) packet counts, giving e.g. ~50 000 reachable states for a 4×4
//! DAMQ switch with 2 slots per input.
//!
//! Two deliberate simplifications versus the exact 2×2 models, both
//! documented and bounded by the cross-validation tests:
//!
//! * **FIFO is excluded** — its state needs the queue *order*, which grows
//!   as `k^depth` per input and defeats the count representation.
//! * **Arbitration is greedy and deterministic** — inputs are matched to
//!   outputs by repeatedly granting the longest remaining queue, breaking
//!   ties by lowest input then output index (instead of branching
//!   uniformly, which multiplies transitions combinatorially). This is the
//!   same family of policy as the simulator's arbiter, and the
//!   `markov_vs_simulation` suite bounds the residual difference.

use std::collections::BTreeSet;

use damq_core::BufferKind;

use crate::chain::{Chain, MarkovModel, Reward, Transition};
use crate::discard::{AnalysisError, DiscardPoint};
use crate::solve::SolveOptions;
use crate::switch2x2::CycleOrder;

/// Per-(input, output) packet counts of a k×k switch, row-major
/// (`input * k + output`). Fixed 16 cells (radix ≤ 4) keep the state
/// `Copy` and allocation-free — exploration visits tens of millions of
/// transitions, so this matters; unused cells stay zero.
type KState = [u8; 16];

/// Largest radix the fixed-size state supports.
pub const MAX_KXK_RADIX: usize = 4;

/// A k×k discarding switch with a count-based buffer design.
#[derive(Debug, Clone)]
pub struct SwitchKxK {
    kind: BufferKind,
    radix: usize,
    capacity: u8,
    traffic: f64,
    order: CycleOrder,
}

impl SwitchKxK {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::OddStaticCapacity`] if a statically-
    /// allocated design's capacity does not divide by the radix (the
    /// static split), reusing the same error the 2×2 API reports.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is FIFO (not representable by counts), the radix
    /// is < 2, the capacity is 0, or `traffic` is not a probability.
    pub fn new(
        kind: BufferKind,
        radix: usize,
        capacity: usize,
        traffic: f64,
        order: CycleOrder,
    ) -> Result<Self, AnalysisError> {
        assert!(
            kind != BufferKind::Fifo,
            "FIFO state is order-dependent; the k-by-k model covers the multi-queue designs"
        );
        assert!(radix >= 2, "radix must be at least 2");
        assert!(
            radix <= MAX_KXK_RADIX,
            "the k-by-k model supports radix up to {MAX_KXK_RADIX}"
        );
        assert!(capacity > 0 && capacity <= 255, "capacity out of range");
        assert!((0.0..=1.0).contains(&traffic), "traffic is a probability");
        if kind.is_statically_allocated() && !capacity.is_multiple_of(radix) {
            return Err(AnalysisError::OddStaticCapacity { kind, capacity });
        }
        Ok(SwitchKxK {
            kind,
            radix,
            capacity: capacity as u8,
            traffic,
            order,
        })
    }

    /// The switch radix.
    pub fn radix(&self) -> usize {
        self.radix
    }

    fn count(&self, state: &KState, input: usize, output: usize) -> u8 {
        state[input * self.radix + output]
    }

    /// Whether a packet for (input, output) fits, per the design's
    /// allocation rule.
    fn accepts(&self, state: &KState, input: usize, output: usize) -> bool {
        match self.kind {
            BufferKind::Damq | BufferKind::Dafc => {
                let used: u16 = (0..self.radix)
                    .map(|o| u16::from(self.count(state, input, o)))
                    .sum();
                used < u16::from(self.capacity)
            }
            BufferKind::Samq | BufferKind::Safc => {
                self.count(state, input, output) < self.capacity / self.radix as u8
            }
            BufferKind::Fifo => unreachable!("rejected in the constructor"),
        }
    }

    fn read_ports(&self) -> usize {
        match self.kind {
            BufferKind::Safc | BufferKind::Dafc => self.radix,
            _ => 1,
        }
    }

    /// Greedy longest-queue-first matching: returns the packets sent as
    /// (input, output) grants. Deterministic (ties to lowest indexes).
    fn departures(&self, state: &KState) -> Vec<(usize, usize)> {
        let k = self.radix;
        let per_input_budget = self.read_ports();
        let mut sent_from = vec![0usize; k];
        let mut output_taken = vec![false; k];
        let mut remaining: KState = *state;
        let mut grants = Vec::new();
        loop {
            let mut best: Option<(u8, usize, usize)> = None;
            for input in 0..k {
                if sent_from[input] >= per_input_budget {
                    continue;
                }
                for output in 0..k {
                    if output_taken[output] {
                        continue;
                    }
                    let c = remaining[input * k + output];
                    if c == 0 {
                        continue;
                    }
                    // Longest queue wins; ties to lowest (input, output) —
                    // max_by on (count, Reverse(idx)) done manually.
                    let better = match best {
                        None => true,
                        Some((bc, bi, bo)) => c > bc || (c == bc && (input, output) < (bi, bo)),
                    };
                    if better {
                        best = Some((c, input, output));
                    }
                }
            }
            let Some((_, input, output)) = best else {
                break;
            };
            grants.push((input, output));
            sent_from[input] += 1;
            output_taken[output] = true;
            remaining[input * k + output] -= 1;
        }
        grants
    }
}

impl MarkovModel for SwitchKxK {
    type State = KState;

    fn initial(&self) -> KState {
        [0; 16]
    }

    fn transitions(&self, state: &KState) -> Vec<Transition<KState>> {
        let k = self.radix;
        let p = self.traffic;
        // Arrival options per input: none, or one of k outputs.
        let mut options: Vec<(Option<usize>, f64)> = vec![(None, 1.0 - p)];
        for o in 0..k {
            options.push((Some(o), p / k as f64));
        }
        // Enumerate the (k+1)^k joint arrival combinations.
        let mut out = Vec::new();
        let mut combo = vec![0usize; k];
        loop {
            let mut prob = 1.0;
            for (input, &choice) in combo.iter().enumerate() {
                let _ = input;
                prob *= options[choice].1;
            }
            if prob > 0.0 {
                let mut st = *state;
                let mut sent = 0usize;
                if self.order == CycleOrder::DeparturesFirst {
                    let grants = self.departures(&st);
                    for &(input, output) in &grants {
                        st[input * k + output] -= 1;
                    }
                    sent = grants.len();
                }
                let mut arrivals = 0.0;
                let mut discards = 0.0;
                for (input, &choice) in combo.iter().enumerate() {
                    if let (Some(output), _) = options[choice] {
                        arrivals += 1.0;
                        if self.accepts(&st, input, output) {
                            st[input * k + output] += 1;
                        } else {
                            discards += 1.0;
                        }
                    }
                }
                if self.order == CycleOrder::ArrivalsFirst {
                    let grants = self.departures(&st);
                    for &(input, output) in &grants {
                        st[input * k + output] -= 1;
                    }
                    sent = grants.len();
                }
                out.push(Transition {
                    next: st,
                    probability: prob,
                    reward: Reward {
                        arrivals,
                        discards,
                        departures: sent as f64,
                    },
                });
            }
            // Advance the mixed-radix counter over arrival combos.
            let mut pos = 0;
            loop {
                if pos == k {
                    return merge_duplicates(out);
                }
                combo[pos] += 1;
                if combo[pos] < options.len() {
                    break;
                }
                combo[pos] = 0;
                pos += 1;
            }
        }
    }
}

/// Merges transitions that reach the same state (keeps chains compact —
/// different arrival combos frequently collapse after departures).
fn merge_duplicates(transitions: Vec<Transition<KState>>) -> Vec<Transition<KState>> {
    let mut merged: crate::chain::FxHashMap<KState, (f64, Reward)> =
        crate::chain::FxHashMap::default();
    for t in transitions {
        let entry = merged.entry(t.next).or_insert((0.0, Reward::default()));
        entry.0 += t.probability;
        entry.1 = entry.1 + t.reward * t.probability;
    }
    merged
        .into_iter()
        .map(|(next, (probability, weighted))| Transition {
            next,
            probability,
            // Un-weight: the chain builder re-weights by branch probability.
            reward: weighted * (1.0 / probability),
        })
        .collect()
}

/// Computes the discard probability of a k×k discarding switch with a
/// count-based buffer design (everything except FIFO).
///
/// # Errors
///
/// Returns [`AnalysisError`] for invalid static capacities or solver
/// failure.
///
/// # Examples
///
/// The 4×4 switch of the paper's Omega network, analysed exactly (which
/// the paper could not do):
///
/// ```no_run
/// use damq_core::BufferKind;
/// use damq_markov::{discard_probability_kxk, SolveOptions};
///
/// use damq_markov::CycleOrder;
///
/// let damq = discard_probability_kxk(
///     BufferKind::Damq, 4, 4, 0.9, CycleOrder::default(), SolveOptions::default())?;
/// let samq = discard_probability_kxk(
///     BufferKind::Samq, 4, 4, 0.9, CycleOrder::default(), SolveOptions::default())?;
/// assert!(damq.discard_probability < samq.discard_probability);
/// # Ok::<(), damq_markov::AnalysisError>(())
/// ```
pub fn discard_probability_kxk(
    kind: BufferKind,
    radix: usize,
    capacity: usize,
    traffic: f64,
    order: CycleOrder,
    options: SolveOptions,
) -> Result<DiscardPoint, AnalysisError> {
    let model = SwitchKxK::new(kind, radix, capacity, traffic, order)?;
    let chain = Chain::explore(&model);
    let ss = chain.steady_state(options)?;
    let reward = chain.stationary_reward(&ss);
    let discard_probability = if reward.arrivals > 0.0 {
        reward.discards / reward.arrivals
    } else {
        0.0
    };
    let mean_occupancy: f64 = ss
        .pi
        .iter()
        .enumerate()
        .map(|(i, p)| p * chain.state(i).iter().map(|&c| f64::from(c)).sum::<f64>())
        .sum();
    let mean_wait_cycles = if reward.departures > 0.0 {
        mean_occupancy / reward.departures
    } else {
        0.0
    };
    Ok(DiscardPoint {
        discard_probability,
        throughput: reward.departures,
        mean_occupancy,
        mean_wait_cycles,
        states: chain.state_count(),
        iterations: ss.iterations,
    })
}

/// The buffer kinds the k×k model supports.
pub fn kxk_supported_kinds() -> BTreeSet<BufferKind> {
    [
        BufferKind::Samq,
        BufferKind::Safc,
        BufferKind::Damq,
        BufferKind::Dafc,
    ]
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discard::discard_probability;
    use crate::switch2x2::CycleOrder;

    #[test]
    fn radix_2_roughly_matches_the_exact_2x2_models() {
        // Different tie-breaking (deterministic vs uniform), same physics:
        // the discard probabilities should agree closely.
        for kind in [BufferKind::Damq, BufferKind::Samq, BufferKind::Safc] {
            for traffic in [0.5, 0.9] {
                let exact = discard_probability(
                    kind,
                    4,
                    traffic,
                    CycleOrder::ArrivalsFirst,
                    SolveOptions::default(),
                )
                .unwrap();
                let greedy = discard_probability_kxk(
                    kind,
                    2,
                    4,
                    traffic,
                    CycleOrder::ArrivalsFirst,
                    SolveOptions::default(),
                )
                .unwrap();
                assert!(
                    (exact.discard_probability - greedy.discard_probability).abs() < 0.01,
                    "{kind}@{traffic}: exact {} vs greedy {}",
                    exact.discard_probability,
                    greedy.discard_probability
                );
            }
        }
    }

    #[test]
    fn flow_conservation_at_radix_3() {
        for kind in [BufferKind::Damq, BufferKind::Samq] {
            let traffic = 0.8;
            let p = discard_probability_kxk(
                kind,
                3,
                3,
                traffic,
                CycleOrder::ArrivalsFirst,
                SolveOptions::default(),
            )
            .unwrap();
            let arrivals = 3.0 * traffic;
            let lost = arrivals * p.discard_probability;
            assert!(
                (p.throughput + lost - arrivals).abs() < 1e-6,
                "{kind}: thr {} lost {lost} arr {arrivals}",
                p.throughput
            );
        }
    }

    #[test]
    fn damq_dominates_at_radix_3() {
        let traffic = 0.9;
        let damq = discard_probability_kxk(
            BufferKind::Damq,
            3,
            3,
            traffic,
            CycleOrder::ArrivalsFirst,
            SolveOptions::default(),
        )
        .unwrap();
        let samq = discard_probability_kxk(
            BufferKind::Samq,
            3,
            3,
            traffic,
            CycleOrder::ArrivalsFirst,
            SolveOptions::default(),
        )
        .unwrap();
        assert!(damq.discard_probability < samq.discard_probability);
    }

    #[test]
    fn fifo_is_rejected_up_front() {
        let result = std::panic::catch_unwind(|| {
            SwitchKxK::new(BufferKind::Fifo, 4, 4, 0.5, CycleOrder::ArrivalsFirst)
        });
        assert!(result.is_err());
    }

    #[test]
    fn static_capacity_must_divide_radix() {
        let err =
            SwitchKxK::new(BufferKind::Samq, 4, 6, 0.5, CycleOrder::ArrivalsFirst).unwrap_err();
        assert!(matches!(err, AnalysisError::OddStaticCapacity { .. }));
    }

    #[test]
    fn greedy_matching_is_maximal_on_small_cases() {
        // No (input, output) pair with packets remains grantable after the
        // greedy pass: the matching is maximal (not necessarily maximum).
        let model = SwitchKxK::new(BufferKind::Damq, 3, 3, 0.5, CycleOrder::ArrivalsFirst).unwrap();
        let mut state: KState = [0; 16];
        state[..9].copy_from_slice(&[1, 0, 0, 1, 1, 0, 0, 0, 1]);
        let grants = model.departures(&state);
        let mut rem = state;
        let mut outputs = [false; 3];
        let mut inputs = [false; 3];
        for &(i, o) in &grants {
            rem[i * 3 + o] -= 1;
            outputs[o] = true;
            inputs[i] = true;
        }
        for i in 0..3 {
            for o in 0..3 {
                assert!(
                    rem[i * 3 + o] == 0 || inputs[i] || outputs[o],
                    "greedy left a grantable pair ({i},{o})"
                );
            }
        }
    }

    #[test]
    fn fully_connected_designs_send_more() {
        // One input holding packets for all outputs: DAFC drains radix per
        // cycle, DAMQ one.
        let dafc = SwitchKxK::new(BufferKind::Dafc, 3, 3, 0.5, CycleOrder::ArrivalsFirst).unwrap();
        let damq = SwitchKxK::new(BufferKind::Damq, 3, 3, 0.5, CycleOrder::ArrivalsFirst).unwrap();
        let mut state: KState = [0; 16];
        state[..9].copy_from_slice(&[1, 1, 1, 0, 0, 0, 0, 0, 0]);
        assert_eq!(dafc.departures(&state).len(), 3);
        assert_eq!(damq.departures(&state).len(), 1);
    }
}
