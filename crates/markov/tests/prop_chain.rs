//! Property-based tests on the Markov engine and the 2×2 switch models.

use proptest::prelude::*;

use damq_core::BufferKind;
use damq_markov::{
    discard_probability, AnalysisError, Chain, CycleOrder, DamqModel, FifoModel, SafcModel,
    SamqModel, SolveOptions, Switch2x2,
};

fn kinds() -> impl Strategy<Value = BufferKind> {
    prop::sample::select(BufferKind::ALL.to_vec())
}

fn orders() -> impl Strategy<Value = CycleOrder> {
    prop::sample::select(vec![CycleOrder::ArrivalsFirst, CycleOrder::DeparturesFirst])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Row-stochasticity of every explored chain (checked by the builder)
    /// plus: the steady state really is a fixed point of the transition
    /// matrix, for random parameter points.
    #[test]
    fn steady_state_is_a_fixed_point(
        kind in kinds(),
        order in orders(),
        cap in 1usize..=4,
        traffic in 0.05f64..0.99,
    ) {
        let cap = if kind.is_statically_allocated() { cap * 2 } else { cap };
        let point = discard_probability(kind, cap, traffic, order, SolveOptions::default());
        let point = point.unwrap();
        prop_assert!(point.discard_probability >= 0.0);
        prop_assert!(point.discard_probability <= 1.0);
        // Throughput cannot exceed the crossbar's 2 packets/cycle.
        prop_assert!(point.throughput <= 2.0 + 1e-9);
    }

    /// Flow conservation at every random parameter point: offered traffic
    /// splits exactly into throughput and discards.
    #[test]
    fn flow_conservation(
        kind in kinds(),
        order in orders(),
        cap in 1usize..=3,
        traffic in 0.05f64..0.99,
    ) {
        let cap = if kind.is_statically_allocated() { cap * 2 } else { cap };
        let p = discard_probability(kind, cap, traffic, order, SolveOptions::default()).unwrap();
        let arrivals = 2.0 * traffic;
        let lost = arrivals * p.discard_probability;
        prop_assert!(
            (p.throughput + lost - arrivals).abs() < 1e-6,
            "thr {} + lost {} vs arrivals {}", p.throughput, lost, arrivals
        );
    }

    /// Discard probability is monotone in traffic (more offered load never
    /// reduces the discard fraction) for every design.
    #[test]
    fn discards_monotone_in_traffic(
        kind in kinds(),
        order in orders(),
        cap in 1usize..=3,
        t_low in 0.1f64..0.5,
        bump in 0.05f64..0.45,
    ) {
        let cap = if kind.is_statically_allocated() { cap * 2 } else { cap };
        let lo = discard_probability(kind, cap, t_low, order, SolveOptions::default()).unwrap();
        let hi = discard_probability(kind, cap, t_low + bump, order, SolveOptions::default())
            .unwrap();
        prop_assert!(
            hi.discard_probability >= lo.discard_probability - 1e-7,
            "{kind}: {} -> {}", lo.discard_probability, hi.discard_probability
        );
    }

    /// The explored state space never exceeds the combinatorial bound of
    /// the design's occupancy constraint (exploration visits only states
    /// reachable *after* a departure round, which is a strict subset for
    /// small buffers), and it grows with the buffer size.
    #[test]
    fn state_space_sizes_respect_combinatorial_bounds(
        cap in 1usize..=5,
        traffic in 0.3f64..0.9,
    ) {
        // DAMQ: a + b <= cap per input.
        let per_input = (cap + 1) * (cap + 2) / 2;
        let damq = Chain::explore(&Switch2x2::new(
            DamqModel::new(cap), traffic, CycleOrder::ArrivalsFirst));
        prop_assert!(damq.state_count() <= per_input * per_input);

        // SAMQ/SAFC: a <= cap, b <= cap per input (per-queue cap).
        let per_input = (cap + 1) * (cap + 1);
        let samq = Chain::explore(&Switch2x2::new(
            SamqModel::new(2 * cap), traffic, CycleOrder::ArrivalsFirst));
        prop_assert!(samq.state_count() <= per_input * per_input);
        let safc = Chain::explore(&Switch2x2::new(
            SafcModel::new(2 * cap), traffic, CycleOrder::ArrivalsFirst));
        prop_assert!(safc.state_count() <= per_input * per_input);
        // SAFC's fuller service makes its reachable set no larger than
        // SAMQ's.
        prop_assert!(safc.state_count() <= samq.state_count());

        // FIFO: ordered destination strings up to length cap.
        let per_input = (1usize << (cap + 1)) - 1; // sum of 2^l for l in 0..=cap
        let fifo = Chain::explore(&Switch2x2::new(
            FifoModel::new(cap), traffic, CycleOrder::ArrivalsFirst));
        prop_assert!(fifo.state_count() <= per_input * per_input);

        // Bigger buffers reach more states.
        if cap >= 2 {
            let smaller = Chain::explore(&Switch2x2::new(
                DamqModel::new(cap - 1), traffic, CycleOrder::ArrivalsFirst));
            prop_assert!(smaller.state_count() <= damq.state_count());
        }
    }

    /// SAMQ is never better than DAMQ with the same storage: the static
    /// split only removes options.
    #[test]
    fn samq_never_beats_damq(
        cap in 1usize..=3,
        traffic in 0.1f64..0.99,
        order in orders(),
    ) {
        let damq = discard_probability(
            BufferKind::Damq, 2 * cap, traffic, order, SolveOptions::default()).unwrap();
        let samq = discard_probability(
            BufferKind::Samq, 2 * cap, traffic, order, SolveOptions::default()).unwrap();
        prop_assert!(damq.discard_probability <= samq.discard_probability + 1e-7);
    }
}

#[test]
fn odd_static_capacity_is_a_clean_error() {
    let err = discard_probability(
        BufferKind::Samq,
        5,
        0.5,
        CycleOrder::ArrivalsFirst,
        SolveOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, AnalysisError::OddStaticCapacity { .. }));
    assert!(err.to_string().contains('5'));
}
