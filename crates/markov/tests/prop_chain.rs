//! Randomized property tests on the Markov engine and the 2×2 switch
//! models, driven by the workspace's deterministic generator (formerly
//! `proptest`; every case reproduces from the printed seed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use damq_core::BufferKind;
use damq_markov::{
    discard_probability, AnalysisError, Chain, CycleOrder, DamqModel, FifoModel, SafcModel,
    SamqModel, SolveOptions, Switch2x2,
};

fn kind(rng: &mut StdRng) -> BufferKind {
    BufferKind::ALL[rng.random_range(0..BufferKind::ALL.len())]
}

fn order(rng: &mut StdRng) -> CycleOrder {
    if rng.random_bool(0.5) {
        CycleOrder::ArrivalsFirst
    } else {
        CycleOrder::DeparturesFirst
    }
}

/// Row-stochasticity of every explored chain (checked by the builder)
/// plus: the steady state really is a fixed point of the transition
/// matrix, for random parameter points.
#[test]
fn steady_state_is_a_fixed_point() {
    for seed in 0..48 {
        let mut rng = StdRng::seed_from_u64(seed);
        let kind = kind(&mut rng);
        let order = order(&mut rng);
        let cap = rng.random_range(1..=4usize);
        let traffic = rng.random_range(0.05..0.99f64);
        let cap = if kind.is_statically_allocated() {
            cap * 2
        } else {
            cap
        };
        let point = discard_probability(kind, cap, traffic, order, SolveOptions::default());
        let point = point.unwrap();
        assert!(point.discard_probability >= 0.0, "seed {seed}");
        assert!(point.discard_probability <= 1.0, "seed {seed}");
        // Throughput cannot exceed the crossbar's 2 packets/cycle.
        assert!(point.throughput <= 2.0 + 1e-9, "seed {seed}");
    }
}

/// Flow conservation at every random parameter point: offered traffic
/// splits exactly into throughput and discards.
#[test]
fn flow_conservation() {
    for seed in 0..48 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let kind = kind(&mut rng);
        let order = order(&mut rng);
        let cap = rng.random_range(1..=3usize);
        let traffic = rng.random_range(0.05..0.99f64);
        let cap = if kind.is_statically_allocated() {
            cap * 2
        } else {
            cap
        };
        let p = discard_probability(kind, cap, traffic, order, SolveOptions::default()).unwrap();
        let arrivals = 2.0 * traffic;
        let lost = arrivals * p.discard_probability;
        assert!(
            (p.throughput + lost - arrivals).abs() < 1e-6,
            "thr {} + lost {} vs arrivals {}, seed {seed}",
            p.throughput,
            lost,
            arrivals
        );
    }
}

/// Discard probability is monotone in traffic (more offered load never
/// reduces the discard fraction) for every design.
#[test]
fn discards_monotone_in_traffic() {
    for seed in 0..48 {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let kind = kind(&mut rng);
        let order = order(&mut rng);
        let cap = rng.random_range(1..=3usize);
        let t_low = rng.random_range(0.1..0.5f64);
        let bump = rng.random_range(0.05..0.45f64);
        let cap = if kind.is_statically_allocated() {
            cap * 2
        } else {
            cap
        };
        let lo = discard_probability(kind, cap, t_low, order, SolveOptions::default()).unwrap();
        let hi =
            discard_probability(kind, cap, t_low + bump, order, SolveOptions::default()).unwrap();
        assert!(
            hi.discard_probability >= lo.discard_probability - 1e-7,
            "{kind}: {} -> {}, seed {seed}",
            lo.discard_probability,
            hi.discard_probability
        );
    }
}

/// The explored state space never exceeds the combinatorial bound of the
/// design's occupancy constraint (exploration visits only states reachable
/// *after* a departure round, which is a strict subset for small buffers),
/// and it grows with the buffer size.
#[test]
fn state_space_sizes_respect_combinatorial_bounds() {
    for seed in 0..12 {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let cap = rng.random_range(1..=5usize);
        let traffic = rng.random_range(0.3..0.9f64);

        // DAMQ: a + b <= cap per input.
        let per_input = (cap + 1) * (cap + 2) / 2;
        let damq = Chain::explore(&Switch2x2::new(
            DamqModel::new(cap),
            traffic,
            CycleOrder::ArrivalsFirst,
        ));
        assert!(damq.state_count() <= per_input * per_input);

        // SAMQ/SAFC: a <= cap, b <= cap per input (per-queue cap).
        let per_input = (cap + 1) * (cap + 1);
        let samq = Chain::explore(&Switch2x2::new(
            SamqModel::new(2 * cap),
            traffic,
            CycleOrder::ArrivalsFirst,
        ));
        assert!(samq.state_count() <= per_input * per_input);
        let safc = Chain::explore(&Switch2x2::new(
            SafcModel::new(2 * cap),
            traffic,
            CycleOrder::ArrivalsFirst,
        ));
        assert!(safc.state_count() <= per_input * per_input);
        // SAFC's fuller service makes its reachable set no larger than
        // SAMQ's.
        assert!(safc.state_count() <= samq.state_count());

        // FIFO: ordered destination strings up to length cap.
        let per_input = (1usize << (cap + 1)) - 1; // sum of 2^l for l in 0..=cap
        let fifo = Chain::explore(&Switch2x2::new(
            FifoModel::new(cap),
            traffic,
            CycleOrder::ArrivalsFirst,
        ));
        assert!(fifo.state_count() <= per_input * per_input);

        // Bigger buffers reach more states.
        if cap >= 2 {
            let smaller = Chain::explore(&Switch2x2::new(
                DamqModel::new(cap - 1),
                traffic,
                CycleOrder::ArrivalsFirst,
            ));
            assert!(smaller.state_count() <= damq.state_count());
        }
    }
}

/// SAMQ is never better than DAMQ with the same storage: the static split
/// only removes options.
#[test]
fn samq_never_beats_damq() {
    for seed in 0..48 {
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let cap = rng.random_range(1..=3usize);
        let traffic = rng.random_range(0.1..0.99f64);
        let order = order(&mut rng);
        let damq = discard_probability(
            BufferKind::Damq,
            2 * cap,
            traffic,
            order,
            SolveOptions::default(),
        )
        .unwrap();
        let samq = discard_probability(
            BufferKind::Samq,
            2 * cap,
            traffic,
            order,
            SolveOptions::default(),
        )
        .unwrap();
        assert!(
            damq.discard_probability <= samq.discard_probability + 1e-7,
            "seed {seed}"
        );
    }
}

#[test]
fn odd_static_capacity_is_a_clean_error() {
    let err = discard_probability(
        BufferKind::Samq,
        5,
        0.5,
        CycleOrder::ArrivalsFirst,
        SolveOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, AnalysisError::OddStaticCapacity { .. }));
    assert!(err.to_string().contains('5'));
}
