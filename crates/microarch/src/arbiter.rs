//! The central crossbar arbiter (paper §3.2.2).
//!
//! Every cycle (phase 1) the arbiter examines the buffers and connects
//! idle output ports to input buffers that hold data for them — "it makes
//! this decision based upon data it receives from each of the buffers, so
//! that a buffer is never connected to a port to which it has no data".
//! Because a DAMQ buffer has a single read bus, an input buffer feeds at
//! most one output at a time; connections persist until end of packet.

/// Rotating-priority arbiter state.
#[derive(Debug, Clone)]
pub(crate) struct CentralArbiter {
    ports: usize,
    priority: usize,
}

/// A connection decision: output `output` reads from input `input`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Grant {
    pub(crate) input: usize,
    pub(crate) output: usize,
}

impl CentralArbiter {
    pub(crate) fn new(ports: usize) -> Self {
        assert!(ports > 0, "arbiter needs ports");
        CentralArbiter { ports, priority: 0 }
    }

    /// Chooses connections for this cycle.
    ///
    /// * `output_idle[o]` — output `o` has no active transmission and its
    ///   downstream node is ready;
    /// * `input_free[i]` — input buffer `i`'s read bus is unused;
    /// * `has_data(i, o)` — buffer `i` holds at least one packet for `o`.
    ///
    /// Inputs are examined in rotating priority order; the priority
    /// pointer advances by one each call.
    pub(crate) fn arbitrate<F>(
        &mut self,
        output_idle: &[bool],
        input_free: &mut [bool],
        has_data: F,
    ) -> Vec<Grant>
    where
        F: Fn(usize, usize) -> bool,
    {
        debug_assert_eq!(output_idle.len(), self.ports);
        debug_assert_eq!(input_free.len(), self.ports);
        let mut grants = Vec::new();
        for step in 0..self.ports {
            let input = (self.priority + step) % self.ports;
            if !input_free[input] {
                continue;
            }
            // Connect this buffer to the first idle output it has data for.
            for (output, &idle) in output_idle.iter().enumerate().take(self.ports) {
                if idle
                    && !grants.iter().any(|g: &Grant| g.output == output)
                    && has_data(input, output)
                {
                    grants.push(Grant { input, output });
                    input_free[input] = false;
                    break;
                }
            }
        }
        self.priority = (self.priority + 1) % self.ports;
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_one_output_per_input() {
        let mut arb = CentralArbiter::new(3);
        let mut free = vec![true; 3];
        // Input 0 has data for outputs 1 and 2; it may win only one.
        let grants = arb.arbitrate(&[true, true, true], &mut free, |i, _o| i == 0);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].input, 0);
        assert!(!free[0]);
    }

    #[test]
    fn grants_one_input_per_output() {
        let mut arb = CentralArbiter::new(3);
        let mut free = vec![true; 3];
        // Everyone wants output 1.
        let grants = arb.arbitrate(&[true, true, true], &mut free, |_i, o| o == 1);
        assert_eq!(grants.len(), 1);
    }

    #[test]
    fn busy_outputs_and_inputs_are_skipped() {
        let mut arb = CentralArbiter::new(2);
        let mut free = vec![false, true];
        let grants = arb.arbitrate(&[false, true], &mut free, |_, _| true);
        assert_eq!(
            grants,
            vec![Grant {
                input: 1,
                output: 1
            }]
        );
    }

    #[test]
    fn priority_rotates() {
        let mut arb = CentralArbiter::new(2);
        // Both inputs want output 0; run twice and see both win once.
        let mut free = vec![true, true];
        let g1 = arb.arbitrate(&[true, false], &mut free, |_, o| o == 0);
        let mut free = vec![true, true];
        let g2 = arb.arbitrate(&[true, false], &mut free, |_, o| o == 0);
        assert_eq!(g1[0].input, 0);
        assert_eq!(g2[0].input, 1);
    }

    #[test]
    fn parallel_disjoint_grants() {
        let mut arb = CentralArbiter::new(4);
        let mut free = vec![true; 4];
        // Input i has data for output (i+1) % 4: a perfect matching.
        let grants = arb.arbitrate(&[true; 4], &mut free, |i, o| o == (i + 1) % 4);
        assert_eq!(grants.len(), 4);
    }
}
