//! The ComCoBB chip: ports, buffers, crossbar and clock.
//!
//! The chip has four network ports and a processor interface, all joined by
//! a 5×5 crossbar (paper §3). Every input port owns a DAMQ buffer
//! ([`LinkedSlotBuffer`]), a router with a virtual-circuit table, and a
//! receiver FSM; every output port owns a transmitter FSM. A central
//! arbiter connects buffers to outputs each cycle.
//!
//! [`Chip::tick`] advances one 20 MHz clock cycle in two phases:
//!
//! * **phase 0** — transmitters drive their output latches onto the links
//!   and pull the next byte through the crossbar; receivers consume the
//!   synchronizer output and write data bytes into buffer slots;
//! * **phase 1** — the arbiter makes new connections (from queue state as
//!   of the previous cycle, modelling its one-cycle latency), then routers
//!   route headers and length registers are latched.
//!
//! This schedule reproduces Table 1 of the paper exactly: a packet whose
//! start bit arrives at cycle 0 has its start bit driven downstream at
//! cycle 4, phase 0 — virtual cut-through in four clock cycles.

use crate::arbiter::CentralArbiter;
use crate::error::MicroarchError;
use crate::link::{InputWire, OutputLog};
use crate::ports::{Receiver, Transmitter};
use crate::router::{RouteEntry, RoutingTable};
use crate::slotbuf::{LinkedSlotBuffer, DEFAULT_SLOTS};
use crate::trace::{ChipEvent, Phase, Trace};

/// Number of ports on the ComCoBB chip: four network ports plus the
/// processor interface.
pub const COMCOBB_PORTS: usize = 5;

/// Index of the processor-interface port.
pub const PROCESSOR_PORT: usize = 4;

/// Static configuration of a chip instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipConfig {
    ports: usize,
    slots_per_buffer: usize,
}

impl ChipConfig {
    /// The ComCoBB configuration: 5 ports, 12 slots per buffer.
    pub fn comcobb() -> Self {
        ChipConfig {
            ports: COMCOBB_PORTS,
            slots_per_buffer: DEFAULT_SLOTS,
        }
    }

    /// A custom port count (≥ 2) for reduced test chips.
    ///
    /// # Panics
    ///
    /// Panics if `ports < 2`.
    pub fn with_ports(mut self, ports: usize) -> Self {
        assert!(ports >= 2, "chip needs at least two ports");
        self.ports = ports;
        self
    }

    /// A custom buffer size in slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn with_slots(mut self, slots: usize) -> Self {
        assert!(slots > 0, "buffers need slots");
        self.slots_per_buffer = slots;
        self
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Slots per input buffer.
    pub fn slots(&self) -> usize {
        self.slots_per_buffer
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::comcobb()
    }
}

/// A cycle-accurate behavioural model of the ComCoBB communication
/// coprocessor.
///
/// # Examples
///
/// Virtual cut-through in four cycles (the paper's Table 1):
///
/// ```
/// use damq_microarch::{Chip, ChipConfig, RouteEntry};
///
/// let mut chip = Chip::new(ChipConfig::comcobb());
/// chip.program_route(0, 0x21, RouteEntry { output: 2, new_header: 0x22 })?;
/// chip.input_wire_mut(0).drive_packet(0, 0x21, &[1, 2, 3, 4]);
/// chip.run_until(20);
///
/// let sent = chip.output_log(2).packets();
/// assert_eq!(sent, vec![(4, 0x22, vec![1, 2, 3, 4])]);
/// # Ok::<(), damq_microarch::MicroarchError>(())
/// ```
#[derive(Debug)]
pub struct Chip {
    config: ChipConfig,
    cycle: u64,
    wires: Vec<InputWire>,
    logs: Vec<OutputLog>,
    buffers: Vec<LinkedSlotBuffer>,
    tables: Vec<RoutingTable>,
    receivers: Vec<Receiver>,
    transmitters: Vec<Transmitter>,
    arbiter: CentralArbiter,
    /// Input read buses currently free (a DAMQ buffer feeds one output
    /// at a time, so a connected bus is unavailable until end of packet).
    input_bus_free: Vec<bool>,
    /// Whether each output's downstream node can accept a packet.
    downstream_ready: Vec<bool>,
    trace: Trace,
}

impl Chip {
    /// Builds an idle chip.
    pub fn new(config: ChipConfig) -> Self {
        let n = config.ports();
        Chip {
            config,
            cycle: 0,
            wires: (0..n).map(|_| InputWire::new()).collect(),
            logs: (0..n).map(|_| OutputLog::new()).collect(),
            buffers: (0..n)
                .map(|_| LinkedSlotBuffer::new(config.slots(), n))
                .collect(),
            tables: (0..n).map(|_| RoutingTable::new(n)).collect(),
            receivers: (0..n).map(Receiver::new).collect(),
            transmitters: (0..n).map(Transmitter::new).collect(),
            arbiter: CentralArbiter::new(n),
            input_bus_free: vec![true; n],
            downstream_ready: vec![true; n],
            trace: Trace::new(),
        }
    }

    /// The chip's configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// The next cycle to be simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Programs a virtual circuit on `input`: packets whose header is
    /// `header` leave through `entry.output` carrying `entry.new_header`.
    ///
    /// # Errors
    ///
    /// [`MicroarchError::RouteTurnsBack`] if the entry routes straight back
    /// out of the arrival port (forbidden on the ComCoBB), or
    /// [`MicroarchError::NoRoute`] if the output index is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn program_route(
        &mut self,
        input: usize,
        header: u8,
        entry: RouteEntry,
    ) -> Result<(), MicroarchError> {
        if entry.output == input {
            return Err(MicroarchError::RouteTurnsBack { port: input });
        }
        self.tables[input].set(header, entry)
    }

    /// Mutable access to the stimulus wire feeding `input` (drive packets
    /// on it before/while running).
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn input_wire_mut(&mut self, input: usize) -> &mut InputWire {
        &mut self.wires[input]
    }

    /// What output port `output` has driven so far.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range.
    pub fn output_log(&self, output: usize) -> &OutputLog {
        &self.logs[output]
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Turns cycle/phase event tracing on or off (on by default). Long
    /// multi-chip simulations disable it to keep memory flat.
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// Read access to the buffer behind `input`.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn buffer(&self, input: usize) -> &LinkedSlotBuffer {
        &self.buffers[input]
    }

    /// Simulates the downstream node on `output` asserting or deasserting
    /// its flow-control ready line.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range.
    pub fn set_downstream_ready(&mut self, output: usize, ready: bool) {
        self.downstream_ready[output] = ready;
    }

    /// This chip's own flow-control ready line for `input`: asserted while
    /// the buffer can absorb a maximum-size packet (4 slots), the
    /// conservative policy a sender checks before driving a start bit.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn ready(&self, input: usize) -> bool {
        self.buffers[input].free_slots() >= 4
    }

    /// Advances one clock cycle (both phases).
    pub fn tick(&mut self) {
        let cycle = self.cycle;

        // ---- Phase 0: data movement. Transmitters first (their reads lag
        // the writes by two cycles, so ordering within the phase is safe),
        // then receivers.
        for port in 0..self.config.ports() {
            let released = self.transmitters[port].phase0(
                cycle,
                &mut self.buffers,
                &mut self.logs[port],
                &mut self.trace,
            );
            if let Some(input) = released {
                self.input_bus_free[input] = true;
            }
        }
        for port in 0..self.config.ports() {
            self.receivers[port].phase0(
                cycle,
                &self.wires[port],
                &mut self.buffers[port],
                &mut self.trace,
            );
        }

        // ---- Phase 1: control. The arbiter sees queue state as of the
        // previous cycle's routing (it runs before this cycle's routers),
        // modelling the request->latch cycle of Table 1.
        let output_idle: Vec<bool> = (0..self.config.ports())
            .map(|o| self.transmitters[o].is_idle() && self.downstream_ready[o])
            .collect();
        let buffers = &self.buffers;
        let grants = self
            .arbiter
            .arbitrate(&output_idle, &mut self.input_bus_free, |i, o| {
                buffers[i].queue_packets(o) > 0 && !buffers[i].transmitting(o)
            });
        for grant in grants {
            let header = self.buffers[grant.input]
                .begin_transmit(grant.output)
                .expect("arbiter only grants queues with data");
            self.transmitters[grant.output].connect(grant.input, header);
            self.trace.record(
                cycle,
                Phase::One,
                grant.output,
                ChipEvent::Granted { input: grant.input },
            );
        }
        for port in 0..self.config.ports() {
            self.receivers[port].phase1(
                cycle,
                &self.tables[port],
                &mut self.buffers[port],
                &mut self.trace,
            );
        }

        self.cycle += 1;
    }

    /// Runs until (and excluding) `cycle`.
    pub fn run_until(&mut self, cycle: u64) {
        while self.cycle < cycle {
            self.tick();
        }
    }

    /// Runs until the chip is quiescent (no receptions, transmissions or
    /// scheduled stimulus remain), up to `max_cycle`.
    ///
    /// Returns the cycle at which the chip went idle.
    ///
    /// # Panics
    ///
    /// Panics if the chip is still busy at `max_cycle` (a stuck-packet
    /// bug).
    pub fn run_to_quiescence(&mut self, max_cycle: u64) -> u64 {
        loop {
            let stimulus_pending = self
                .wires
                .iter()
                .any(|w| w.last_driven_cycle().is_some_and(|c| c >= self.cycle));
            let receiving = self.receivers.iter().any(|r| !r.is_idle());
            let transmitting = self.transmitters.iter().any(|t| !t.is_idle());
            let queued = (0..self.config.ports()).any(|i| {
                (0..self.config.ports())
                    .any(|o| self.buffers[i].queue_packets(o) > 0 && self.downstream_ready[o])
            });
            if !stimulus_pending && !receiving && !transmitting && !queued {
                return self.cycle;
            }
            assert!(
                self.cycle < max_cycle,
                "chip still busy at cycle {max_cycle}"
            );
            self.tick();
        }
    }

    /// Verifies every buffer's linked-list invariants without panicking.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn audit(&self) -> Result<(), damq_core::AuditError> {
        for buffer in &self.buffers {
            buffer.audit()?;
        }
        Ok(())
    }

    /// Verifies every buffer's linked-list invariants.
    ///
    /// # Panics
    ///
    /// Panics with a description on violation.
    pub fn check_invariants(&self) {
        for buffer in &self.buffers {
            buffer.check_invariants();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSymbol;

    fn chip() -> Chip {
        let mut chip = Chip::new(ChipConfig::comcobb());
        // Simple circuits: header 0xN0 + port -> output N with header+1.
        for input in 0..COMCOBB_PORTS {
            for output in 0..COMCOBB_PORTS {
                if output == input {
                    continue;
                }
                let header = (output as u8) << 4 | input as u8;
                chip.program_route(
                    input,
                    header,
                    RouteEntry {
                        output,
                        new_header: header.wrapping_add(1),
                    },
                )
                .unwrap();
            }
        }
        chip
    }

    #[test]
    fn table_1_virtual_cut_through_in_four_cycles() {
        let mut chip = chip();
        // Start bit at cycle 0 into port 0, routed to output 2.
        chip.input_wire_mut(0).drive_packet(0, 0x20, &[9, 8, 7]);
        chip.run_until(16);
        let log = chip.output_log(2);
        // Table 1: start bit out at cycle 4 phase 0.
        assert_eq!(log.start_bit_cycles(), vec![4]);
        let packets = log.packets();
        assert_eq!(packets, vec![(4, 0x21, vec![9, 8, 7])]);
        chip.check_invariants();
    }

    #[test]
    fn table_1_event_sequence() {
        let mut chip = chip();
        chip.input_wire_mut(0).drive_packet(0, 0x20, &[1]);
        chip.run_until(12);
        let t = chip.trace();
        let at = |ev: fn(&ChipEvent) -> bool| {
            t.first(|e| ev(&e.event))
                .map(|e| (e.cycle, e.phase))
                .expect("event must occur")
        };
        // Cycle 0: start bit detected.
        assert_eq!(
            at(|e| matches!(e, ChipEvent::StartBitDetected)),
            (0, Phase::Zero)
        );
        // Cycle 2 phase 0: header released; phase 1: routed.
        assert_eq!(
            at(|e| matches!(e, ChipEvent::HeaderReleased)),
            (2, Phase::Zero)
        );
        assert_eq!(
            at(|e| matches!(e, ChipEvent::Routed { .. })),
            (2, Phase::One)
        );
        // Cycle 3 phase 1: arbitration latched, length latched.
        assert_eq!(
            at(|e| matches!(e, ChipEvent::Granted { .. })),
            (3, Phase::One)
        );
        assert_eq!(
            at(|e| matches!(e, ChipEvent::LengthLatched)),
            (3, Phase::One)
        );
        // Cycle 4 phase 0: first data byte written AND start bit sent.
        assert_eq!(
            at(|e| matches!(e, ChipEvent::ByteWritten { .. })),
            (4, Phase::Zero)
        );
        assert_eq!(
            at(|e| matches!(e, ChipEvent::StartBitSent)),
            (4, Phase::Zero)
        );
        // Cycle 5 phase 0: header byte on the downstream link.
        assert_eq!(at(|e| matches!(e, ChipEvent::HeaderSent)), (5, Phase::Zero));
        // Cycle 6 phase 0: length byte on the downstream link.
        assert_eq!(at(|e| matches!(e, ChipEvent::LengthSent)), (6, Phase::Zero));
    }

    #[test]
    fn max_length_packet_cut_through() {
        let mut chip = chip();
        let data: Vec<u8> = (0..32).collect();
        chip.input_wire_mut(3).drive_packet(0, 0x13, &data);
        chip.run_to_quiescence(100);
        assert_eq!(chip.output_log(1).packets(), vec![(4, 0x14, data)]);
        chip.check_invariants();
    }

    #[test]
    fn blocked_output_buffers_packet_then_forwards() {
        let mut chip = chip();
        chip.set_downstream_ready(2, false);
        chip.input_wire_mut(0).drive_packet(0, 0x20, &[5, 6]);
        chip.run_until(20);
        // Nothing sent; packet parked in the buffer.
        assert!(chip.output_log(2).events().is_empty());
        assert_eq!(chip.buffer(0).queue_packets(2), 1);
        // Downstream recovers.
        chip.set_downstream_ready(2, true);
        chip.run_to_quiescence(60);
        let packets = chip.output_log(2).packets();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].1, 0x21);
        assert_eq!(packets[0].2, vec![5, 6]);
        chip.check_invariants();
    }

    #[test]
    fn two_inputs_same_output_serialise() {
        let mut chip = chip();
        chip.input_wire_mut(0).drive_packet(0, 0x20, &[1]);
        chip.input_wire_mut(1).drive_packet(0, 0x21, &[2]);
        chip.run_to_quiescence(60);
        let packets = chip.output_log(2).packets();
        assert_eq!(packets.len(), 2);
        // One cut through at cycle 4; the loser follows after EOP.
        assert_eq!(packets[0].0, 4);
        assert!(packets[1].0 > packets[0].0 + 3);
        let mut data: Vec<u8> = packets.iter().map(|p| p.2[0]).collect();
        data.sort_unstable();
        assert_eq!(data, vec![1, 2]);
        chip.check_invariants();
    }

    #[test]
    fn two_inputs_different_outputs_flow_in_parallel() {
        let mut chip = chip();
        chip.input_wire_mut(0).drive_packet(0, 0x20, &[1, 1]);
        chip.input_wire_mut(1).drive_packet(0, 0x31, &[2, 2]);
        chip.run_to_quiescence(60);
        // Both cut through at cycle 4: no interference.
        assert_eq!(chip.output_log(2).start_bit_cycles(), vec![4]);
        assert_eq!(chip.output_log(3).start_bit_cycles(), vec![4]);
    }

    #[test]
    fn all_five_ports_active_simultaneously() {
        // Port i sends to output (i+1) mod 5: five concurrent cut-throughs.
        let mut chip = chip();
        for input in 0..COMCOBB_PORTS {
            let output = (input + 1) % COMCOBB_PORTS;
            let header = (output as u8) << 4 | input as u8;
            chip.input_wire_mut(input)
                .drive_packet(0, header, &[input as u8; 4]);
        }
        chip.run_to_quiescence(60);
        for input in 0..COMCOBB_PORTS {
            let output = (input + 1) % COMCOBB_PORTS;
            let packets = chip.output_log(output).packets();
            assert_eq!(packets.len(), 1, "output {output}");
            assert_eq!(packets[0].0, 4, "all ports cut through at cycle 4");
            assert_eq!(packets[0].2, vec![input as u8; 4]);
        }
        chip.check_invariants();
    }

    #[test]
    fn back_to_back_packets_on_one_link() {
        let mut chip = chip();
        let next = chip.input_wire_mut(0).drive_packet(0, 0x20, &[1, 2, 3]);
        chip.input_wire_mut(0).drive_packet(next, 0x30, &[4]);
        chip.run_to_quiescence(80);
        assert_eq!(chip.output_log(2).packets()[0].2, vec![1, 2, 3]);
        assert_eq!(chip.output_log(3).packets()[0].2, vec![4]);
        chip.check_invariants();
    }

    #[test]
    fn packet_to_processor_interface() {
        let mut chip = chip();
        let header = (PROCESSOR_PORT as u8) << 4; // 0x40 | input 0
        chip.input_wire_mut(0).drive_packet(0, header, &[42]);
        chip.run_to_quiescence(40);
        let delivered = chip.output_log(PROCESSOR_PORT).packets();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].2, vec![42]);
    }

    #[test]
    fn unrouted_header_drops_packet_cleanly() {
        let mut chip = chip();
        chip.input_wire_mut(0).drive_packet(0, 0xFF, &[1, 2]);
        // A good packet right behind it must still get through.
        chip.input_wire_mut(0).drive_packet(6, 0x20, &[3]);
        chip.run_to_quiescence(60);
        assert!(chip
            .trace()
            .first(|e| matches!(e.event, ChipEvent::PacketDropped))
            .is_some());
        let delivered = chip.output_log(2).packets();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].2, vec![3]);
        chip.check_invariants();
    }

    #[test]
    fn route_turning_back_is_rejected_at_programming_time() {
        let mut chip = chip();
        let err = chip
            .program_route(
                1,
                0x00,
                RouteEntry {
                    output: 1,
                    new_header: 0,
                },
            )
            .unwrap_err();
        assert_eq!(err, MicroarchError::RouteTurnsBack { port: 1 });
    }

    #[test]
    fn ready_line_tracks_free_slots() {
        let mut chip = chip();
        assert!(chip.ready(0));
        chip.set_downstream_ready(2, false);
        // Fill the buffer with three 4-slot packets (12 slots).
        let mut at = 0;
        for _ in 0..3 {
            at = chip.input_wire_mut(0).drive_packet(at, 0x20, &[0; 32]);
        }
        chip.run_until(at + 6);
        assert_eq!(chip.buffer(0).free_slots(), 0);
        assert!(!chip.ready(0));
        chip.set_downstream_ready(2, true);
        chip.run_to_quiescence(300);
        assert!(chip.ready(0));
        chip.check_invariants();
    }

    #[test]
    fn start_symbols_alternate_correctly_on_output_wire() {
        let mut chip = chip();
        chip.input_wire_mut(0).drive_packet(0, 0x20, &[1]);
        chip.run_to_quiescence(40);
        let events = chip.output_log(2).events();
        assert_eq!(events[0].1, LinkSymbol::StartBit);
        assert!(matches!(events[1].1, LinkSymbol::Byte(_)));
    }
}
