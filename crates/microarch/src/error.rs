//! Error types of the micro-architecture model.

use std::error::Error;
use std::fmt;

/// Failures surfaced by the chip model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MicroarchError {
    /// The buffer's free list is empty (flow control should have prevented
    /// the upstream node from transmitting).
    BufferFull,
    /// A packet is already being received on this port — links are
    /// synchronous and carry one packet at a time.
    ReceiverBusy,
    /// The routing table has no entry for a header byte.
    NoRoute {
        /// The header byte that failed to match.
        header: u8,
    },
    /// A route points a packet back out of the port it arrived on, which
    /// the ComCoBB forbids ("no packet is routed immediately back to the
    /// node from which it just came").
    RouteTurnsBack {
        /// The offending port index.
        port: usize,
    },
}

impl fmt::Display for MicroarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MicroarchError::BufferFull => write!(f, "buffer free list is empty"),
            MicroarchError::ReceiverBusy => write!(f, "a packet is already being received"),
            MicroarchError::NoRoute { header } => {
                write!(f, "no virtual-circuit entry for header {header:#04x}")
            }
            MicroarchError::RouteTurnsBack { port } => {
                write!(f, "route sends packet back out of port {port}")
            }
        }
    }
}

impl Error for MicroarchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        assert!(MicroarchError::NoRoute { header: 0xAB }
            .to_string()
            .contains("0xab"));
        assert!(MicroarchError::RouteTurnsBack { port: 2 }
            .to_string()
            .contains('2'));
    }
}
