//! Cycle-accurate behavioural model of the ComCoBB communication
//! coprocessor (paper §3).
//!
//! The UCLA ComCoBB ("Communication Coprocessor Building-Block") chip is
//! the original home of the DAMQ buffer: four network ports plus a
//! processor interface joined by a 5×5 crossbar, with an 8-byte-slot
//! linked-list buffer, a virtual-circuit router and three cooperating FSMs
//! per port, clocked at 20 MHz in two phases.
//!
//! This crate models that micro-architecture at clock-cycle granularity:
//!
//! * [`LinkedSlotBuffer`] — the slotted storage with pointer registers,
//!   head/tail registers, free list, length and new-header registers;
//! * [`RoutingTable`] — the per-port virtual-circuit table;
//! * [`Chip`] — ports, receiver/transmitter FSMs, central arbiter and
//!   two-phase clock;
//! * [`Trace`] — cycle/phase event log used to reproduce the paper's
//!   **Table 1**, virtual cut-through with a four-cycle turn-around.
//!
//! # Examples
//!
//! ```
//! use damq_microarch::{Chip, ChipConfig, RouteEntry};
//!
//! let mut chip = Chip::new(ChipConfig::comcobb());
//! chip.program_route(0, 0x10, RouteEntry { output: 1, new_header: 0x11 })?;
//! chip.input_wire_mut(0).drive_packet(0, 0x10, &[0xDE, 0xAD]);
//! chip.run_to_quiescence(50);
//!
//! // The start bit left 4 cycles after it arrived: virtual cut-through.
//! assert_eq!(chip.output_log(1).start_bit_cycles(), vec![4]);
//! # Ok::<(), damq_microarch::MicroarchError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arbiter;
mod chip;
mod error;
mod link;
mod ports;
mod router;
mod slotbuf;
mod trace;

pub use chip::{Chip, ChipConfig, COMCOBB_PORTS, PROCESSOR_PORT};
pub use error::MicroarchError;
pub use link::{InputWire, LinkSymbol, OutputLog};
pub use router::{RouteEntry, RoutingTable};
pub use slotbuf::{LinkedSlotBuffer, ReadOutcome, WriteOutcome, DEFAULT_SLOTS, SLOT_BYTES};
pub use trace::{ChipEvent, Phase, Trace, TraceEvent};

mod message;
mod system;

pub use message::{segment_message, MessageReassembler, MAX_MESSAGE_BYTES, MAX_PACKET_DATA};
pub use system::{NodeIndex, System};
