//! Inter-chip links: 8-bit-wide wires with start-bit signalling.
//!
//! A ComCoBB link is eight data wires plus framing: a packet is preceded by
//! a *start bit*, then carries the header byte, the length byte, and one
//! data byte per 20 MHz clock cycle (paper §3.2). [`InputWire`] schedules
//! the symbols an upstream node drives; [`OutputLog`] records what the chip
//! drives downstream.

use std::collections::BTreeMap;

/// One clock cycle's worth of link state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSymbol {
    /// The synchronisation start bit preceding a packet.
    StartBit,
    /// A byte of header, length or data.
    Byte(u8),
}

/// A stimulus wire: what the upstream node drives in each cycle.
///
/// # Examples
///
/// ```
/// use damq_microarch::{InputWire, LinkSymbol};
///
/// let mut wire = InputWire::new();
/// wire.drive(3, LinkSymbol::StartBit);
/// assert_eq!(wire.symbol_at(3), Some(LinkSymbol::StartBit));
/// assert_eq!(wire.symbol_at(4), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InputWire {
    schedule: BTreeMap<u64, LinkSymbol>,
    /// Fault-injection outage windows `[from, until)`: symbols driven in a
    /// window are lost on the wire.
    outages: Vec<(u64, u64)>,
}

impl InputWire {
    /// An idle wire.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drives `symbol` during `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the cycle is already driven (two packets colliding on one
    /// wire is a test-bench bug).
    pub fn drive(&mut self, cycle: u64, symbol: LinkSymbol) {
        let clash = self.schedule.insert(cycle, symbol);
        assert!(clash.is_none(), "wire driven twice in cycle {cycle}");
    }

    /// Schedules a complete packet starting at `cycle`: start bit, header,
    /// length (= data byte count), then the data bytes.
    ///
    /// Returns the first idle cycle after the packet.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or longer than 255 bytes, or on a
    /// scheduling collision.
    pub fn drive_packet(&mut self, cycle: u64, header: u8, data: &[u8]) -> u64 {
        assert!(!data.is_empty(), "packets carry at least one data byte");
        assert!(data.len() <= 255, "length must fit the length byte");
        self.drive(cycle, LinkSymbol::StartBit);
        self.drive(cycle + 1, LinkSymbol::Byte(header));
        self.drive(cycle + 2, LinkSymbol::Byte(data.len() as u8));
        for (i, &b) in data.iter().enumerate() {
            self.drive(cycle + 3 + i as u64, LinkSymbol::Byte(b));
        }
        cycle + 3 + data.len() as u64
    }

    /// Injects a link outage: symbols driven in `[from, until)` never reach
    /// the receiver, modelling a flapping or severed wire. Windows may
    /// overlap; the wire is down when any window covers the cycle.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (`until <= from`).
    pub fn fail_between(&mut self, from: u64, until: u64) {
        assert!(until > from, "outage window must cover at least one cycle");
        self.outages.push((from, until));
    }

    /// Whether an injected outage covers `cycle`.
    pub fn is_down(&self, cycle: u64) -> bool {
        self.outages
            .iter()
            .any(|&(from, until)| (from..until).contains(&cycle))
    }

    /// What the wire carries during `cycle` (`None` = idle, or the symbol
    /// was swallowed by an injected outage).
    pub fn symbol_at(&self, cycle: u64) -> Option<LinkSymbol> {
        if self.is_down(cycle) {
            return None;
        }
        self.schedule.get(&cycle).copied()
    }

    /// The last driven cycle, if any.
    pub fn last_driven_cycle(&self) -> Option<u64> {
        self.schedule.keys().next_back().copied()
    }
}

/// Record of everything a chip output port drove, cycle by cycle.
#[derive(Debug, Clone, Default)]
pub struct OutputLog {
    events: Vec<(u64, LinkSymbol)>,
}

impl OutputLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `symbol` driven during `cycle`.
    pub fn record(&mut self, cycle: u64, symbol: LinkSymbol) {
        if let Some(&(last, _)) = self.events.last() {
            debug_assert!(last < cycle, "log must be recorded in cycle order");
        }
        self.events.push((cycle, symbol));
    }

    /// All recorded (cycle, symbol) pairs in cycle order.
    pub fn events(&self) -> &[(u64, LinkSymbol)] {
        &self.events
    }

    /// The symbol driven during `cycle`, if any (used to forward a chip's
    /// output onto another chip's input wire).
    pub fn at_cycle(&self, cycle: u64) -> Option<LinkSymbol> {
        // Events are recorded in cycle order; the queried cycle is almost
        // always the most recent, so scan from the back.
        self.events
            .iter()
            .rev()
            .take_while(|&&(c, _)| c >= cycle)
            .find(|&&(c, _)| c == cycle)
            .map(|&(_, s)| s)
    }

    /// Cycles at which a start bit was driven (one per packet).
    pub fn start_bit_cycles(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter(|(_, s)| *s == LinkSymbol::StartBit)
            .map(|&(c, _)| c)
            .collect()
    }

    /// Reassembles the **complete** packets driven on this wire as
    /// `(start_cycle, header, data)` triples. A packet still in flight at
    /// the end of the log (e.g. when polling a running chip) is omitted.
    ///
    /// # Panics
    ///
    /// Panics if the log is malformed mid-stream (a symbol at an
    /// unexpected cycle, or a byte where a start bit belongs) — that is a
    /// transmitter bug, not an in-flight packet.
    pub fn packets(&self) -> Vec<(u64, u8, Vec<u8>)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.events.len() {
            let (start_cycle, sym) = self.events[i];
            assert_eq!(
                sym,
                LinkSymbol::StartBit,
                "packet must begin with start bit"
            );
            let header = match self.events.get(i + 1) {
                Some(&(c, LinkSymbol::Byte(h))) if c == start_cycle + 1 => h,
                None => break, // header still in flight
                other => panic!("expected header after start bit, found {other:?}"),
            };
            let length = match self.events.get(i + 2) {
                Some(&(c, LinkSymbol::Byte(l))) if c == start_cycle + 2 => l as usize,
                None => break, // length still in flight
                other => panic!("expected length byte, found {other:?}"),
            };
            let mut data = Vec::with_capacity(length);
            let mut complete = true;
            for k in 0..length {
                match self.events.get(i + 3 + k) {
                    Some(&(c, LinkSymbol::Byte(b))) if c == start_cycle + 3 + k as u64 => {
                        data.push(b);
                    }
                    None => {
                        complete = false; // data still in flight
                        break;
                    }
                    other => panic!("expected data byte {k}, found {other:?}"),
                }
            }
            if !complete {
                break;
            }
            out.push((start_cycle, header, data));
            i += 3 + length;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_packet_lays_out_the_frame() {
        let mut w = InputWire::new();
        let end = w.drive_packet(10, 0x42, &[7, 8]);
        assert_eq!(end, 15);
        assert_eq!(w.symbol_at(10), Some(LinkSymbol::StartBit));
        assert_eq!(w.symbol_at(11), Some(LinkSymbol::Byte(0x42)));
        assert_eq!(w.symbol_at(12), Some(LinkSymbol::Byte(2)));
        assert_eq!(w.symbol_at(13), Some(LinkSymbol::Byte(7)));
        assert_eq!(w.symbol_at(14), Some(LinkSymbol::Byte(8)));
        assert_eq!(w.symbol_at(15), None);
    }

    #[test]
    #[should_panic(expected = "driven twice")]
    fn collisions_panic() {
        let mut w = InputWire::new();
        w.drive(5, LinkSymbol::StartBit);
        w.drive(5, LinkSymbol::Byte(1));
    }

    #[test]
    fn outage_swallows_symbols_inside_the_window_only() {
        let mut w = InputWire::new();
        w.drive_packet(10, 0x42, &[7, 8]);
        w.fail_between(11, 13);
        assert_eq!(w.symbol_at(10), Some(LinkSymbol::StartBit));
        assert!(w.is_down(11));
        assert_eq!(w.symbol_at(11), None, "header lost in the outage");
        assert_eq!(w.symbol_at(12), None, "length lost in the outage");
        assert!(!w.is_down(13));
        assert_eq!(w.symbol_at(13), Some(LinkSymbol::Byte(7)));
        assert_eq!(w.symbol_at(14), Some(LinkSymbol::Byte(8)));
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn empty_outage_window_is_rejected() {
        let mut w = InputWire::new();
        w.fail_between(5, 5);
    }

    #[test]
    fn output_log_reassembles_packets() {
        let mut log = OutputLog::new();
        log.record(4, LinkSymbol::StartBit);
        log.record(5, LinkSymbol::Byte(0xAA));
        log.record(6, LinkSymbol::Byte(1));
        log.record(7, LinkSymbol::Byte(0x99));
        log.record(20, LinkSymbol::StartBit);
        log.record(21, LinkSymbol::Byte(0xBB));
        log.record(22, LinkSymbol::Byte(2));
        log.record(23, LinkSymbol::Byte(1));
        log.record(24, LinkSymbol::Byte(2));
        let packets = log.packets();
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0], (4, 0xAA, vec![0x99]));
        assert_eq!(packets[1], (20, 0xBB, vec![1, 2]));
        assert_eq!(log.start_bit_cycles(), vec![4, 20]);
    }
}
