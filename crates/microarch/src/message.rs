//! Message segmentation and reassembly over ComCoBB packets.
//!
//! The ComCoBB system carries *messages* made of multiple packets: "The
//! packets in the ComCoBB system are of variable length, from one to
//! thirty two bytes long, and messages can be made up of multiple packets.
//! Only the last packet of a message can be less than thirty two bytes
//! long" (paper §3).
//!
//! Packet boundaries alone cannot delimit a message whose length is an
//! exact multiple of 32, so this layer prepends a two-byte little-endian
//! message length to the payload before segmenting — a host-side framing
//! convention, invisible to the switch hardware.

/// Largest payload of a single packet, in bytes (paper §3).
pub const MAX_PACKET_DATA: usize = 32;

/// Largest message the two-byte length prefix can describe.
pub const MAX_MESSAGE_BYTES: usize = u16::MAX as usize;

/// Splits a message into packet payloads: a two-byte length prefix
/// followed by the data, cut into 32-byte packets where only the last may
/// be shorter (the paper's rule).
///
/// # Panics
///
/// Panics if `message` is empty or longer than [`u16::MAX`] bytes.
///
/// # Examples
///
/// ```
/// use damq_microarch::segment_message;
///
/// let packets = segment_message(&[7; 40]);
/// assert_eq!(packets.len(), 2);           // 42 framed bytes -> 32 + 10
/// assert_eq!(packets[0].len(), 32);
/// assert_eq!(packets[1].len(), 10);
/// ```
pub fn segment_message(message: &[u8]) -> Vec<Vec<u8>> {
    assert!(!message.is_empty(), "messages carry at least one byte");
    assert!(
        message.len() <= MAX_MESSAGE_BYTES,
        "message exceeds the 16-bit length prefix"
    );
    let mut framed = Vec::with_capacity(message.len() + 2);
    framed.extend_from_slice(&(message.len() as u16).to_le_bytes());
    framed.extend_from_slice(message);
    framed.chunks(MAX_PACKET_DATA).map(<[u8]>::to_vec).collect()
}

/// Reassembles messages from an in-order packet stream (one virtual
/// circuit).
///
/// Feed every received packet payload to [`MessageReassembler::push`];
/// completed messages come back out.
///
/// # Examples
///
/// ```
/// use damq_microarch::{segment_message, MessageReassembler};
///
/// let mut rx = MessageReassembler::new();
/// let mut got = Vec::new();
/// for packet in segment_message(b"hello, multicomputer world!") {
///     got.extend(rx.push(&packet));
/// }
/// assert_eq!(got, vec![b"hello, multicomputer world!".to_vec()]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MessageReassembler {
    buffer: Vec<u8>,
}

impl MessageReassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one packet payload; returns any messages it completed.
    ///
    /// A single packet can complete at most one message under the paper's
    /// segmentation rule (only the final packet is short), but the return
    /// type is a `Vec` so callers can drain in a loop uniformly.
    pub fn push(&mut self, packet_data: &[u8]) -> Vec<Vec<u8>> {
        self.buffer.extend_from_slice(packet_data);
        let mut out = Vec::new();
        while self.buffer.len() >= 2 {
            let need = u16::from_le_bytes([self.buffer[0], self.buffer[1]]) as usize;
            if self.buffer.len() < 2 + need {
                break;
            }
            let message = self.buffer[2..2 + need].to_vec();
            self.buffer.drain(..2 + need);
            out.push(message);
        }
        out
    }

    /// Bytes of the partially-received message currently buffered.
    pub fn pending_bytes(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_message_is_one_packet() {
        let packets = segment_message(b"hi");
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].len(), 4); // 2-byte prefix + 2 data
    }

    #[test]
    fn only_last_packet_is_short() {
        let msg = vec![9u8; 100]; // 102 framed -> 32+32+32+6
        let packets = segment_message(&msg);
        assert_eq!(packets.len(), 4);
        for p in &packets[..3] {
            assert_eq!(p.len(), MAX_PACKET_DATA);
        }
        assert_eq!(packets[3].len(), 6);
    }

    #[test]
    fn multiple_of_32_round_trips() {
        // 62 bytes + 2-byte prefix = exactly 2 full packets: the case that
        // packet boundaries alone could not delimit.
        let msg = vec![5u8; 62];
        let packets = segment_message(&msg);
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[1].len(), MAX_PACKET_DATA);
        let mut rx = MessageReassembler::new();
        let mut got = Vec::new();
        for p in packets {
            got.extend(rx.push(&p));
        }
        assert_eq!(got, vec![msg]);
        assert_eq!(rx.pending_bytes(), 0);
    }

    #[test]
    fn back_to_back_messages_on_one_circuit() {
        let a = vec![1u8; 40];
        let b = vec![2u8; 3];
        let mut rx = MessageReassembler::new();
        let mut got = Vec::new();
        for p in segment_message(&a).into_iter().chain(segment_message(&b)) {
            got.extend(rx.push(&p));
        }
        assert_eq!(got, vec![a, b]);
    }

    #[test]
    fn partial_message_stays_pending() {
        let msg = vec![3u8; 50];
        let packets = segment_message(&msg);
        let mut rx = MessageReassembler::new();
        assert!(rx.push(&packets[0]).is_empty());
        assert!(rx.pending_bytes() > 0);
        assert_eq!(rx.push(&packets[1]), vec![msg]);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn empty_message_panics() {
        let _ = segment_message(&[]);
    }
}
