//! Input-port (receiver) and output-port (transmitter) finite state
//! machines.
//!
//! Each input port owns a receiver FSM ("buffer manager" + "router" of
//! paper §3.2.3): it watches the link for a start bit, funnels bytes
//! through the one-cycle synchronizer, routes the header in half a cycle,
//! and streams data bytes into the linked-slot buffer.
//!
//! Each output port owns a transmitter FSM ("transmission manager"): once
//! the central arbiter connects it to a buffer, it drives the start bit and
//! then pulls one byte per cycle through the crossbar — one cycle ahead of
//! the link, modelling the output latch of Table 1.

use crate::link::{InputWire, LinkSymbol, OutputLog};
use crate::router::RoutingTable;
use crate::slotbuf::LinkedSlotBuffer;
use crate::trace::{ChipEvent, Phase, Trace};

/// Receiver state (one per input port).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RxState {
    /// Watching for a start bit.
    Idle,
    /// Start bit seen; the header byte is crossing the synchronizer.
    Arming,
    /// Header released this cycle's phase 0; routed at phase 1.
    HeaderHeld { header: u8 },
    /// Routed; waiting for the length byte to emerge from the synchronizer.
    AwaitLength,
    /// Length released this cycle's phase 0; latched at phase 1.
    LengthHeld { length: u8 },
    /// Streaming data bytes into the buffer; `left` counts what remains.
    Receiving { left: u8 },
    /// Discarding the rest of a packet that could not be stored or routed.
    Dropping {
        /// Data bytes still to swallow (`None` until the length byte
        /// passes).
        left: Option<u8>,
    },
}

/// The receiver FSM of one input port.
#[derive(Debug)]
pub(crate) struct Receiver {
    port: usize,
    state: RxState,
}

impl Receiver {
    pub(crate) fn new(port: usize) -> Self {
        Receiver {
            port,
            state: RxState::Idle,
        }
    }

    /// Phase 0: consume the synchronizer output (the wire symbol of the
    /// previous cycle) and detect start bits (which bypass the
    /// synchronizer).
    pub(crate) fn phase0(
        &mut self,
        cycle: u64,
        wire: &InputWire,
        buffer: &mut LinkedSlotBuffer,
        trace: &mut Trace,
    ) {
        // The synchronizer releases last cycle's wire symbol at phase 0.
        let released = cycle.checked_sub(1).and_then(|prev| wire.symbol_at(prev));
        match (self.state, released) {
            (RxState::Arming, Some(LinkSymbol::Byte(header))) => {
                trace.record(cycle, Phase::Zero, self.port, ChipEvent::HeaderReleased);
                self.state = RxState::HeaderHeld { header };
            }
            (RxState::AwaitLength, Some(LinkSymbol::Byte(length))) => {
                self.state = RxState::LengthHeld { length };
            }
            (RxState::Receiving { left }, Some(LinkSymbol::Byte(byte))) => {
                match buffer.write_data_byte(byte) {
                    Ok(outcome) => {
                        if outcome.allocated_slot {
                            trace.record(
                                cycle,
                                Phase::Zero,
                                self.port,
                                ChipEvent::SlotAllocated { slot: outcome.slot },
                            );
                        }
                        trace.record(
                            cycle,
                            Phase::Zero,
                            self.port,
                            ChipEvent::ByteWritten {
                                slot: outcome.slot,
                                offset: outcome.offset,
                            },
                        );
                        if outcome.end_of_packet {
                            debug_assert_eq!(left, 1, "FSM and write counter disagree");
                            trace.record(
                                cycle,
                                Phase::Zero,
                                self.port,
                                ChipEvent::EndOfPacketReceived,
                            );
                            self.state = RxState::Idle;
                        } else {
                            self.state = RxState::Receiving { left: left - 1 };
                        }
                    }
                    Err(_) => {
                        trace.record(cycle, Phase::Zero, self.port, ChipEvent::PacketDropped);
                        // The buffer aborted the reception; swallow the
                        // remaining bytes off the wire.
                        self.state = if left <= 1 {
                            RxState::Idle
                        } else {
                            RxState::Dropping {
                                left: Some(left - 1),
                            }
                        };
                    }
                }
            }
            (RxState::Dropping { left: None }, Some(LinkSymbol::Byte(length))) => {
                // This is the (dropped) packet's length byte: it tells us
                // how many data bytes to swallow.
                self.state = if length == 0 {
                    RxState::Idle
                } else {
                    RxState::Dropping { left: Some(length) }
                };
            }
            (RxState::Dropping { left: Some(n) }, Some(LinkSymbol::Byte(_))) => {
                self.state = if n <= 1 {
                    RxState::Idle
                } else {
                    RxState::Dropping { left: Some(n - 1) }
                };
            }
            _ => {}
        }
        // Start bits bypass the synchronizer: detect on the current cycle.
        if self.state == RxState::Idle && wire.symbol_at(cycle) == Some(LinkSymbol::StartBit) {
            trace.record(cycle, Phase::Zero, self.port, ChipEvent::StartBitDetected);
            self.state = RxState::Arming;
        }
    }

    /// Phase 1: routing (header cycle) and length latching (length cycle).
    pub(crate) fn phase1(
        &mut self,
        cycle: u64,
        table: &RoutingTable,
        buffer: &mut LinkedSlotBuffer,
        trace: &mut Trace,
    ) {
        match self.state {
            RxState::HeaderHeld { header } => {
                let entry = match table.lookup(header) {
                    Ok(entry) if entry.output != self.port => entry,
                    _ => {
                        // No circuit, or the route turns straight back:
                        // the ComCoBB never routes a packet back out of the
                        // port pair it arrived on.
                        trace.record(cycle, Phase::One, self.port, ChipEvent::PacketDropped);
                        self.state = RxState::Dropping { left: None };
                        return;
                    }
                };
                match buffer.begin_packet(entry.output, entry.new_header) {
                    Ok(slot) => {
                        trace.record(
                            cycle,
                            Phase::One,
                            self.port,
                            ChipEvent::SlotAllocated { slot },
                        );
                        trace.record(
                            cycle,
                            Phase::One,
                            self.port,
                            ChipEvent::Routed {
                                output: entry.output,
                                new_header: entry.new_header,
                            },
                        );
                        self.state = RxState::AwaitLength;
                    }
                    Err(_) => {
                        trace.record(cycle, Phase::One, self.port, ChipEvent::PacketDropped);
                        self.state = RxState::Dropping { left: None };
                    }
                }
            }
            RxState::LengthHeld { length } => {
                buffer.set_length(length);
                trace.record(cycle, Phase::One, self.port, ChipEvent::LengthLatched);
                self.state = RxState::Receiving { left: length };
            }
            _ => {}
        }
    }

    /// Whether the port is mid-packet (for tests).
    pub(crate) fn is_idle(&self) -> bool {
        self.state == RxState::Idle
    }
}

/// What kind of symbol sits in the transmitter's output latch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxSymbolKind {
    Start,
    Header,
    Length,
    Data { last: bool },
}

/// What the transmitter pulls next through the crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxProgress {
    PullHeader,
    PullLength,
    PullData,
    Drained,
}

#[derive(Debug)]
struct TxActive {
    input: usize,
    header: u8,
    latch: Option<(LinkSymbol, TxSymbolKind)>,
    progress: TxProgress,
}

/// The transmitter FSM of one output port.
#[derive(Debug)]
pub(crate) struct Transmitter {
    port: usize,
    active: Option<TxActive>,
}

impl Transmitter {
    pub(crate) fn new(port: usize) -> Self {
        Transmitter { port, active: None }
    }

    /// Whether the output port is free for the arbiter to (re)connect.
    pub(crate) fn is_idle(&self) -> bool {
        self.active.is_none()
    }

    /// Connects this output to `input`'s queue (called by the arbiter at
    /// phase 1). `header` is the new-header register of the queue's head
    /// packet, read at connection time.
    pub(crate) fn connect(&mut self, input: usize, header: u8) {
        debug_assert!(self.active.is_none(), "output port already connected");
        self.active = Some(TxActive {
            input,
            header,
            latch: Some((LinkSymbol::StartBit, TxSymbolKind::Start)),
            progress: TxProgress::PullHeader,
        });
    }

    /// Phase 0: drive the latched symbol onto the link, then pull the next
    /// symbol through the crossbar into the latch. `buffers` are the
    /// chip's input buffers; the transmitter reads from the one it is
    /// connected to.
    ///
    /// Returns the input port to release when the packet completes.
    pub(crate) fn phase0(
        &mut self,
        cycle: u64,
        buffers: &mut [LinkedSlotBuffer],
        log: &mut OutputLog,
        trace: &mut Trace,
    ) -> Option<usize> {
        let active = self.active.as_mut()?;
        if let Some((symbol, kind)) = active.latch.take() {
            log.record(cycle, symbol);
            let event = match kind {
                TxSymbolKind::Start => ChipEvent::StartBitSent,
                TxSymbolKind::Header => ChipEvent::HeaderSent,
                TxSymbolKind::Length => ChipEvent::LengthSent,
                TxSymbolKind::Data { .. } => ChipEvent::DataByteSent,
            };
            trace.record(cycle, Phase::Zero, self.port, event);
            if matches!(kind, TxSymbolKind::Data { last: true }) {
                trace.record(cycle, Phase::Zero, self.port, ChipEvent::EndOfPacketSent);
                let input = active.input;
                self.active = None;
                return Some(input);
            }
        }
        let active = self.active.as_mut().expect("still connected");
        let buffer = &mut buffers[active.input];
        match active.progress {
            TxProgress::PullHeader => {
                active.latch = Some((LinkSymbol::Byte(active.header), TxSymbolKind::Header));
                active.progress = TxProgress::PullLength;
            }
            TxProgress::PullLength => {
                let length = buffer.read_length(self.port);
                active.latch = Some((LinkSymbol::Byte(length), TxSymbolKind::Length));
                active.progress = TxProgress::PullData;
            }
            TxProgress::PullData => {
                let outcome = buffer.read_data_byte(self.port);
                if let Some(slot) = outcome.freed_slot {
                    trace.record(cycle, Phase::Zero, self.port, ChipEvent::SlotFreed { slot });
                }
                active.latch = Some((
                    LinkSymbol::Byte(outcome.byte),
                    TxSymbolKind::Data {
                        last: outcome.end_of_packet,
                    },
                ));
                if outcome.end_of_packet {
                    active.progress = TxProgress::Drained;
                }
            }
            TxProgress::Drained => unreachable!("latch drained before progress"),
        }
        None
    }
}
