//! The per-port router and its virtual-circuit table.
//!
//! The ComCoBB routes with a form of virtual circuits (paper §3.2): the
//! header byte indexes a local table that yields the output port and the
//! *new* header byte to send downstream. Routing one packet takes half a
//! clock cycle (cycle 2, phase 1 of Table 1).

use crate::error::MicroarchError;

/// One virtual-circuit table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Output port the circuit leaves through.
    pub output: usize,
    /// Header byte to use on the next hop.
    pub new_header: u8,
}

/// The routing table of one input port: 256 virtual-circuit entries indexed
/// by header byte.
///
/// # Examples
///
/// ```
/// use damq_microarch::{RouteEntry, RoutingTable};
///
/// let mut table = RoutingTable::new(5);
/// table.set(0x10, RouteEntry { output: 2, new_header: 0x11 })?;
/// assert_eq!(table.lookup(0x10)?.output, 2);
/// # Ok::<(), damq_microarch::MicroarchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable {
    outputs: usize,
    entries: Vec<Option<RouteEntry>>,
}

impl RoutingTable {
    /// Creates an empty table for a chip with `outputs` output ports.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is zero.
    pub fn new(outputs: usize) -> Self {
        assert!(outputs > 0, "chip needs output ports");
        RoutingTable {
            outputs,
            entries: vec![None; 256],
        }
    }

    /// Programs the circuit for `header`.
    ///
    /// # Errors
    ///
    /// Returns [`MicroarchError::NoRoute`] if `entry.output` is out of
    /// range (reported with the offending header).
    pub fn set(&mut self, header: u8, entry: RouteEntry) -> Result<(), MicroarchError> {
        if entry.output >= self.outputs {
            return Err(MicroarchError::NoRoute { header });
        }
        self.entries[usize::from(header)] = Some(entry);
        Ok(())
    }

    /// Looks a header byte up.
    ///
    /// # Errors
    ///
    /// Returns [`MicroarchError::NoRoute`] for an unprogrammed header.
    pub fn lookup(&self, header: u8) -> Result<RouteEntry, MicroarchError> {
        self.entries[usize::from(header)].ok_or(MicroarchError::NoRoute { header })
    }

    /// Number of programmed circuits.
    pub fn programmed(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_lookup() {
        let mut t = RoutingTable::new(5);
        t.set(
            7,
            RouteEntry {
                output: 4,
                new_header: 8,
            },
        )
        .unwrap();
        assert_eq!(
            t.lookup(7).unwrap(),
            RouteEntry {
                output: 4,
                new_header: 8
            }
        );
        assert_eq!(t.programmed(), 1);
    }

    #[test]
    fn unprogrammed_header_errors() {
        let t = RoutingTable::new(5);
        assert_eq!(t.lookup(9), Err(MicroarchError::NoRoute { header: 9 }));
    }

    #[test]
    fn out_of_range_output_rejected() {
        let mut t = RoutingTable::new(2);
        assert!(t
            .set(
                0,
                RouteEntry {
                    output: 2,
                    new_header: 0
                }
            )
            .is_err());
    }
}
