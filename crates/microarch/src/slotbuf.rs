//! The byte-level DAMQ buffer of the ComCoBB chip (paper §3.1, §3.2.3).
//!
//! Storage is an array of 8-byte slots (dual-ported static cells addressed
//! by shift registers in the real chip). Each slot has three associated
//! registers:
//!
//! * a **pointer register** — the number of the next slot in its linked
//!   list,
//! * a **length register** — valid in a packet's first slot,
//! * a **new-header register** — valid in a packet's first slot.
//!
//! Lists are delimited by head/tail registers: one *free list* plus one
//! list per output port. Reception writes one byte per cycle through a
//! write cursor; transmission reads one byte per cycle through a read
//! cursor, and the two may chase each other through the same packet
//! (virtual cut-through). A validity counter per slot asserts the
//! hardware's guarantee that a read never overtakes the write.

use std::fmt;

use damq_core::AuditError;

use crate::error::MicroarchError;

/// Bytes per slot (the chip's choice; see the slot-size trade-off
/// discussion in §3.2.3).
pub const SLOT_BYTES: usize = 8;

/// Slot count of the ComCoBB buffer ("we currently can support 96 static
/// cells on a single bus line (12 slots)").
pub const DEFAULT_SLOTS: usize = 12;

type SlotIdx = u8;

#[derive(Debug, Clone, Copy, Default)]
struct ListRegs {
    head: Option<SlotIdx>,
    tail: Option<SlotIdx>,
    slots: usize,
    packets: usize,
}

/// Progress of the single in-flight reception.
#[derive(Debug, Clone, Copy)]
struct WriteCursor {
    queue: usize,
    first_slot: SlotIdx,
    slot: SlotIdx,
    offset: usize,
    remaining: Option<usize>,
}

/// Progress of one output's in-flight transmission.
#[derive(Debug, Clone, Copy)]
struct ReadCursor {
    slot: SlotIdx,
    offset: usize,
    remaining: Option<usize>,
}

/// Outcome of writing one received byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Slot the byte landed in.
    pub slot: u8,
    /// Byte offset within the slot.
    pub offset: u8,
    /// A fresh slot was taken from the free list for this byte.
    pub allocated_slot: bool,
    /// This byte completed the packet (the write counter reached zero).
    pub end_of_packet: bool,
}

/// Outcome of reading one byte for transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The byte read.
    pub byte: u8,
    /// A slot was drained and returned to the free list.
    pub freed_slot: Option<u8>,
    /// This byte completed the packet (the read counter reached zero).
    pub end_of_packet: bool,
}

/// The linked-list slot buffer attached to one input port.
#[derive(Debug)]
pub struct LinkedSlotBuffer {
    data: Vec<[u8; SLOT_BYTES]>,
    /// Pointer registers.
    next: Vec<Option<SlotIdx>>,
    /// New-header registers (valid in first slots).
    header_reg: Vec<u8>,
    /// Length registers (valid in first slots).
    length_reg: Vec<u8>,
    /// Bytes written so far into each slot — models the guarantee that the
    /// transmitter never reads a cell before the receiver wrote it.
    bytes_valid: Vec<usize>,
    /// Marks first slots of packets.
    is_head: Vec<bool>,
    free: ListRegs,
    queues: Vec<ListRegs>,
    write: Option<WriteCursor>,
    reads: Vec<Option<ReadCursor>>,
    /// Slots fenced off by fault injection: on no list, never reallocated.
    dead: Vec<bool>,
    dead_count: usize,
}

impl LinkedSlotBuffer {
    /// Creates a buffer of `slots` slots with `outputs` destination queues.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is 0 or above 255, or `outputs` is 0.
    pub fn new(slots: usize, outputs: usize) -> Self {
        assert!(slots > 0 && slots <= 255, "slot count out of range");
        assert!(outputs > 0, "need at least one output queue");
        let mut buf = LinkedSlotBuffer {
            data: vec![[0; SLOT_BYTES]; slots],
            next: vec![None; slots],
            header_reg: vec![0; slots],
            length_reg: vec![0; slots],
            bytes_valid: vec![0; slots],
            is_head: vec![false; slots],
            free: ListRegs::default(),
            queues: vec![ListRegs::default(); outputs],
            write: None,
            reads: vec![None; outputs],
            dead: vec![false; slots],
            dead_count: 0,
        };
        for s in 0..slots {
            buf.push_free(s as SlotIdx);
        }
        buf
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Slots currently on the free list.
    pub fn free_slots(&self) -> usize {
        self.free.slots
    }

    /// Slots fenced off by [`LinkedSlotBuffer::kill_slot`].
    pub fn dead_slots(&self) -> usize {
        self.dead_count
    }

    /// Models a manufacturing or wear-out fault in one static cell: takes a
    /// slot off the free list and fences it so it is never reallocated. The
    /// buffer keeps operating with one slot less.
    ///
    /// Returns `false` (refusing the kill) when the free list is empty — at
    /// byte level an occupied cell cannot be retired without corrupting an
    /// in-flight packet, so the fault is dropped rather than deferred.
    pub fn kill_slot(&mut self) -> bool {
        let Some(slot) = self.pop_free() else {
            return false;
        };
        self.dead[slot as usize] = true;
        self.dead_count += 1;
        true
    }

    /// Packets queued (complete or arriving) for `output`.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range.
    pub fn queue_packets(&self, output: usize) -> usize {
        self.queues[output].packets
    }

    /// Whether a transmission is in progress for `output`.
    pub fn transmitting(&self, output: usize) -> bool {
        self.reads[output].is_some()
    }

    /// Whether a reception is in progress.
    pub fn receiving(&self) -> bool {
        self.write.is_some()
    }

    // -------------------------------------------------------------- write

    /// Starts receiving a packet routed to `output`, claiming the first
    /// slot from the free list and storing the router's `new_header` in the
    /// slot's header register (paper cycle 2 phase 1).
    ///
    /// # Errors
    ///
    /// [`MicroarchError::BufferFull`] if the free list is empty, or
    /// [`MicroarchError::ReceiverBusy`] if a reception is already under
    /// way.
    pub fn begin_packet(&mut self, output: usize, new_header: u8) -> Result<u8, MicroarchError> {
        assert!(output < self.queues.len(), "output queue out of range");
        if self.write.is_some() {
            return Err(MicroarchError::ReceiverBusy);
        }
        let Some(slot) = self.pop_free() else {
            return Err(MicroarchError::BufferFull);
        };
        self.header_reg[slot as usize] = new_header;
        self.is_head[slot as usize] = true;
        self.bytes_valid[slot as usize] = 0;
        self.append_to_queue(output, slot);
        self.queues[output].packets += 1;
        self.write = Some(WriteCursor {
            queue: output,
            first_slot: slot,
            slot,
            offset: 0,
            remaining: None,
        });
        Ok(slot)
    }

    /// Latches the packet's length (in data bytes) into the first slot's
    /// length register and the write counter (paper cycle 3 phase 1).
    ///
    /// # Panics
    ///
    /// Panics if no reception is in progress, the length was already set,
    /// or `length` is zero.
    pub fn set_length(&mut self, length: u8) {
        let cursor = self.write.as_mut().expect("no reception in progress");
        assert!(cursor.remaining.is_none(), "length already latched");
        assert!(length > 0, "packets carry at least one data byte");
        self.length_reg[cursor.first_slot as usize] = length;
        cursor.remaining = Some(usize::from(length));
    }

    /// Stores one received data byte (paper cycle ≥ 4 phase 0), allocating
    /// the next slot from the free list when the current one fills.
    ///
    /// # Errors
    ///
    /// [`MicroarchError::BufferFull`] if a new slot is needed and the free
    /// list is empty. The packet is then truncated; callers drop the rest.
    ///
    /// # Panics
    ///
    /// Panics if no reception is in progress or the length was not latched.
    pub fn write_data_byte(&mut self, byte: u8) -> Result<WriteOutcome, MicroarchError> {
        let mut cursor = self.write.expect("no reception in progress");
        let remaining = cursor
            .remaining
            .expect("length must be latched before data");
        debug_assert!(remaining > 0, "write past end of packet");
        let mut allocated = false;
        if cursor.offset == SLOT_BYTES {
            let Some(slot) = self.pop_free() else {
                self.abort_reception();
                return Err(MicroarchError::BufferFull);
            };
            self.is_head[slot as usize] = false;
            self.bytes_valid[slot as usize] = 0;
            self.append_to_queue(cursor.queue, slot);
            cursor.slot = slot;
            cursor.offset = 0;
            allocated = true;
        }
        self.data[cursor.slot as usize][cursor.offset] = byte;
        self.bytes_valid[cursor.slot as usize] = cursor.offset + 1;
        let outcome = WriteOutcome {
            slot: cursor.slot,
            offset: cursor.offset as u8,
            allocated_slot: allocated,
            end_of_packet: remaining == 1,
        };
        cursor.offset += 1;
        cursor.remaining = Some(remaining - 1);
        if remaining == 1 {
            self.write = None; // EOP: reception complete
        } else {
            self.write = Some(cursor);
        }
        Ok(outcome)
    }

    /// Abandons an in-progress reception, unlinking its slots from the
    /// queue and returning them to the free list (used when the buffer
    /// overflows mid-packet, which conservative flow control prevents).
    fn abort_reception(&mut self) {
        let cursor = self.write.take().expect("no reception to abort");
        // The packet's slots are the tail of its queue, starting at
        // first_slot. Walk from the queue head to find the predecessor.
        let regs = &mut self.queues[cursor.queue];
        regs.packets -= 1;
        let mut removed = Vec::new();
        let mut s = Some(cursor.first_slot);
        while let Some(slot) = s {
            removed.push(slot);
            s = self.next[slot as usize];
        }
        if regs.head == Some(cursor.first_slot) {
            regs.head = None;
            regs.tail = None;
        } else {
            let mut prev = regs.head.expect("queue holding the packet is nonempty");
            while self.next[prev as usize] != Some(cursor.first_slot) {
                prev = self.next[prev as usize].expect("first_slot must be linked");
            }
            self.next[prev as usize] = None;
            regs.tail = Some(prev);
        }
        regs.slots -= removed.len();
        for slot in removed {
            self.is_head[slot as usize] = false;
            self.push_free(slot);
        }
    }

    // --------------------------------------------------------------- read

    /// Connects a transmitter to `output`'s queue, returning the new header
    /// byte from the first slot's header register (paper: the head register
    /// already points at the right slot, enabling 4-cycle cut-through).
    ///
    /// Returns `None` if the queue is empty or already being transmitted.
    pub fn begin_transmit(&mut self, output: usize) -> Option<u8> {
        assert!(output < self.queues.len(), "output queue out of range");
        if self.reads[output].is_some() || self.queues[output].packets == 0 {
            return None;
        }
        let slot = self.queues[output].head.expect("packets imply a head slot");
        debug_assert!(
            self.is_head[slot as usize],
            "queue head must start a packet"
        );
        self.reads[output] = Some(ReadCursor {
            slot,
            offset: 0,
            remaining: None,
        });
        Some(self.header_reg[slot as usize])
    }

    /// Reads the packet's length register into the read counter (paper
    /// cycle 5 phase 0).
    ///
    /// # Panics
    ///
    /// Panics if no transmission is in progress on `output`, the length was
    /// already read, or the receiver has not latched the length yet (the
    /// cut-through schedule guarantees it has).
    pub fn read_length(&mut self, output: usize) -> u8 {
        let cursor = self.reads[output].as_mut().expect("no transmission");
        assert!(cursor.remaining.is_none(), "length already read");
        if let Some(w) = &self.write {
            assert!(
                w.first_slot != cursor.slot || w.remaining.is_some(),
                "read counter loaded before the length register was written"
            );
        }
        let length = self.length_reg[cursor.slot as usize];
        cursor.remaining = Some(usize::from(length));
        length
    }

    /// Reads one byte for transmission (paper: one byte per cycle across
    /// the crossbar), returning drained slots to the free list and
    /// advancing the queue's head register.
    ///
    /// # Panics
    ///
    /// Panics if no transmission is in progress, the length was not read,
    /// or the read would overtake the receiver (a cut-through schedule
    /// violation).
    pub fn read_data_byte(&mut self, output: usize) -> ReadOutcome {
        let mut cursor = self.reads[output].expect("no transmission in progress");
        let remaining = cursor.remaining.expect("read counter not loaded");
        debug_assert!(remaining > 0, "read past end of packet");
        if cursor.offset == SLOT_BYTES {
            // Current slot exhausted: follow the pointer register. The
            // drained slot was already freed when its last byte was read.
            cursor.slot = self.queues_head_after(output, cursor.slot);
            cursor.offset = 0;
        }
        assert!(
            cursor.offset < self.bytes_valid[cursor.slot as usize],
            "transmitter overtook receiver in slot {} (offset {})",
            cursor.slot,
            cursor.offset
        );
        let byte = self.data[cursor.slot as usize][cursor.offset];
        cursor.offset += 1;
        cursor.remaining = Some(remaining - 1);
        let slot_done = cursor.offset == SLOT_BYTES || remaining == 1;
        let mut freed = None;
        if slot_done {
            // Return the drained slot to the free list and advance the
            // queue head past it.
            let slot = cursor.slot;
            debug_assert_eq!(self.queues[output].head, Some(slot));
            self.unlink_queue_head(output);
            self.is_head[slot as usize] = false;
            self.bytes_valid[slot as usize] = 0;
            self.push_free(slot);
            freed = Some(slot);
            if remaining > 1 {
                cursor.slot = self.queues[output]
                    .head
                    .expect("packet continues into a further slot");
                cursor.offset = 0;
            }
        }
        let end = remaining == 1;
        if end {
            self.queues[output].packets -= 1;
            self.reads[output] = None;
        } else {
            self.reads[output] = Some(cursor);
        }
        ReadOutcome {
            byte,
            freed_slot: freed,
            end_of_packet: end,
        }
    }

    fn queues_head_after(&self, output: usize, _slot: SlotIdx) -> SlotIdx {
        self.queues[output]
            .head
            .expect("packet continues into a further slot")
    }

    // ------------------------------------------------------ list plumbing

    fn append_to_queue(&mut self, queue: usize, slot: SlotIdx) {
        self.next[slot as usize] = None;
        let regs = &mut self.queues[queue];
        match regs.tail {
            Some(tail) => self.next[tail as usize] = Some(slot),
            None => regs.head = Some(slot),
        }
        regs.tail = Some(slot);
        regs.slots += 1;
    }

    fn unlink_queue_head(&mut self, queue: usize) {
        let regs = &mut self.queues[queue];
        let head = regs.head.expect("unlink from empty queue");
        regs.head = self.next[head as usize];
        if regs.head.is_none() {
            regs.tail = None;
        }
        self.next[head as usize] = None;
        regs.slots -= 1;
    }

    fn push_free(&mut self, slot: SlotIdx) {
        self.next[slot as usize] = None;
        match self.free.tail {
            Some(tail) => self.next[tail as usize] = Some(slot),
            None => self.free.head = Some(slot),
        }
        self.free.tail = Some(slot);
        self.free.slots += 1;
    }

    fn pop_free(&mut self) -> Option<SlotIdx> {
        let head = self.free.head?;
        self.free.head = self.next[head as usize];
        if self.free.head.is_none() {
            self.free.tail = None;
        }
        self.next[head as usize] = None;
        self.free.slots -= 1;
        Some(head)
    }

    /// Verifies the linked-list invariants without panicking: every slot on
    /// exactly one list, no cycles, counters consistent with the links.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`AuditError`].
    pub fn audit(&self) -> Result<(), AuditError> {
        let mut seen = vec![false; self.capacity()];
        let mut walk = |regs: &ListRegs, label: &str| -> Result<(), AuditError> {
            let mut count = 0;
            let mut cur = regs.head;
            let mut last = None;
            while let Some(s) = cur {
                if seen[s as usize] {
                    return Err(AuditError::new(
                        "list-partition",
                        format!("{label}: slot {s} on two lists or in a cycle"),
                    ));
                }
                seen[s as usize] = true;
                count += 1;
                last = Some(s);
                cur = self.next[s as usize];
            }
            if count != regs.slots {
                return Err(AuditError::new(
                    "register-sync",
                    format!(
                        "{label}: slot counter says {} but the links hold {count}",
                        regs.slots
                    ),
                ));
            }
            if last != regs.tail {
                return Err(AuditError::new(
                    "register-sync",
                    format!("{label}: tail register disagrees with the last linked slot"),
                ));
            }
            Ok(())
        };
        walk(&self.free, "free list")?;
        for (q, regs) in self.queues.iter().enumerate() {
            walk(regs, &format!("queue {q}"))?;
        }
        for (slot, &on_list) in seen.iter().enumerate() {
            if on_list && self.dead[slot] {
                return Err(AuditError::new(
                    "fault-ledger",
                    format!("dead slot {slot} is still linked on a list"),
                ));
            }
            if !on_list && !self.dead[slot] {
                return Err(AuditError::new(
                    "list-partition",
                    format!("slot {slot} is on no list (leaked slot)"),
                ));
            }
        }
        let marked = self.dead.iter().filter(|&&d| d).count();
        if marked != self.dead_count {
            return Err(AuditError::new(
                "fault-ledger",
                format!(
                    "dead counter says {} but {marked} slots are marked dead",
                    self.dead_count
                ),
            ));
        }
        Ok(())
    }

    /// Assert-style wrapper over [`LinkedSlotBuffer::audit`].
    ///
    /// # Panics
    ///
    /// Panics with a description on violation.
    pub fn check_invariants(&self) {
        if let Err(e) = self.audit() {
            panic!("slot buffer {e}");
        }
    }
}

impl fmt::Display for LinkedSlotBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} slots ({} free), queues: {:?}",
            self.capacity(),
            self.free_slots(),
            self.queues.iter().map(|q| q.packets).collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_reception(buf: &mut LinkedSlotBuffer, output: usize, header: u8, data: &[u8]) {
        buf.begin_packet(output, header).unwrap();
        buf.set_length(data.len() as u8);
        for (i, &b) in data.iter().enumerate() {
            let out = buf.write_data_byte(b).unwrap();
            assert_eq!(out.end_of_packet, i == data.len() - 1);
        }
    }

    fn full_transmission(buf: &mut LinkedSlotBuffer, output: usize) -> (u8, u8, Vec<u8>) {
        let header = buf.begin_transmit(output).expect("queue nonempty");
        let length = buf.read_length(output);
        let mut data = Vec::new();
        loop {
            let out = buf.read_data_byte(output);
            data.push(out.byte);
            if out.end_of_packet {
                break;
            }
        }
        (header, length, data)
    }

    #[test]
    fn byte_level_round_trip_single_slot() {
        let mut buf = LinkedSlotBuffer::new(4, 5);
        full_reception(&mut buf, 2, 0xAB, &[1, 2, 3]);
        assert_eq!(buf.queue_packets(2), 1);
        assert_eq!(buf.free_slots(), 3);
        let (h, l, d) = full_transmission(&mut buf, 2);
        assert_eq!(h, 0xAB);
        assert_eq!(l, 3);
        assert_eq!(d, vec![1, 2, 3]);
        assert_eq!(buf.free_slots(), 4);
        buf.check_invariants();
    }

    #[test]
    fn multi_slot_packet_spans_linked_slots() {
        let mut buf = LinkedSlotBuffer::new(6, 5);
        let data: Vec<u8> = (0..20).collect(); // 3 slots
        full_reception(&mut buf, 1, 0x11, &data);
        assert_eq!(buf.free_slots(), 3);
        let (_, l, d) = full_transmission(&mut buf, 1);
        assert_eq!(l, 20);
        assert_eq!(d, data);
        assert_eq!(buf.free_slots(), 6);
        buf.check_invariants();
    }

    #[test]
    fn max_packet_uses_four_slots() {
        let mut buf = LinkedSlotBuffer::new(DEFAULT_SLOTS, 5);
        let data: Vec<u8> = (0..32).collect();
        full_reception(&mut buf, 0, 0x01, &data);
        assert_eq!(buf.free_slots(), DEFAULT_SLOTS - 4);
        let (_, _, d) = full_transmission(&mut buf, 0);
        assert_eq!(d, data);
    }

    #[test]
    fn cut_through_read_chases_write() {
        // Interleave: write a byte, then (2 bytes behind) read one.
        let mut buf = LinkedSlotBuffer::new(6, 5);
        let data: Vec<u8> = (100..120).collect();
        buf.begin_packet(3, 0x77).unwrap();
        let header = buf.begin_transmit(3).expect("cut-through connect");
        assert_eq!(header, 0x77);
        buf.set_length(data.len() as u8);
        let length = buf.read_length(3);
        assert_eq!(length, 20);
        let mut received = Vec::new();
        let mut written = 0;
        for cycle in 0.. {
            if written < data.len() {
                buf.write_data_byte(data[written]).unwrap();
                written += 1;
            }
            if cycle >= 2 {
                let out = buf.read_data_byte(3);
                received.push(out.byte);
                if out.end_of_packet {
                    break;
                }
            }
            buf.check_invariants();
        }
        assert_eq!(received, data);
        assert_eq!(buf.free_slots(), 6);
    }

    #[test]
    #[should_panic(expected = "overtook")]
    fn read_overtaking_write_is_caught() {
        let mut buf = LinkedSlotBuffer::new(4, 5);
        buf.begin_packet(0, 0x01).unwrap();
        buf.set_length(4);
        buf.write_data_byte(9).unwrap();
        buf.begin_transmit(0).unwrap();
        buf.read_length(0);
        buf.read_data_byte(0); // ok: byte 0 was written
        buf.read_data_byte(0); // panic: byte 1 not yet written
    }

    #[test]
    fn begin_packet_fails_when_free_list_empty() {
        let mut buf = LinkedSlotBuffer::new(1, 2);
        full_reception(&mut buf, 0, 1, &[5]);
        assert_eq!(
            buf.begin_packet(1, 2).unwrap_err(),
            MicroarchError::BufferFull
        );
    }

    #[test]
    fn mid_packet_overflow_aborts_and_reclaims() {
        let mut buf = LinkedSlotBuffer::new(2, 2);
        // First packet takes one slot.
        full_reception(&mut buf, 0, 1, &[1]);
        // Second packet needs 2 slots but only 1 is free.
        buf.begin_packet(1, 2).unwrap();
        buf.set_length(12);
        for i in 0..8 {
            buf.write_data_byte(i).unwrap();
        }
        let err = buf.write_data_byte(8).unwrap_err();
        assert_eq!(err, MicroarchError::BufferFull);
        // The aborted packet's slot returns to the free list; the earlier
        // packet is intact.
        assert_eq!(buf.free_slots(), 1);
        assert_eq!(buf.queue_packets(1), 0);
        assert_eq!(buf.queue_packets(0), 1);
        buf.check_invariants();
        let (_, _, d) = full_transmission(&mut buf, 0);
        assert_eq!(d, vec![1]);
    }

    #[test]
    fn queues_are_independent_and_fifo() {
        let mut buf = LinkedSlotBuffer::new(8, 5);
        full_reception(&mut buf, 1, 0xA0, &[1]);
        full_reception(&mut buf, 2, 0xB0, &[2]);
        full_reception(&mut buf, 1, 0xA1, &[3]);
        assert_eq!(buf.queue_packets(1), 2);
        assert_eq!(buf.queue_packets(2), 1);
        let (h, _, d) = full_transmission(&mut buf, 1);
        assert_eq!((h, d), (0xA0, vec![1]));
        let (h, _, d) = full_transmission(&mut buf, 2);
        assert_eq!((h, d), (0xB0, vec![2]));
        let (h, _, d) = full_transmission(&mut buf, 1);
        assert_eq!((h, d), (0xA1, vec![3]));
        buf.check_invariants();
    }

    #[test]
    fn receiver_busy_while_packet_in_flight() {
        let mut buf = LinkedSlotBuffer::new(4, 2);
        buf.begin_packet(0, 1).unwrap();
        assert_eq!(
            buf.begin_packet(1, 2).unwrap_err(),
            MicroarchError::ReceiverBusy
        );
    }

    #[test]
    fn transmit_from_empty_queue_is_none() {
        let mut buf = LinkedSlotBuffer::new(4, 2);
        assert_eq!(buf.begin_transmit(0), None);
    }

    #[test]
    fn killed_slots_shrink_the_free_list_but_the_buffer_keeps_working() {
        let mut buf = LinkedSlotBuffer::new(4, 2);
        assert!(buf.kill_slot());
        assert!(buf.kill_slot());
        assert_eq!(buf.dead_slots(), 2);
        assert_eq!(buf.free_slots(), 2);
        buf.check_invariants();
        // Two live slots still carry a 2-slot packet end to end.
        let data: Vec<u8> = (0..12).collect();
        full_reception(&mut buf, 0, 0x31, &data);
        assert_eq!(buf.free_slots(), 0);
        let (_, _, d) = full_transmission(&mut buf, 0);
        assert_eq!(d, data);
        assert_eq!(buf.free_slots(), 2);
        buf.check_invariants();
    }

    #[test]
    fn kill_is_refused_when_no_slot_is_free() {
        let mut buf = LinkedSlotBuffer::new(1, 1);
        full_reception(&mut buf, 0, 1, &[9]);
        assert!(!buf.kill_slot(), "occupied cells cannot be retired");
        assert_eq!(buf.dead_slots(), 0);
        buf.check_invariants();
    }

    #[test]
    fn fully_killed_buffer_rejects_receptions_without_panicking() {
        let mut buf = LinkedSlotBuffer::new(2, 2);
        assert!(buf.kill_slot());
        assert!(buf.kill_slot());
        assert!(!buf.kill_slot(), "nothing left to kill");
        assert_eq!(
            buf.begin_packet(0, 1).unwrap_err(),
            MicroarchError::BufferFull
        );
        buf.check_invariants();
    }
}
