//! Multi-chip ComCoBB systems: the multicomputer the chip was built for.
//!
//! The ComCoBB is a communication coprocessor for point-to-point
//! multicomputers (paper §1): each node couples a chip's processor
//! interface to an application processor, and the four network ports to
//! neighbouring nodes over synchronized byte-wide links. [`System`] wires
//! several [`Chip`]s together and advances them on a common clock:
//!
//! * symbols driven by an output port appear on the connected input wire
//!   one cycle later (single-cycle synchronized transmission, paper §3.2.3);
//! * each link's flow-control line gates the upstream arbiter: a chip only
//!   transmits into a neighbour with room for a maximum-size packet;
//! * hosts exchange *messages* ([`segment_message`]) through per-node
//!   outboxes that respect the processor port's flow control.
//!
//! [`segment_message`]: crate::segment_message

use std::collections::VecDeque;

use crate::chip::{Chip, ChipConfig, PROCESSOR_PORT};
use crate::error::MicroarchError;
use crate::message::MessageReassembler;
use crate::router::RouteEntry;

/// Identifier of a chip (node) within a [`System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIndex(usize);

impl NodeIndex {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

#[derive(Debug, Clone, Copy)]
struct Wire {
    from_chip: usize,
    from_port: usize,
    to_chip: usize,
    to_port: usize,
}

#[derive(Debug)]
struct HostPort {
    /// Messages queued for sending: (circuit header, payload).
    outbox: VecDeque<(u8, Vec<u8>)>,
    /// Remaining packet payloads of the message currently being sent.
    segments: VecDeque<Vec<u8>>,
    /// Circuit header of the message currently being sent.
    header: u8,
    /// First cycle at which the processor input wire is certainly idle
    /// *and* the previous packet has fully entered the buffer (so the
    /// flow-control check against free slots is exact).
    next_free_cycle: u64,
    /// One reassembler per virtual circuit (packets of different circuits
    /// interleave at a shared host port).
    reassemblers: std::collections::HashMap<u8, MessageReassembler>,
    packets_consumed: usize,
    received: Vec<Vec<u8>>,
}

impl HostPort {
    fn new() -> Self {
        HostPort {
            outbox: VecDeque::new(),
            segments: VecDeque::new(),
            header: 0,
            next_free_cycle: 0,
            reassemblers: std::collections::HashMap::new(),
            packets_consumed: 0,
            received: Vec::new(),
        }
    }

    fn sending(&self) -> bool {
        !self.segments.is_empty() || !self.outbox.is_empty()
    }
}

/// A clocked assembly of ComCoBB chips connected by unidirectional links.
///
/// # Examples
///
/// Two nodes exchanging a message (see `examples/` and the crate tests for
/// larger topologies):
///
/// ```
/// use damq_microarch::{ChipConfig, RouteEntry, System, PROCESSOR_PORT};
///
/// let mut sys = System::new();
/// let a = sys.add_node(ChipConfig::comcobb());
/// let b = sys.add_node(ChipConfig::comcobb());
/// sys.connect(a, 0, b, 1)?; // a's port 0 drives b's port 1
///
/// // Circuit 0x10: host A -> (A port 0) -> (B port 1) -> host B.
/// sys.chip_mut(a).program_route(PROCESSOR_PORT, 0x10,
///     RouteEntry { output: 0, new_header: 0x10 })?;
/// sys.chip_mut(b).program_route(1, 0x10,
///     RouteEntry { output: PROCESSOR_PORT, new_header: 0x10 })?;
///
/// sys.host_send(a, 0x10, b"hello".to_vec());
/// sys.run_until_idle(10_000);
/// assert_eq!(sys.host_received(b), &[b"hello".to_vec()]);
/// # Ok::<(), damq_microarch::MicroarchError>(())
/// ```
#[derive(Debug, Default)]
pub struct System {
    chips: Vec<Chip>,
    hosts: Vec<HostPort>,
    wires: Vec<Wire>,
    cycle: u64,
}

impl System {
    /// An empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node (one chip + its host port) and returns its id.
    pub fn add_node(&mut self, config: ChipConfig) -> NodeIndex {
        self.chips.push(Chip::new(config));
        self.hosts.push(HostPort::new());
        NodeIndex(self.chips.len() - 1)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.chips.len()
    }

    /// The current clock cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Read access to a node's chip.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn chip(&self, node: NodeIndex) -> &Chip {
        &self.chips[node.0]
    }

    /// Mutable access to a node's chip (for programming virtual circuits).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn chip_mut(&mut self, node: NodeIndex) -> &mut Chip {
        &mut self.chips[node.0]
    }

    /// Connects output port `from_port` of `from` to input port `to_port`
    /// of `to` (one direction; call twice for a bidirectional pair, as the
    /// ComCoBB's paired ports do).
    ///
    /// # Errors
    ///
    /// Returns [`MicroarchError::RouteTurnsBack`] if either endpoint is a
    /// processor port (hosts attach through the message API instead), and
    /// panics if a port is already wired or out of range.
    ///
    /// # Panics
    ///
    /// Panics if a node or port index is invalid or the port is in use.
    pub fn connect(
        &mut self,
        from: NodeIndex,
        from_port: usize,
        to: NodeIndex,
        to_port: usize,
    ) -> Result<(), MicroarchError> {
        if from_port == PROCESSOR_PORT || to_port == PROCESSOR_PORT {
            return Err(MicroarchError::RouteTurnsBack {
                port: PROCESSOR_PORT,
            });
        }
        assert!(from.0 < self.chips.len() && to.0 < self.chips.len());
        assert!(from_port < self.chips[from.0].config().ports());
        assert!(to_port < self.chips[to.0].config().ports());
        for w in &self.wires {
            assert!(
                !(w.from_chip == from.0 && w.from_port == from_port),
                "output {from}/{from_port} already wired"
            );
            assert!(
                !(w.to_chip == to.0 && w.to_port == to_port),
                "input {to}/{to_port} already wired"
            );
        }
        self.wires.push(Wire {
            from_chip: from.0,
            from_port,
            to_chip: to.0,
            to_port,
        });
        Ok(())
    }

    /// Convenience: programs the same virtual circuit hop on a node.
    ///
    /// # Errors
    ///
    /// Propagates routing-table errors.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn program_route(
        &mut self,
        node: NodeIndex,
        input: usize,
        header: u8,
        entry: RouteEntry,
    ) -> Result<(), MicroarchError> {
        self.chips[node.0].program_route(input, header, entry)
    }

    /// Queues a message from `node`'s host onto virtual circuit `header`.
    ///
    /// The message is segmented into packets (paper rule: only the last
    /// may be shorter than 32 bytes) and injected through the processor
    /// interface as flow control permits.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the message is empty.
    pub fn host_send(&mut self, node: NodeIndex, header: u8, message: Vec<u8>) {
        self.hosts[node.0].outbox.push_back((header, message));
    }

    /// Messages delivered to `node`'s host so far, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn host_received(&self, node: NodeIndex) -> &[Vec<u8>] {
        &self.hosts[node.0].received
    }

    /// Advances the whole system one clock cycle.
    pub fn tick(&mut self) {
        let cycle = self.cycle;

        // Flow control: each output port sees its neighbour's ready line;
        // host outboxes see the processor port's.
        for w in &self.wires {
            let ready = self.chips[w.to_chip].ready(w.to_port);
            self.chips[w.from_chip].set_downstream_ready(w.from_port, ready);
        }

        // Host injection: at most one packet in flight on the processor
        // wire at a time, each gated on the buffer having room for a whole
        // maximum-size packet (conservative flow control, paper-style).
        for (i, host) in self.hosts.iter_mut().enumerate() {
            let chip = &mut self.chips[i];
            if host.next_free_cycle > cycle {
                continue;
            }
            if host.segments.is_empty() {
                let Some((header, message)) = host.outbox.pop_front() else {
                    continue;
                };
                host.header = header;
                host.segments = crate::message::segment_message(&message).into();
            }
            if !chip.ready(PROCESSOR_PORT) {
                continue; // buffer too full; retry next cycle
            }
            let data = host.segments.pop_front().expect("segments checked");
            let wire_end =
                chip.input_wire_mut(PROCESSOR_PORT)
                    .drive_packet(cycle, host.header, &data);
            // +6: synchronizer + routing pipeline, so the packet's slots
            // are fully claimed before the next ready() check.
            host.next_free_cycle = wire_end + 6;
        }

        // Clock every chip.
        for chip in &mut self.chips {
            chip.tick();
        }

        // Propagate link symbols: what an output drove during `cycle`
        // arrives at the connected input during `cycle + 1`.
        for w in &self.wires {
            if let Some(sym) = self.chips[w.from_chip]
                .output_log(w.from_port)
                .at_cycle(cycle)
            {
                self.chips[w.to_chip]
                    .input_wire_mut(w.to_port)
                    .drive(cycle + 1, sym);
            }
        }

        // Host reception: consume newly-delivered processor packets.
        for (i, host) in self.hosts.iter_mut().enumerate() {
            let packets = self.chips[i].output_log(PROCESSOR_PORT).packets();
            for (_, header, data) in packets.iter().skip(host.packets_consumed) {
                let reassembler = host.reassemblers.entry(*header).or_default();
                host.received.extend(reassembler.push(data));
            }
            host.packets_consumed = packets.len();
        }

        self.cycle += 1;
        #[cfg(feature = "strict-audit")]
        if let Err(e) = self.audit() {
            panic!("strict-audit at cycle {}: {e}", self.cycle);
        }
    }

    /// Runs until no work remains (all outboxes empty, chips quiescent) or
    /// `max_cycle` is reached.
    ///
    /// Returns the cycle at which the system went idle.
    ///
    /// # Panics
    ///
    /// Panics if still busy at `max_cycle` — a routing dead end or
    /// flow-control deadlock.
    pub fn run_until_idle(&mut self, max_cycle: u64) -> u64 {
        loop {
            self.tick();
            let hosts_done = self
                .hosts
                .iter()
                .all(|h| !h.sending() && h.next_free_cycle + 8 < self.cycle);
            let wires_idle = self.chips.iter().all(|c| {
                (0..c.config().ports()).all(|p| {
                    c.output_log(p)
                        .events()
                        .last()
                        .is_none_or(|&(cyc, _)| cyc + 8 < self.cycle)
                })
            });
            let buffers_empty = self.chips.iter().all(|c| {
                (0..c.config().ports())
                    .all(|i| (0..c.config().ports()).all(|o| c.buffer(i).queue_packets(o) == 0))
            });
            if hosts_done && wires_idle && buffers_empty {
                return self.cycle;
            }
            assert!(
                self.cycle < max_cycle,
                "system still busy at cycle {max_cycle}"
            );
        }
    }

    /// Verifies every chip's buffer invariants without panicking.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn audit(&self) -> Result<(), damq_core::AuditError> {
        for chip in &self.chips {
            chip.audit()?;
        }
        Ok(())
    }

    /// Checks every chip's buffer invariants.
    ///
    /// # Panics
    ///
    /// Panics with a description on violation.
    pub fn check_invariants(&self) {
        for chip in &self.chips {
            chip.check_invariants();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a bidirectional chain of `n` nodes: node i's port 0 -> node
    /// i+1's port 1, and node i+1's port 1... ports: use port 0 eastward,
    /// port 1 westward, with the paired wiring of the ComCoBB.
    fn chain(n: usize) -> (System, Vec<NodeIndex>) {
        let mut sys = System::new();
        let nodes: Vec<NodeIndex> = (0..n)
            .map(|_| sys.add_node(ChipConfig::comcobb()))
            .collect();
        for i in 0..n - 1 {
            sys.connect(nodes[i], 0, nodes[i + 1], 1).unwrap();
            sys.connect(nodes[i + 1], 1, nodes[i], 0).unwrap();
        }
        (sys, nodes)
    }

    /// Programs circuit `header` from node `src` eastward to node `dst`'s
    /// host, along the chain built by `chain()`.
    fn program_eastward(sys: &mut System, nodes: &[NodeIndex], src: usize, dst: usize, header: u8) {
        // From the source host into the network.
        let first_output = 0; // eastward
        sys.program_route(
            nodes[src],
            PROCESSOR_PORT,
            header,
            RouteEntry {
                output: first_output,
                new_header: header,
            },
        )
        .unwrap();
        // Intermediate hops arrive on port 1 (westward input) and continue
        // east, except the destination which delivers to its host.
        for (hop, &node) in nodes.iter().enumerate().take(dst + 1).skip(src + 1) {
            let output = if hop == dst { PROCESSOR_PORT } else { 0 };
            sys.program_route(
                node,
                1,
                header,
                RouteEntry {
                    output,
                    new_header: header,
                },
            )
            .unwrap();
        }
    }

    #[test]
    fn two_nodes_exchange_short_messages() {
        let (mut sys, nodes) = chain(2);
        program_eastward(&mut sys, &nodes, 0, 1, 0x11);
        sys.host_send(nodes[0], 0x11, b"ping".to_vec());
        sys.run_until_idle(5_000);
        assert_eq!(sys.host_received(nodes[1]), &[b"ping".to_vec()]);
        sys.check_invariants();
    }

    #[test]
    fn multi_packet_message_crosses_three_hops() {
        let (mut sys, nodes) = chain(4);
        program_eastward(&mut sys, &nodes, 0, 3, 0x22);
        let message: Vec<u8> = (0..=255).collect(); // 256 B -> 9 packets
        sys.host_send(nodes[0], 0x22, message.clone());
        sys.run_until_idle(20_000);
        assert_eq!(sys.host_received(nodes[3]), &[message]);
        sys.check_invariants();
    }

    #[test]
    fn several_messages_in_order_on_one_circuit() {
        let (mut sys, nodes) = chain(3);
        program_eastward(&mut sys, &nodes, 0, 2, 0x33);
        let messages: Vec<Vec<u8>> = (1..=5u8).map(|k| vec![k; 20 * k as usize]).collect();
        for m in &messages {
            sys.host_send(nodes[0], 0x33, m.clone());
        }
        sys.run_until_idle(60_000);
        assert_eq!(sys.host_received(nodes[2]), &messages[..]);
    }

    #[test]
    fn crossing_traffic_both_directions() {
        let (mut sys, nodes) = chain(2);
        program_eastward(&mut sys, &nodes, 0, 1, 0x11);
        // Westward circuit: host B -> B port 1 -> A port 0 -> host A.
        sys.program_route(
            nodes[1],
            PROCESSOR_PORT,
            0x44,
            RouteEntry {
                output: 1,
                new_header: 0x44,
            },
        )
        .unwrap();
        sys.program_route(
            nodes[0],
            0,
            0x44,
            RouteEntry {
                output: PROCESSOR_PORT,
                new_header: 0x44,
            },
        )
        .unwrap();
        sys.host_send(nodes[0], 0x11, b"eastbound".to_vec());
        sys.host_send(nodes[1], 0x44, b"westbound".to_vec());
        sys.run_until_idle(10_000);
        assert_eq!(sys.host_received(nodes[1]), &[b"eastbound".to_vec()]);
        assert_eq!(sys.host_received(nodes[0]), &[b"westbound".to_vec()]);
    }

    #[test]
    fn two_circuits_share_a_link_fairly() {
        // Nodes 0 and 1 both send to node 3's host over the 1->2->3 links:
        // contention at node 1's eastward port.
        let (mut sys, nodes) = chain(4);
        program_eastward(&mut sys, &nodes, 0, 3, 0x55);
        // Circuit from node 1's host east to node 3.
        sys.program_route(
            nodes[1],
            PROCESSOR_PORT,
            0x66,
            RouteEntry {
                output: 0,
                new_header: 0x66,
            },
        )
        .unwrap();
        sys.program_route(
            nodes[2],
            1,
            0x66,
            RouteEntry {
                output: 0,
                new_header: 0x66,
            },
        )
        .unwrap();
        sys.program_route(
            nodes[3],
            1,
            0x66,
            RouteEntry {
                output: PROCESSOR_PORT,
                new_header: 0x66,
            },
        )
        .unwrap();
        sys.host_send(nodes[0], 0x55, vec![0xAA; 90]);
        sys.host_send(nodes[1], 0x66, vec![0xBB; 90]);
        sys.run_until_idle(60_000);
        let mut got = sys.host_received(nodes[3]).to_vec();
        got.sort();
        assert_eq!(got, vec![vec![0xAA; 90], vec![0xBB; 90]]);
        sys.check_invariants();
    }

    #[test]
    fn cannot_wire_processor_ports() {
        let mut sys = System::new();
        let a = sys.add_node(ChipConfig::comcobb());
        let b = sys.add_node(ChipConfig::comcobb());
        assert!(sys.connect(a, PROCESSOR_PORT, b, 0).is_err());
        assert!(sys.connect(a, 0, b, PROCESSOR_PORT).is_err());
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_panics() {
        let mut sys = System::new();
        let a = sys.add_node(ChipConfig::comcobb());
        let b = sys.add_node(ChipConfig::comcobb());
        sys.connect(a, 0, b, 1).unwrap();
        sys.connect(a, 0, b, 2).unwrap();
    }
}
