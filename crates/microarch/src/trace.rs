//! Cycle/phase event tracing — how the model reproduces the paper's
//! Table 1.
//!
//! [`Trace`] is an adapter over the workspace telemetry layer: it wraps a
//! [`MemorySink`] of [`TraceEvent`]s and itself implements
//! [`TelemetrySink<TraceEvent>`], so chip-level traces plug into the same
//! sink machinery the network simulator uses (see `docs/OBSERVABILITY.md`)
//! while keeping the Table-1-oriented query helpers.

use std::fmt;

use damq_telemetry::{MemorySink, TelemetrySink};

/// The two phases of the ComCoBB's 20 MHz clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Phase 0: data movement (synchronizer release, buffer read/write,
    /// link transmission).
    Zero,
    /// Phase 1: control (routing, arbitration, register latching).
    One,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Zero => write!(f, "0"),
            Phase::One => write!(f, "1"),
        }
    }
}

/// Something observable that happened inside the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChipEvent {
    /// A start bit arrived at an input port.
    StartBitDetected,
    /// The synchronizer released the header byte to the router.
    HeaderReleased,
    /// The router picked an output and generated the new header.
    Routed {
        /// The chosen output port.
        output: usize,
        /// The rewritten header byte.
        new_header: u8,
    },
    /// The length byte was latched into the slot's length register and the
    /// write counter.
    LengthLatched,
    /// A data byte was written into the buffer.
    ByteWritten {
        /// Destination slot.
        slot: u8,
        /// Offset within the slot.
        offset: u8,
    },
    /// The write counter reached zero.
    EndOfPacketReceived,
    /// The central arbiter connected an input buffer to an output port.
    Granted {
        /// The winning input port.
        input: usize,
    },
    /// The output port drove the start bit.
    StartBitSent,
    /// The output port drove the (new) header byte.
    HeaderSent,
    /// The output port drove the length byte; the read counter is loaded.
    LengthSent,
    /// The output port drove a data byte.
    DataByteSent,
    /// The read counter reached zero; the connection is released.
    EndOfPacketSent,
    /// A slot was taken from the free list.
    SlotAllocated {
        /// The slot index.
        slot: u8,
    },
    /// A drained slot returned to the free list.
    SlotFreed {
        /// The slot index.
        slot: u8,
    },
    /// A packet had to be dropped (free list empty — only possible with
    /// flow control disabled).
    PacketDropped,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock cycle (starting at 0).
    pub cycle: u64,
    /// Clock phase.
    pub phase: Phase,
    /// The port the event belongs to.
    pub port: usize,
    /// What happened.
    pub event: ChipEvent,
}

/// An append-only event log with query helpers, backed by a telemetry
/// [`MemorySink`].
///
/// Tracing is on by default; long-running simulations that do not need
/// the event log should [`Trace::set_enabled`]`(false)` to keep memory
/// flat (the log otherwise grows by a few events per byte moved).
///
/// `Trace` implements [`TelemetrySink<TraceEvent>`], so chip models can
/// be handed any other sink (counting, JSONL, …) wherever a `Trace` was
/// accepted generically.
#[derive(Debug, Clone)]
pub struct Trace {
    sink: MemorySink<TraceEvent>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            sink: MemorySink::new(),
        }
    }
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns event recording on or off (existing events are kept).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.sink.set_enabled(enabled);
    }

    /// Whether events are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        TelemetrySink::<TraceEvent>::enabled(&self.sink)
    }

    /// Appends an event (no-op while disabled).
    pub fn record(&mut self, cycle: u64, phase: Phase, port: usize, event: ChipEvent) {
        self.sink.record(TraceEvent {
            cycle,
            phase,
            port,
            event,
        });
    }

    /// All events in record order.
    pub fn events(&self) -> &[TraceEvent] {
        self.sink.events()
    }

    /// The first event matching `predicate`.
    pub fn first<F: Fn(&TraceEvent) -> bool>(&self, predicate: F) -> Option<&TraceEvent> {
        self.events().iter().find(|e| predicate(e))
    }

    /// All events on `port`.
    pub fn for_port(&self, port: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events().iter().filter(move |e| e.port == port)
    }

    /// Renders the trace as a cycle/phase table (a Table-1-style listing).
    pub fn render(&self) -> String {
        let mut out = String::from("cycle  phase  port  event\n");
        for e in self.events() {
            out.push_str(&format!(
                "{:>5}  {:>5}  {:>4}  {:?}\n",
                e.cycle, e.phase, e.port, e.event
            ));
        }
        out
    }
}

impl TelemetrySink<TraceEvent> for Trace {
    fn enabled(&self) -> bool {
        self.is_enabled()
    }

    fn record(&mut self, event: TraceEvent) {
        self.sink.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries() {
        let mut t = Trace::new();
        t.record(0, Phase::Zero, 1, ChipEvent::StartBitDetected);
        t.record(
            2,
            Phase::One,
            1,
            ChipEvent::Routed {
                output: 3,
                new_header: 9,
            },
        );
        assert_eq!(t.events().len(), 2);
        let routed = t
            .first(|e| matches!(e.event, ChipEvent::Routed { .. }))
            .unwrap();
        assert_eq!(routed.cycle, 2);
        assert_eq!(t.for_port(1).count(), 2);
        assert_eq!(t.for_port(0).count(), 0);
    }

    #[test]
    fn disabling_stops_recording() {
        let mut t = Trace::new();
        t.record(1, Phase::Zero, 0, ChipEvent::StartBitDetected);
        t.set_enabled(false);
        t.record(2, Phase::Zero, 0, ChipEvent::StartBitDetected);
        assert_eq!(t.events().len(), 1);
        assert!(!t.is_enabled());
    }

    #[test]
    fn trace_is_a_telemetry_sink() {
        // Chip code that is generic over TelemetrySink<TraceEvent> accepts
        // a Trace directly.
        fn feed<S: TelemetrySink<TraceEvent>>(sink: &mut S) {
            sink.record(TraceEvent {
                cycle: 3,
                phase: Phase::One,
                port: 2,
                event: ChipEvent::HeaderSent,
            });
        }
        let mut t = Trace::new();
        feed(&mut t);
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].port, 2);

        let mut counter = damq_telemetry::CountingSink::new();
        feed(&mut counter);
        assert_eq!(counter.count(), 1);
    }

    #[test]
    fn render_is_nonempty_and_ordered() {
        let mut t = Trace::new();
        t.record(4, Phase::Zero, 0, ChipEvent::StartBitSent);
        let s = t.render();
        assert!(s.contains("StartBitSent"));
        assert!(s.starts_with("cycle"));
    }
}
