//! Property-based tests driving random packet streams through the ComCoBB
//! chip model.

use proptest::prelude::*;

use damq_microarch::{Chip, ChipConfig, RouteEntry, COMCOBB_PORTS};

/// A randomly-generated packet to drive into the chip.
#[derive(Debug, Clone)]
struct TestPacket {
    input: usize,
    output: usize,
    data: Vec<u8>,
}

fn packets(max: usize) -> impl Strategy<Value = Vec<TestPacket>> {
    prop::collection::vec(
        (
            0..COMCOBB_PORTS,
            0..COMCOBB_PORTS,
            prop::collection::vec(any::<u8>(), 1..=32),
        )
            .prop_filter_map("no turn-back routes", |(input, output, data)| {
                (input != output).then_some(TestPacket {
                    input,
                    output,
                    data,
                })
            }),
        1..=max,
    )
}

/// Programs one circuit per (input, output) pair: header = encoding of the
/// pair, new header = same + 0x80 (so we can see the rewrite downstream).
fn programmed_chip() -> Chip {
    let mut chip = Chip::new(ChipConfig::comcobb());
    for input in 0..COMCOBB_PORTS {
        for output in 0..COMCOBB_PORTS {
            if input == output {
                continue;
            }
            let header = (input * COMCOBB_PORTS + output) as u8;
            chip.program_route(
                input,
                header,
                RouteEntry {
                    output,
                    new_header: header | 0x80,
                },
            )
            .unwrap();
        }
    }
    chip
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every packet driven in (with conservative spacing, so flow control
    /// is never violated) comes out intact on the right output port, with
    /// the rewritten header — no loss, duplication or corruption, in any
    /// interleaving.
    #[test]
    fn random_streams_are_delivered_intact(stream in packets(12)) {
        let mut chip = programmed_chip();
        // Schedule each input's packets back to back with a generous gap so
        // a buffer (12 slots) can never overflow even if its output is
        // contended by all five inputs.
        let mut next_free = [0u64; COMCOBB_PORTS];
        let mut expected: Vec<Vec<(u8, Vec<u8>)>> = vec![Vec::new(); COMCOBB_PORTS];
        for p in &stream {
            let header = (p.input * COMCOBB_PORTS + p.output) as u8;
            let start = next_free[p.input];
            let end = chip.input_wire_mut(p.input).drive_packet(start, header, &p.data);
            // Gap: worst case the packet waits for 4 others of max length.
            next_free[p.input] = end + 200;
            expected[p.output].push((header | 0x80, p.data.clone()));
        }
        chip.run_to_quiescence(stream.len() as u64 * 600 + 2_000);
        chip.check_invariants();

        for output in 0..COMCOBB_PORTS {
            let got: Vec<(u8, Vec<u8>)> = chip
                .output_log(output)
                .packets()
                .into_iter()
                .map(|(_, h, d)| (h, d))
                .collect();
            // Order on one output may interleave across inputs; compare as
            // multisets.
            let mut got_sorted = got.clone();
            let mut want_sorted = expected[output].clone();
            got_sorted.sort();
            want_sorted.sort();
            prop_assert_eq!(got_sorted, want_sorted, "output {}", output);
        }
    }

    /// Cut-through turn-around is always exactly 4 cycles into an idle
    /// output, for any single packet.
    #[test]
    fn lone_packet_always_cuts_through_in_four_cycles(
        input in 0..COMCOBB_PORTS,
        output in 0..COMCOBB_PORTS,
        data in prop::collection::vec(any::<u8>(), 1..=32),
        start in 0u64..50,
    ) {
        prop_assume!(input != output);
        let mut chip = programmed_chip();
        let header = (input * COMCOBB_PORTS + output) as u8;
        chip.input_wire_mut(input).drive_packet(start, header, &data);
        chip.run_to_quiescence(start + 200);
        let starts = chip.output_log(output).start_bit_cycles();
        prop_assert_eq!(starts, vec![start + 4]);
    }

    /// The free list is whole again after any quiescent run: no slot leaks.
    #[test]
    fn no_slot_leaks(stream in packets(8)) {
        let mut chip = programmed_chip();
        let mut next_free = [0u64; COMCOBB_PORTS];
        for p in &stream {
            let header = (p.input * COMCOBB_PORTS + p.output) as u8;
            let start = next_free[p.input];
            let end = chip.input_wire_mut(p.input).drive_packet(start, header, &p.data);
            next_free[p.input] = end + 200;
        }
        chip.run_to_quiescence(stream.len() as u64 * 600 + 2_000);
        for port in 0..COMCOBB_PORTS {
            prop_assert_eq!(chip.buffer(port).free_slots(), chip.buffer(port).capacity());
        }
    }
}

proptest! {
    /// Message framing round-trips for arbitrary payloads, including
    /// lengths that are exact multiples of the packet size.
    #[test]
    fn message_segmentation_round_trips(
        messages in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 1..200),
            1..8,
        ),
    ) {
        use damq_microarch::{segment_message, MessageReassembler};
        let mut rx = MessageReassembler::new();
        let mut got = Vec::new();
        for m in &messages {
            for packet in segment_message(m) {
                // Paper rule: only the last packet of a message is short.
                prop_assert!(packet.len() <= 32);
                got.extend(rx.push(&packet));
            }
        }
        prop_assert_eq!(got, messages);
        prop_assert_eq!(rx.pending_bytes(), 0);
    }

    /// Every non-final packet of a segmented message is exactly 32 bytes.
    #[test]
    fn only_the_last_packet_is_short(payload in prop::collection::vec(any::<u8>(), 1..400)) {
        use damq_microarch::segment_message;
        let packets = segment_message(&payload);
        for p in &packets[..packets.len() - 1] {
            prop_assert_eq!(p.len(), 32);
        }
        prop_assert!(!packets.last().unwrap().is_empty());
    }
}
