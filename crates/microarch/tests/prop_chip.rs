//! Randomized property tests driving random packet streams through the
//! ComCoBB chip model, driven by the workspace's deterministic generator
//! (formerly `proptest`; every case reproduces from the printed seed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use damq_microarch::{Chip, ChipConfig, RouteEntry, COMCOBB_PORTS};

/// A randomly-generated packet to drive into the chip.
#[derive(Debug, Clone)]
struct TestPacket {
    input: usize,
    output: usize,
    data: Vec<u8>,
}

fn random_bytes(rng: &mut StdRng, max_len: usize) -> Vec<u8> {
    let len = rng.random_range(1..=max_len);
    (0..len)
        .map(|_| rng.random_range(0..256usize) as u8)
        .collect()
}

fn packets(rng: &mut StdRng, max: usize) -> Vec<TestPacket> {
    let count = rng.random_range(1..=max);
    (0..count)
        .map(|_| loop {
            let input = rng.random_range(0..COMCOBB_PORTS);
            let output = rng.random_range(0..COMCOBB_PORTS);
            if input != output {
                // No turn-back routes.
                return TestPacket {
                    input,
                    output,
                    data: random_bytes(rng, 32),
                };
            }
        })
        .collect()
}

/// Programs one circuit per (input, output) pair: header = encoding of the
/// pair, new header = same + 0x80 (so we can see the rewrite downstream).
fn programmed_chip() -> Chip {
    let mut chip = Chip::new(ChipConfig::comcobb());
    for input in 0..COMCOBB_PORTS {
        for output in 0..COMCOBB_PORTS {
            if input == output {
                continue;
            }
            let header = (input * COMCOBB_PORTS + output) as u8;
            chip.program_route(
                input,
                header,
                RouteEntry {
                    output,
                    new_header: header | 0x80,
                },
            )
            .unwrap();
        }
    }
    chip
}

/// Every packet driven in (with conservative spacing, so flow control is
/// never violated) comes out intact on the right output port, with the
/// rewritten header — no loss, duplication or corruption, in any
/// interleaving.
#[test]
fn random_streams_are_delivered_intact() {
    for seed in 0..64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let stream = packets(&mut rng, 12);
        let mut chip = programmed_chip();
        // Schedule each input's packets back to back with a generous gap so
        // a buffer (12 slots) can never overflow even if its output is
        // contended by all five inputs.
        let mut next_free = [0u64; COMCOBB_PORTS];
        let mut expected: Vec<Vec<(u8, Vec<u8>)>> = vec![Vec::new(); COMCOBB_PORTS];
        for p in &stream {
            let header = (p.input * COMCOBB_PORTS + p.output) as u8;
            let start = next_free[p.input];
            let end = chip
                .input_wire_mut(p.input)
                .drive_packet(start, header, &p.data);
            // Gap: worst case the packet waits for 4 others of max length.
            next_free[p.input] = end + 200;
            expected[p.output].push((header | 0x80, p.data.clone()));
        }
        chip.run_to_quiescence(stream.len() as u64 * 600 + 2_000);
        chip.check_invariants();

        for (output, want) in expected.iter().enumerate().take(COMCOBB_PORTS) {
            let got: Vec<(u8, Vec<u8>)> = chip
                .output_log(output)
                .packets()
                .into_iter()
                .map(|(_, h, d)| (h, d))
                .collect();
            // Order on one output may interleave across inputs; compare as
            // multisets.
            let mut got_sorted = got.clone();
            let mut want_sorted = want.clone();
            got_sorted.sort();
            want_sorted.sort();
            assert_eq!(got_sorted, want_sorted, "output {output}, seed {seed}");
        }
    }
}

/// Cut-through turn-around is always exactly 4 cycles into an idle output,
/// for any single packet.
#[test]
fn lone_packet_always_cuts_through_in_four_cycles() {
    for seed in 0..64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let (input, output) = loop {
            let input = rng.random_range(0..COMCOBB_PORTS);
            let output = rng.random_range(0..COMCOBB_PORTS);
            if input != output {
                break (input, output);
            }
        };
        let data = random_bytes(&mut rng, 32);
        let start = rng.random_range(0..50u64);
        let mut chip = programmed_chip();
        let header = (input * COMCOBB_PORTS + output) as u8;
        chip.input_wire_mut(input)
            .drive_packet(start, header, &data);
        chip.run_to_quiescence(start + 200);
        let starts = chip.output_log(output).start_bit_cycles();
        assert_eq!(starts, vec![start + 4], "seed {seed}");
    }
}

/// The free list is whole again after any quiescent run: no slot leaks.
#[test]
fn no_slot_leaks() {
    for seed in 0..64 {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let stream = packets(&mut rng, 8);
        let mut chip = programmed_chip();
        let mut next_free = [0u64; COMCOBB_PORTS];
        for p in &stream {
            let header = (p.input * COMCOBB_PORTS + p.output) as u8;
            let start = next_free[p.input];
            let end = chip
                .input_wire_mut(p.input)
                .drive_packet(start, header, &p.data);
            next_free[p.input] = end + 200;
        }
        chip.run_to_quiescence(stream.len() as u64 * 600 + 2_000);
        for port in 0..COMCOBB_PORTS {
            assert_eq!(
                chip.buffer(port).free_slots(),
                chip.buffer(port).capacity(),
                "port {port}, seed {seed}"
            );
        }
    }
}

/// Message framing round-trips for arbitrary payloads, including lengths
/// that are exact multiples of the packet size.
#[test]
fn message_segmentation_round_trips() {
    use damq_microarch::{segment_message, MessageReassembler};
    for seed in 0..64 {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let messages: Vec<Vec<u8>> = (0..rng.random_range(1..8usize))
            .map(|_| random_bytes(&mut rng, 199))
            .collect();
        let mut rx = MessageReassembler::new();
        let mut got = Vec::new();
        for m in &messages {
            for packet in segment_message(m) {
                // Paper rule: only the last packet of a message is short.
                assert!(packet.len() <= 32, "seed {seed}");
                got.extend(rx.push(&packet));
            }
        }
        assert_eq!(got, messages, "seed {seed}");
        assert_eq!(rx.pending_bytes(), 0, "seed {seed}");
    }
}

/// Every non-final packet of a segmented message is exactly 32 bytes.
#[test]
fn only_the_last_packet_is_short() {
    use damq_microarch::segment_message;
    for seed in 0..64 {
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let payload = random_bytes(&mut rng, 399);
        let packets = segment_message(&payload);
        for p in &packets[..packets.len() - 1] {
            assert_eq!(p.len(), 32, "seed {seed}");
        }
        assert!(!packets.last().unwrap().is_empty(), "seed {seed}");
    }
}
