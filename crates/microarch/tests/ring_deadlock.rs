//! Store-and-forward deadlock on a unidirectional ring — reproduced and
//! avoided.
//!
//! When every node of a 4-ring sends a multi-packet message two hops
//! clockwise, the channel-dependency graph is the full ring cycle: each
//! node's input buffer fills with transit packets whose next link is
//! blocked by the next node's full buffer, and conservative flow control
//! (ready ⇔ room for a whole max-size packet) freezes the system. This is
//! the classic result that motivated virtual channels (Dally & Seitz); the
//! ComCoBB of the paper relies on virtual-circuit placement to avoid it.
//!
//! These tests pin down both behaviours: the cyclic configuration
//! deadlocks (no progress, buffers stuck, **no packets lost or
//! corrupted**), and the direction-split configuration drains.

use damq_microarch::{ChipConfig, RouteEntry, System, PROCESSOR_PORT};

const CW: usize = 0;
const CCW: usize = 1;

fn ring() -> (System, Vec<damq_microarch::NodeIndex>) {
    let mut sys = System::new();
    let nodes: Vec<_> = (0..4)
        .map(|_| sys.add_node(ChipConfig::comcobb()))
        .collect();
    for i in 0..4 {
        let next = (i + 1) % 4;
        sys.connect(nodes[i], CW, nodes[next], CCW).unwrap();
        sys.connect(nodes[next], CCW, nodes[i], CW).unwrap();
    }
    (sys, nodes)
}

#[test]
fn all_clockwise_circuits_deadlock_without_losing_packets() {
    let (mut sys, nodes) = ring();
    for i in 0..4 {
        let header = 0x80 + i as u8;
        let hop1 = (i + 1) % 4;
        let hop2 = (i + 2) % 4;
        sys.program_route(
            nodes[i],
            PROCESSOR_PORT,
            header,
            RouteEntry {
                output: CW,
                new_header: header,
            },
        )
        .unwrap();
        sys.program_route(
            nodes[hop1],
            CCW,
            header,
            RouteEntry {
                output: CW,
                new_header: header,
            },
        )
        .unwrap();
        sys.program_route(
            nodes[hop2],
            CCW,
            header,
            RouteEntry {
                output: PROCESSOR_PORT,
                new_header: header,
            },
        )
        .unwrap();
    }
    // 100-byte messages segment into four packets (13 slots) — more than
    // one 12-slot buffer, which is what arms the cycle.
    for (i, &node) in nodes.iter().enumerate() {
        sys.host_send(node, 0x80 + i as u8, vec![i as u8; 100]);
    }
    for _ in 0..20_000 {
        sys.tick();
    }
    // Deadlock: nothing was delivered...
    for &node in &nodes {
        assert!(sys.host_received(node).is_empty(), "unexpectedly delivered");
    }
    // ...every node's transit buffer is wedged with clockwise packets...
    for &node in &nodes {
        assert!(
            sys.chip(node).buffer(CCW).queue_packets(CW) > 0,
            "transit queue should be stuck"
        );
        assert!(
            sys.chip(node).buffer(CCW).free_slots() < 4,
            "flow control must be holding the upstream node off"
        );
    }
    // ...and it is a *clean* deadlock: linked lists intact, nothing lost.
    sys.check_invariants();
    // No further progress over another long run.
    let stuck: Vec<usize> = nodes
        .iter()
        .map(|&n| sys.chip(n).buffer(CCW).queue_packets(CW))
        .collect();
    for _ in 0..5_000 {
        sys.tick();
    }
    let still: Vec<usize> = nodes
        .iter()
        .map(|&n| sys.chip(n).buffer(CCW).queue_packets(CW))
        .collect();
    assert_eq!(stuck, still, "a deadlock does not move");
}

#[test]
fn direction_split_circuits_drain_completely() {
    let (mut sys, nodes) = ring();
    for i in 0..4 {
        let header = 0x80 + i as u8;
        let (out, inp) = if i < 2 { (CW, CCW) } else { (CCW, CW) };
        let hop1 = if i < 2 { (i + 1) % 4 } else { (i + 3) % 4 };
        let dest = (i + 2) % 4;
        sys.program_route(
            nodes[i],
            PROCESSOR_PORT,
            header,
            RouteEntry {
                output: out,
                new_header: header,
            },
        )
        .unwrap();
        sys.program_route(
            nodes[hop1],
            inp,
            header,
            RouteEntry {
                output: out,
                new_header: header,
            },
        )
        .unwrap();
        sys.program_route(
            nodes[dest],
            inp,
            header,
            RouteEntry {
                output: PROCESSOR_PORT,
                new_header: header,
            },
        )
        .unwrap();
    }
    let messages: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 100]).collect();
    for (i, &node) in nodes.iter().enumerate() {
        sys.host_send(node, 0x80 + i as u8, messages[i].clone());
    }
    sys.run_until_idle(100_000);
    for i in 0..4 {
        let dest = nodes[(i + 2) % 4];
        assert!(
            sys.host_received(dest).contains(&messages[i]),
            "message {i} must arrive intact at node {}",
            (i + 2) % 4
        );
    }
    sys.check_invariants();
}
