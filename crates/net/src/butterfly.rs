//! Butterfly (k-ary n-fly) topology: a second MIN wiring.
//!
//! The paper evaluates an Omega network, but its buffer conclusions are
//! about switches, not wiring. The butterfly is the other classic
//! delta-class MIN: same `k^n` terminals, same `n` stages of `N/k`
//! switches, same destination-digit routing, different inter-stage
//! permutations (digit exchanges instead of rotations). Having both lets
//! the harness demonstrate that the DAMQ advantage is
//! topology-independent.
//!
//! Wiring (base-`k` digits `d_{n-1}…d_0` of a line number): sources enter
//! stage 0 directly; between stage `t` and `t+1` the line permutation
//! swaps digit 0 with digit `n-1-t`. Routing at stage `t` selects the
//! output named by digit `n-1-t` of the destination (most significant
//! first), so after the final stage the line number *is* the destination.

use damq_core::{InputPort, NodeId, OutputPort};

use crate::topology::TopologyError;

/// The wiring of an `N`-terminal butterfly built from `k`×`k` switches.
///
/// # Examples
///
/// ```
/// use damq_net::ButterflyTopology;
///
/// let topo = ButterflyTopology::new(64, 4)?;
/// assert_eq!(topo.stages(), 3);
/// assert_eq!(topo.switches_per_stage(), 16);
/// # Ok::<(), damq_net::TopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ButterflyTopology {
    size: usize,
    radix: usize,
    stages: usize,
}

impl ButterflyTopology {
    /// Creates the topology for `size` terminals and `radix`×`radix`
    /// switches.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] unless `size` is a positive power of
    /// `radix` and `radix >= 2`.
    pub fn new(size: usize, radix: usize) -> Result<Self, TopologyError> {
        if radix < 2 {
            return Err(TopologyError::RadixTooSmall);
        }
        let mut stages = 0;
        let mut n = 1;
        while n < size {
            n *= radix;
            stages += 1;
        }
        if n != size || stages == 0 {
            return Err(TopologyError::SizeNotPowerOfRadix { size, radix });
        }
        Ok(ButterflyTopology {
            size,
            radix,
            stages,
        })
    }

    /// Number of source/sink terminals.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Switch radix `k`.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Number of switch stages (`log_k N`).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Switches per stage (`N / k`).
    pub fn switches_per_stage(&self) -> usize {
        self.size / self.radix
    }

    /// Swaps base-`k` digit 0 with digit `pos` of `line`.
    fn swap_digit0(&self, line: usize, pos: usize) -> usize {
        let k = self.radix;
        let weight = k.pow(pos as u32);
        let d0 = line % k;
        let dp = (line / weight) % k;
        line - d0 - dp * weight + dp + d0 * weight
    }

    /// Where source terminal `source` enters stage 0 (directly: switch
    /// `source / k`, port `source mod k`).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn source_entry(&self, source: NodeId) -> (usize, InputPort) {
        assert!(source.index() < self.size, "source out of range");
        (
            source.index() / self.radix,
            InputPort::new(source.index() % self.radix),
        )
    }

    /// Where a packet leaving stage `stage` (not the last) through
    /// (`switch`, `output`) enters stage `stage + 1`: the butterfly digit
    /// exchange.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is the last stage or any index is out of range.
    pub fn next_hop(&self, stage: usize, switch: usize, output: OutputPort) -> (usize, InputPort) {
        assert!(stage + 1 < self.stages, "no stage after the last");
        assert!(switch < self.switches_per_stage(), "switch out of range");
        assert!(output.index() < self.radix, "output out of range");
        let line = switch * self.radix + output.index();
        let line = self.swap_digit0(line, self.stages - 1 - stage);
        (line / self.radix, InputPort::new(line % self.radix))
    }

    /// The output port a packet for `dest` takes at stage `stage` (most
    /// significant digit first, as in the Omega network).
    ///
    /// # Panics
    ///
    /// Panics if `stage` or `dest` is out of range.
    pub fn route_output(&self, stage: usize, dest: NodeId) -> OutputPort {
        assert!(stage < self.stages, "stage out of range");
        assert!(dest.index() < self.size, "destination out of range");
        OutputPort::new(dest.route_digit(stage, self.radix, self.stages))
    }

    /// The sink terminal reached from the last stage's (`switch`,
    /// `output`).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn sink_of(&self, switch: usize, output: OutputPort) -> NodeId {
        assert!(switch < self.switches_per_stage(), "switch out of range");
        assert!(output.index() < self.radix, "output out of range");
        NodeId::new(switch * self.radix + output.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(topo: &ButterflyTopology, s: usize, d: usize) -> NodeId {
        let (mut switch, _) = topo.source_entry(NodeId::new(s));
        for stage in 0..topo.stages() {
            let out = topo.route_output(stage, NodeId::new(d));
            if stage + 1 < topo.stages() {
                let (next, _) = topo.next_hop(stage, switch, out);
                switch = next;
            } else {
                return topo.sink_of(switch, out);
            }
        }
        unreachable!("loop returns at the last stage")
    }

    #[test]
    fn full_access_for_all_pairs() {
        for (size, radix) in [(8usize, 2usize), (16, 4), (64, 4), (27, 3)] {
            let topo = ButterflyTopology::new(size, radix).unwrap();
            for s in 0..size {
                for d in 0..size {
                    assert_eq!(
                        trace(&topo, s, d),
                        NodeId::new(d),
                        "{s}->{d} misrouted in {size}/{radix}"
                    );
                }
            }
        }
    }

    #[test]
    fn digit_swap_is_an_involution() {
        let topo = ButterflyTopology::new(64, 4).unwrap();
        for line in 0..64 {
            for pos in 1..3 {
                assert_eq!(topo.swap_digit0(topo.swap_digit0(line, pos), pos), line);
            }
        }
    }

    #[test]
    fn inter_stage_wiring_is_a_permutation() {
        let topo = ButterflyTopology::new(64, 4).unwrap();
        for stage in 0..2 {
            let mut seen = [false; 64];
            for sw in 0..16 {
                for o in 0..4 {
                    let (nsw, np) = topo.next_hop(stage, sw, OutputPort::new(o));
                    let line = nsw * 4 + np.index();
                    assert!(!seen[line], "collision at stage {stage}");
                    seen[line] = true;
                }
            }
        }
    }

    #[test]
    fn dimensions_match_omega() {
        let b = ButterflyTopology::new(64, 4).unwrap();
        assert_eq!(b.stages(), 3);
        assert_eq!(b.switches_per_stage(), 16);
        assert!(ButterflyTopology::new(12, 4).is_err());
    }
}
