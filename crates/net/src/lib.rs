//! Omega-network simulator for evaluating switch-buffer designs.
//!
//! This crate reproduces the evaluation vehicle of the paper's §4.2: a
//! 64×64 **Omega network** of 4×4 switches (three stages of sixteen),
//! simulated synchronously with packets advancing one stage per 12-clock
//! network cycle, under uniform or hot-spot traffic, with blocking or
//! discarding flow control, and any of the four buffer designs from
//! [`damq_core`].
//!
//! * [`OmegaTopology`] — perfect-shuffle wiring and destination-digit
//!   routing for any `k^n` configuration.
//! * [`TrafficPattern`] — uniform, hot-spot (Pfister & Norton) and
//!   permutation workloads.
//! * [`NetworkSim`] / [`NetworkConfig`] — the cycle-driven simulator;
//!   [`NetworkSim::with_threads`] steps stage islands concurrently with
//!   byte-identical results (see [`IslandPartition`] and
//!   `docs/ARCHITECTURE.md`).
//! * [`measure`] — warm-up + measurement-window runs.
//! * [`find_saturation`] — bisection search for the saturation throughput
//!   (the paper's headline metric).
//!
//! # Examples
//!
//! The headline experiment — DAMQ's saturation advantage over FIFO:
//!
//! ```no_run
//! use damq_core::BufferKind;
//! use damq_net::{find_saturation, NetworkConfig, SaturationOptions};
//!
//! let cfg = NetworkConfig::new(64, 4).slots_per_buffer(4);
//! let fifo = find_saturation(cfg.buffer_kind(BufferKind::Fifo), SaturationOptions::default())?;
//! let damq = find_saturation(cfg.buffer_kind(BufferKind::Damq), SaturationOptions::default())?;
//! println!("FIFO saturates at {:.2}, DAMQ at {:.2}", fifo.throughput, damq.throughput);
//! assert!(damq.throughput >= 1.3 * fifo.throughput);
//! # Ok::<(), damq_net::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod butterfly;
mod metrics;
mod network;
mod parallel;
mod runner;
mod saturation;
pub mod theory;
mod topology;
mod traffic;

pub use butterfly::ButterflyTopology;
pub use metrics::{Accumulator, Histogram, NetMetrics, CLOCKS_PER_CYCLE};
pub use network::{
    ArrivalProcess, NetworkConfig, NetworkError, NetworkSim, PacketLengths, RecoveryConfig,
};
pub use parallel::{IslandPartition, PhaseProfile};
pub use runner::{measure, measure_with_faults, Measurement};
pub use saturation::{find_saturation, SaturationOptions, SaturationResult};
pub use topology::{HopRoute, OmegaTopology, RoutePlan, Topology, TopologyError, TopologyKind};
pub use traffic::TrafficPattern;
