//! Measurement: latency, throughput and discard accounting.

use std::fmt;

/// Clock cycles per network cycle: the paper's simulations move packets
/// "instantaneously once every twelve clock cycles" (8 to transmit, 4 to
/// route), and report latency in clock cycles.
pub const CLOCKS_PER_CYCLE: u64 = 12;

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// The running mean and the centred second moment `m2` are updated per
/// observation, which is numerically stable where a naive sum-of-squares
/// would catastrophically cancel. Two accumulators — e.g. from parallel
/// sweep workers — combine exactly with [`Accumulator::merge`] (Chan et
/// al.'s parallel update).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean.
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Combines another accumulator's observations into this one, as if
    /// every value had been [`record`](Accumulator::record)ed here.
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (`n − 1` denominator); 0 with fewer than two
    /// observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation; 0 with fewer than two observations.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Exact latency histogram with one-cycle buckets (saturating at a cap),
/// supporting percentile queries.
///
/// # Examples
///
/// ```
/// use damq_net::Histogram;
///
/// let mut h = Histogram::new(100);
/// for v in [3, 3, 4, 10] {
///     h.record(v);
/// }
/// assert_eq!(h.percentile(0.50), 3);
/// assert_eq!(h.percentile(1.00), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with buckets `0..=cap`; values above `cap` land
    /// in an overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: u64) -> Self {
        assert!(cap > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; cap as usize + 1],
            count: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations above the cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The smallest value `v` such that at least `q` of the observations
    /// are ≤ `v` (`0.0 < q <= 1.0`). Returns 0 when empty; returns the cap
    /// if the answer lies in the overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (value, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return value as u64;
            }
        }
        self.buckets.len() as u64 - 1
    }

    /// Zeroes the histogram, keeping its shape.
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.overflow = 0;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(4096)
    }
}

/// Counters and latency statistics for one simulation window.
///
/// All latency accumulators are in **network cycles**; the `*_clocks`
/// accessors convert to clock cycles (×12) for comparison with the paper's
/// tables.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    cycles: u64,
    terminals: usize,
    generated: u64,
    injected: u64,
    delivered: u64,
    discarded_entry: u64,
    discarded_network: u64,
    /// Birth-to-delivery latency (includes source-queue wait).
    total_latency: Accumulator,
    /// Injection-to-delivery latency (in-network only).
    network_latency: Accumulator,
    /// Exact distribution of total latency, in network cycles.
    latency_histogram: Histogram,
    per_sink_delivered: Vec<u64>,
    /// Per-source latency accumulators (fairness analysis).
    per_source_latency: Vec<Accumulator>,
}

impl NetMetrics {
    /// Creates zeroed metrics for a network of `terminals` sources/sinks.
    pub fn new(terminals: usize) -> Self {
        NetMetrics {
            terminals,
            per_sink_delivered: vec![0; terminals],
            per_source_latency: vec![Accumulator::new(); terminals],
            latency_histogram: Histogram::default(),
            ..Default::default()
        }
    }

    /// Called once per simulated cycle.
    pub fn record_cycle(&mut self) {
        self.cycles += 1;
    }

    /// A source generated a packet.
    pub fn record_generated(&mut self) {
        self.generated += 1;
    }

    /// A packet left its source queue into a first-stage buffer.
    pub fn record_injected(&mut self) {
        self.injected += 1;
    }

    /// A packet was dropped trying to enter the network (discarding
    /// protocol, first-stage buffer full).
    pub fn record_entry_discard(&mut self) {
        self.discarded_entry += 1;
    }

    /// A packet was dropped between stages (discarding protocol).
    pub fn record_network_discard(&mut self) {
        self.discarded_network += 1;
    }

    /// A packet from `source` reached sink `sink` with the given
    /// latencies, in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `sink` or `source` is out of range.
    pub fn record_delivery_from(
        &mut self,
        source: usize,
        sink: usize,
        total_cycles: u64,
        network_cycles: u64,
    ) {
        self.delivered += 1;
        self.per_sink_delivered[sink] += 1;
        self.per_source_latency[source].record(total_cycles as f64);
        self.total_latency.record(total_cycles as f64);
        self.network_latency.record(network_cycles as f64);
        self.latency_histogram.record(total_cycles);
    }

    /// A packet reached sink `sink` (source unattributed; kept for simple
    /// callers and tests).
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range.
    pub fn record_delivery(&mut self, sink: usize, total_cycles: u64, network_cycles: u64) {
        self.record_delivery_from(
            sink % self.terminals.max(1),
            sink,
            total_cycles,
            network_cycles,
        );
    }

    /// Per-source mean latency accumulators (fairness analysis).
    pub fn per_source_latency(&self) -> &[Accumulator] {
        &self.per_source_latency
    }

    /// Spread of per-source mean latencies, in clock cycles: the max minus
    /// min over sources that delivered at least one packet. A fairness
    /// measure — smaller is fairer.
    pub fn source_latency_spread_clocks(&self) -> f64 {
        let means: Vec<f64> = self
            .per_source_latency
            .iter()
            .filter(|a| a.count() > 0)
            .map(Accumulator::mean)
            .collect();
        if means.is_empty() {
            return 0.0;
        }
        let max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        (max - min) * CLOCKS_PER_CYCLE as f64
    }

    /// Cycles in the measurement window.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Packets generated by sources.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Packets that entered the network.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Packets delivered to sinks.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Packets dropped at network entry.
    pub fn discarded_entry(&self) -> u64 {
        self.discarded_entry
    }

    /// Packets dropped between stages.
    pub fn discarded_network(&self) -> u64 {
        self.discarded_network
    }

    /// All packets dropped anywhere.
    pub fn discarded(&self) -> u64 {
        self.discarded_entry + self.discarded_network
    }

    /// Deliveries per sink (hot-spot analysis).
    pub fn per_sink_delivered(&self) -> &[u64] {
        &self.per_sink_delivered
    }

    /// Offered load: generated packets per terminal per cycle.
    pub fn offered_throughput(&self) -> f64 {
        self.per_terminal_rate(self.generated)
    }

    /// Delivered throughput: packets per terminal per cycle.
    pub fn delivered_throughput(&self) -> f64 {
        self.per_terminal_rate(self.delivered)
    }

    /// Fraction of generated packets that were discarded.
    pub fn discard_fraction(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.discarded() as f64 / self.generated as f64
        }
    }

    /// Mean birth-to-delivery latency in clock cycles (the paper's unit).
    pub fn mean_latency_clocks(&self) -> f64 {
        self.total_latency.mean() * CLOCKS_PER_CYCLE as f64
    }

    /// Mean injection-to-delivery latency in clock cycles.
    pub fn mean_network_latency_clocks(&self) -> f64 {
        self.network_latency.mean() * CLOCKS_PER_CYCLE as f64
    }

    /// The raw total-latency accumulator (network cycles).
    pub fn total_latency(&self) -> &Accumulator {
        &self.total_latency
    }

    /// The raw in-network latency accumulator (network cycles).
    pub fn network_latency(&self) -> &Accumulator {
        &self.network_latency
    }

    /// The `q`-quantile of total latency, in clock cycles.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1]`.
    pub fn latency_percentile_clocks(&self, q: f64) -> f64 {
        self.latency_histogram.percentile(q) as f64 * CLOCKS_PER_CYCLE as f64
    }

    /// The exact total-latency distribution (network cycles).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_histogram
    }

    /// Zeroes everything, keeping the terminal count (start of a
    /// measurement window after warm-up).
    pub fn reset(&mut self) {
        *self = NetMetrics::new(self.terminals);
    }

    fn per_terminal_rate(&self, count: u64) -> f64 {
        if self.cycles == 0 || self.terminals == 0 {
            0.0
        } else {
            count as f64 / (self.cycles as f64 * self.terminals as f64)
        }
    }
}

impl fmt::Display for NetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles: gen {} inj {} dlv {} drop {} | thr {:.3} | lat {:.1} clk",
            self.cycles,
            self.generated,
            self.injected,
            self.delivered,
            self.discarded(),
            self.delivered_throughput(),
            self.mean_latency_clocks(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_tracks_mean_min_max() {
        let mut a = Accumulator::new();
        a.record(2.0);
        a.record(6.0);
        a.record(4.0);
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 4.0).abs() < 1e-12);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 6.0);
    }

    #[test]
    fn empty_accumulator_is_zeroed() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.stddev(), 0.0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut a = Accumulator::new();
        a.record(5.0);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 5.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.stddev(), 0.0);
        assert_eq!(a.min(), 5.0);
        assert_eq!(a.max(), 5.0);
    }

    #[test]
    fn welford_matches_two_pass_variance() {
        let values = [3.0, 7.0, 7.0, 19.0, 24.0, 1.5, -4.0];
        let mut a = Accumulator::new();
        for v in values {
            a.record(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
        assert!((a.mean() - mean).abs() < 1e-12);
        assert!((a.variance() - var).abs() < 1e-12);
        assert!((a.stddev() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let left = [1.0, 2.0, 3.0, 10.0];
        let right = [4.0, -8.0, 0.5];
        let mut a = Accumulator::new();
        for v in left {
            a.record(v);
        }
        let mut b = Accumulator::new();
        for v in right {
            b.record(v);
        }
        let mut whole = Accumulator::new();
        for v in left.iter().chain(&right) {
            whole.record(*v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_edge_cases_with_empty_sides() {
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        b.record(2.0);
        b.record(4.0);
        // empty ← populated adopts the other side entirely.
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 3.0).abs() < 1e-12);
        assert!((a.variance() - 2.0).abs() < 1e-12);
        // populated ← empty is a no-op.
        let before = a;
        a.merge(&Accumulator::new());
        assert_eq!(a, before);
        // merging two singletons yields a two-sample variance.
        let mut x = Accumulator::new();
        x.record(1.0);
        let mut y = Accumulator::new();
        y.record(3.0);
        x.merge(&y);
        assert!((x.variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_variance_is_zero_and_survives_merging() {
        // A lone observation has no spread: variance and stddev report
        // 0 (n − 1 denominator would divide by zero otherwise).
        let mut one = Accumulator::new();
        one.record(7.5);
        assert_eq!(one.count(), 1);
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.stddev(), 0.0);
        assert_eq!(one.mean(), 7.5);
        assert_eq!(one.min(), 7.5);
        assert_eq!(one.max(), 7.5);
        // Merging an empty side keeps the singleton's zero variance.
        one.merge(&Accumulator::new());
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.count(), 1);
        // An empty accumulator merged *with* a singleton adopts it whole.
        let mut empty = Accumulator::new();
        empty.merge(&one);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.variance(), 0.0);
        assert_eq!(empty.mean(), 7.5);
        // Merging two empties stays a well-defined zero state.
        let mut a = Accumulator::new();
        a.merge(&Accumulator::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 0.0);
    }

    #[test]
    fn throughput_is_per_terminal_per_cycle() {
        let mut m = NetMetrics::new(4);
        for _ in 0..10 {
            m.record_cycle();
        }
        for _ in 0..20 {
            m.record_generated();
        }
        for _ in 0..12 {
            m.record_delivery(0, 3, 3);
        }
        assert!((m.offered_throughput() - 0.5).abs() < 1e-12);
        assert!((m.delivered_throughput() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn latency_reported_in_clocks() {
        let mut m = NetMetrics::new(1);
        m.record_delivery(0, 4, 3);
        assert_eq!(m.mean_latency_clocks(), 48.0);
        assert_eq!(m.mean_network_latency_clocks(), 36.0);
    }

    #[test]
    fn discard_fraction_counts_both_kinds() {
        let mut m = NetMetrics::new(1);
        for _ in 0..10 {
            m.record_generated();
        }
        m.record_entry_discard();
        m.record_network_discard();
        assert!((m.discard_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(10);
        for v in 1..=100u64 {
            h.record(v % 8);
        }
        assert_eq!(h.count(), 100);
        assert!(h.percentile(0.5) <= h.percentile(0.9));
        assert_eq!(h.percentile(1.0), 7);
    }

    #[test]
    fn histogram_overflow_saturates_at_cap() {
        let mut h = Histogram::new(4);
        h.record(1_000_000);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.percentile(1.0), 4);
    }

    #[test]
    fn metrics_expose_latency_percentiles_in_clocks() {
        let mut m = NetMetrics::new(1);
        m.record_delivery(0, 3, 3);
        m.record_delivery(0, 5, 5);
        assert_eq!(m.latency_percentile_clocks(0.5), 36.0);
        assert_eq!(m.latency_percentile_clocks(1.0), 60.0);
    }

    #[test]
    fn reset_clears_but_keeps_shape() {
        let mut m = NetMetrics::new(8);
        m.record_cycle();
        m.record_delivery(7, 1, 1);
        m.reset();
        assert_eq!(m.cycles(), 0);
        assert_eq!(m.delivered(), 0);
        assert_eq!(m.per_sink_delivered().len(), 8);
    }
}
